"""Benchmark-suite configuration.

Each benchmark regenerates one paper figure/table at the active scale
(``REPRO_SCALE`` = quick | full) and asserts the paper's qualitative shape.

Set ``REPRO_PROFILE=1`` to wrap every benchmark in cProfile; a ``.prof``
file per test lands under ``.profiles/`` (inspect with ``python -m pstats``
or snakeviz).
"""

import cProfile
import os
import re
from pathlib import Path

import pytest

PROFILE_DIR = Path(".profiles")


def _profile_enabled() -> bool:
    return os.environ.get("REPRO_PROFILE") == "1"


@pytest.fixture(autouse=True)
def _repro_profile(request):
    """Per-test cProfile dump, opt-in via REPRO_PROFILE=1."""
    if not _profile_enabled():
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        PROFILE_DIR.mkdir(exist_ok=True)
        stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.nodeid)
        profiler.dump_stats(PROFILE_DIR / f"{stem}.prof")
