"""Benchmark-suite configuration.

Each benchmark regenerates one paper figure/table at the active scale
(``REPRO_SCALE`` = quick | full) and asserts the paper's qualitative shape.
"""
