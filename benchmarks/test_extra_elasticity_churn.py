"""Extra: memory-node churn under fault windows stays correct and live."""

from repro.bench.experiments import extra_elasticity_churn as exp
from repro.bench.experiments.extra_elasticity_churn import phase_mean


def test_elasticity_churn(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    timeline = result["timeline"]

    # Every drain in the churn completed despite the RPC fault windows.
    assert result["migrations"], "no drains ran"
    for migration in result["migrations"]:
        assert migration["phase"] == "done"
        assert migration["migrated_objects"] > 0
        assert migration["epoch_end"] > migration["epoch_start"]

    # Node 0 (hash table) survives; every drained node is gone.
    drained = {m["node_id"] for m in result["migrations"]}
    assert 0 in result["node_ids"]
    assert drained.isdisjoint(result["node_ids"])

    # Throughput survives the churn: the drain phases keep serving at a
    # meaningful fraction of steady state (degraded mode, not an outage).
    steady = phase_mean(timeline, "steady")
    for phase in {row["phase"] for row in timeline}:
        if phase.endswith("-drain"):
            assert phase_mean(timeline, phase) > steady * 0.4

    # The memory-accounting sweep already ran inside run(); its summary
    # proves no block leaked or stayed double-owned across the churn.
    assert result["sweep"]["live_bytes"] > 0
