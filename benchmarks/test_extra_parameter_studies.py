"""Design-choice ablations beyond the paper's figures: the parameters §5.1
fixes by grid search (sample size K = 5, history = cache size)."""

from repro.bench.experiments import extra_history_size, extra_sample_size


def test_sample_size_study(benchmark):
    result = benchmark.pedantic(extra_sample_size.main, rounds=1, iterations=1)
    rows = {r["k"]: r for r in result["rows"]}
    ks = sorted(rows)
    # K=1 is random eviction; LRU precision grows with K and the paper's
    # default K=5 already captures most of the benefit.
    assert rows[ks[-1]]["lru"] > rows[1]["lru"]
    top_lru = rows[ks[-1]]["lru"]
    assert rows[5]["lru"] > rows[1]["lru"] + 0.6 * (top_lru - rows[1]["lru"])
    # LFU peaks at small K: fully precise LFU over-evicts freshly inserted
    # (freq-1) objects on recency-bearing traces, so sampling noise acts as
    # scan protection — K=5 beats K=32.
    assert rows[5]["lfu"] > rows[ks[-1]]["lfu"]
    best_lfu_k = max(rows, key=lambda k: rows[k]["lfu"])
    assert best_lfu_k <= 8


def test_history_size_study(benchmark):
    result = benchmark.pedantic(extra_history_size.main, rounds=1, iterations=1)
    rows = result["rows"]
    # More history -> more regrets collected (faster adaptation signal).
    regrets = [r["regrets"] for r in rows]
    assert regrets[-1] > regrets[0]
    # Metadata overhead is linear in the history length.
    assert rows[-1]["metadata_bytes"] > rows[0]["metadata_bytes"]
