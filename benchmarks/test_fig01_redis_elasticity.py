"""Figure 1: Redis throughput/latency during cluster scaling."""

from repro.bench.experiments import fig01_redis_elasticity as exp
from repro.bench.experiments.fig01_redis_elasticity import phase_mean


def test_fig01(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    timeline = result["timeline"]
    migrations = {m["direction"]: m for m in result["migrations"]}

    # Both migrations completed and took macroscopic time.
    assert set(migrations) == {"out", "in"}
    assert migrations["out"]["duration_s"] > 0.1
    assert migrations["in"]["duration_s"] > 0.1

    small = phase_mean(timeline, "stable-small")
    large = phase_mean(timeline, "stable-large")
    during_out = phase_mean(timeline, "scale-out-migration")

    # The performance gain is delayed: during migration the cluster runs
    # below the post-scale level, and dips below (or near) the pre-scale
    # level while CPUs copy keys.
    assert large > small * 1.1
    assert during_out < large
    # Resource reclamation is delayed during scale-in: provisioned nodes stay
    # at the large count until migration finishes.
    in_mig_rows = [r for r in timeline if r["phase"] == "scale-in-migration"]
    assert in_mig_rows
    # The final window may close just after reclamation; all earlier windows
    # still hold the large node count.
    assert all(r["provisioned_nodes"] > 8 for r in in_mig_rows[:-1])
