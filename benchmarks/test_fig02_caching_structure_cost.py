"""Figure 2: the cost of maintaining caching data structures on DM."""

from repro.bench.experiments import fig02_caching_structure_cost as exp


def test_fig02(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    single = result["single_client"]
    multi = result["multi_client"]
    counts = result["client_counts"]
    top = counts[-1]

    # (a) single client: list maintenance costs throughput and tail latency.
    assert single["kvs"]["mops"] > 2 * single["kvc"]["mops"]
    assert single["kvc"]["p99_us"] > 2 * single["kvs"]["p99_us"]

    # (b) many clients: KVC collapses under lock contention, KVC-S holds up
    # better, KVS scales far above both.
    assert multi["kvs"][top] > 4 * multi["kvc"][top]
    assert multi["kvs"][top] > 2 * multi["kvc-s"][top]
    assert multi["kvc-s"][top] > multi["kvc"][top]
    # KVC does not scale beyond moderate client counts.
    mid = counts[len(counts) // 2]
    assert multi["kvc"][top] < multi["kvc"][mid] * 2
