"""Figure 3: hit rate vs compute split between LRU-/LFU-friendly apps."""

from repro.bench.experiments import fig03_client_mix as exp


def test_fig03(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    rows = result["rows"]
    all_lfu = rows[0]   # all threads on the LFU-friendly application
    all_lru = rows[-1]  # all threads on the LRU-friendly application

    # The winning fixed algorithm flips with the thread split.
    assert all_lfu["ditto-lfu"] > all_lfu["ditto-lru"]
    assert all_lru["ditto-lru"] > all_lru["ditto-lfu"]

    # Ditto never falls materially below the worse expert, at either extreme.
    for row in (all_lfu, all_lru):
        assert row["ditto"] >= min(row["ditto-lru"], row["ditto-lfu"]) - 0.02
