"""Figure 4: the LRU/LFU winner depends on cache size."""

from repro.bench.experiments import fig04_cache_size as exp


def test_fig04(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    rows = result["rows"]
    winners = {"lru" if r["lru"] >= r["lfu"] else "lfu" for r in rows}
    # The best fixed algorithm changes across cache sizes.
    assert winners == {"lru", "lfu"}
    # Hit rates are monotone non-decreasing in cache size (sanity).
    for policy in ("lru", "lfu"):
        values = [r[policy] for r in rows]
        assert all(b >= a - 0.03 for a, b in zip(values, values[1:]))
