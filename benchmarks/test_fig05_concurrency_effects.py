"""Figure 5: concurrency changes access patterns and hit rates."""

import numpy as np

from repro.bench.experiments import fig05_concurrency_effects as exp


def test_fig05(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    lru_changes = result["cdf"]["lru"]
    lfu_changes = result["cdf"]["lfu"]

    # Concurrency moves hit rates for a substantial share of workloads, and
    # LRU is more sensitive to it than LFU (paper: 60% vs 21% change).
    assert float(np.median(lru_changes)) > 0.0
    assert float(np.mean(lru_changes)) > float(np.mean(lfu_changes))

    # The best algorithm flips with the client count on some workloads.
    assert result["best_flip_fraction"] > 0.0
