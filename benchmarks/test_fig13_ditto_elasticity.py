"""Figure 13: Ditto under dynamic compute and memory scaling."""

from repro.bench.experiments import fig13_ditto_elasticity as exp
from repro.bench.experiments.fig13_ditto_elasticity import phase_mean


def test_fig13(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    timeline = result["timeline"]

    base = phase_mean(timeline, "base-compute")
    up = phase_mean(timeline, "compute-scaled-up")
    down = phase_mean(timeline, "compute-scaled-down")
    mem_up = phase_mean(timeline, "memory-scaled-up")
    mem_down = phase_mean(timeline, "memory-scaled-down")

    # Compute scaling takes effect immediately (compute carries no data):
    # throughput jumps with the added clients and returns when they leave.
    assert up > base * 1.3
    assert abs(down - base) / base < 0.25

    # Memory scale-up (a node joins the pool) does not disturb throughput.
    assert abs(mem_up - down) / down < 0.2

    # Memory scale-down live-drains a data-bearing node while traffic keeps
    # flowing: a real migration, so allow contention, but no collapse — and
    # nothing like the Redis baseline's whole-keyspace reshuffle.
    assert mem_down > down * 0.6

    # The drain completed and actually moved data at advancing epochs.
    (migration,) = result["migrations"]
    assert migration["phase"] == "done"
    assert migration["migrated_objects"] > 0
    assert migration["epoch_end"] > migration["epoch_start"]
    assert result["epoch_bumps"] >= 3

    # The very first window after compute scale-up already shows the gain —
    # "immediate", unlike Redis' minutes of migration.
    first_up = next(r for r in timeline if r["phase"] == "compute-scaled-up")
    assert first_up["mops"] > base * 1.2
