"""Figure 14: YCSB throughput/p99 of Ditto vs Shard-LRU vs CliqueMap."""

from repro.bench.experiments import fig14_ycsb_scaling as exp


def test_fig14(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    counts = result["client_counts"]
    top = counts[-1]

    for workload, by_system in result["results"].items():
        ditto = by_system["ditto"][top]["mops"]
        # Ditto clearly outperforms every baseline at scale (paper: up to 9x).
        for baseline in ("shard-lru", "cm-lru", "cm-lfu"):
            assert ditto > 2 * by_system[baseline][top]["mops"], (
                f"{workload}: ditto {ditto} vs {baseline} "
                f"{by_system[baseline][top]['mops']}"
            )
        # Ditto throughput grows with client count until NIC-bound.
        assert by_system["ditto"][top]["mops"] > by_system["ditto"][counts[0]]["mops"]

    # Single-client write-heavy A: CliqueMap's 1-RTT Sets beat Ditto's 3 RTTs
    # (the paper's one exception).
    a = result["results"].get("A")
    if a is not None:
        assert a["cm-lru"][counts[0]]["mops"] >= a["ditto"][counts[0]]["mops"] * 0.8
