"""Figure 15: throughput vs MN-side CPU cores."""

from repro.bench.experiments import fig15_mn_cpu_cores as exp


def test_fig15(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    cores = result["core_counts"]

    for workload, by_system in result["results"].items():
        ditto = by_system["ditto"]
        cm = by_system["cliquemap"]
        redis = by_system["redis"]

        # Ditto is independent of MN compute.
        assert len({round(v, 6) for v in ditto.values()}) == 1
        # CliqueMap needs many extra cores to climb toward Ditto.
        assert cm[cores[-1]] > cm[cores[0]] * 1.5
        assert ditto[cores[0]] > 2 * cm[cores[0]]
        # Redis gains with cores but stays skew-limited below Ditto.
        assert redis[cores[-1]] >= redis[cores[0]]
        assert ditto[cores[-1]] > redis[cores[-1]]
