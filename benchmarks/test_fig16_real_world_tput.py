"""Figure 16: penalized throughput on real-world-like workloads."""

from repro.bench.experiments import fig16_real_world_tput as exp


def test_fig16(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    for workload, by_system in result["results"].items():
        ditto = by_system["ditto"]["mops"]
        best_fixed = max(by_system["ditto-lru"]["mops"], by_system["ditto-lfu"]["mops"])
        worst_fixed = min(by_system["ditto-lru"]["mops"], by_system["ditto-lfu"]["mops"])
        best_cm = max(by_system["cm-lru"]["mops"], by_system["cm-lfu"]["mops"])

        # Ditto approaches the better fixed expert and clears the worse one.
        assert ditto > worst_fixed * 0.9, workload
        assert ditto > best_fixed * 0.75, workload
        # Ditto outperforms CliqueMap (hit rate + one-sided data path).
        assert ditto > best_cm * 0.9, workload
