"""Figure 17: hit rates on real-world-like workloads across cache sizes."""

from repro.bench.experiments import fig17_real_world_hitrate as exp


def test_fig17(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    margin = 0.03
    for workload, by_frac in result["results"].items():
        for frac, rates in by_frac.items():
            low = min(rates["ditto-lru"], rates["ditto-lfu"])
            high = max(rates["ditto-lru"], rates["ditto-lfu"])
            # Ditto is bounded by its experts and tracks toward the better.
            assert rates["ditto"] >= low - margin, (workload, frac)
            assert rates["ditto"] <= high + margin, (workload, frac)
        # Averaged over sizes, Ditto clears the midpoint of its experts.
        ditto_mean = sum(r["ditto"] for r in by_frac.values()) / len(by_frac)
        mid_mean = sum(
            (r["ditto-lru"] + r["ditto-lfu"]) / 2 for r in by_frac.values()
        ) / len(by_frac)
        assert ditto_mean >= mid_mean - margin, workload
