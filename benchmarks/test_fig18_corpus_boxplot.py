"""Figure 18: Ditto vs best/worst fixed expert over a workload corpus."""

import numpy as np

from repro.bench.experiments import fig18_corpus_boxplot as exp


def test_fig18(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    relative = result["relative"]
    ditto = float(np.median(relative["ditto"]))
    best = float(np.median(relative["max_expert"]))
    worst = float(np.median(relative["min_expert"]))

    # All series beat random eviction on median.
    assert worst > 1.0
    # Ditto significantly exceeds the worse expert and approaches the better.
    assert ditto > worst
    assert ditto > best - 0.6 * (best - worst)
