"""Figure 19: the phase-switching workload (only Ditto adapts)."""

from repro.bench.experiments import fig19_changing_workload as exp


def test_fig19(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    hit = result["hit_rates"]
    tput = result["throughput_mops"]

    # Ditto matches or beats both fixed experts across the flip-flopping
    # phases (the paper's Figure 19 claim).
    best_fixed_hit = max(hit["ditto-lru"], hit["ditto-lfu"])
    assert hit["ditto"] >= best_fixed_hit - 0.02
    worst_fixed_hit = min(hit["ditto-lru"], hit["ditto-lfu"])
    assert hit["ditto"] > worst_fixed_hit

    best_fixed_tput = max(tput["ditto-lru"], tput["ditto-lfu"])
    assert tput["ditto"] >= best_fixed_tput * 0.85
