"""Figure 20: relative hit rate vs LRU-application client portion."""

from repro.bench.experiments import fig20_compute_mix as exp


def test_fig20(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    rows = result["rows"]

    # With no LRU clients, LFU dominates and Ditto exceeds the Ditto-LRU
    # baseline; as the LRU portion grows, Ditto converges to Ditto-LRU.
    assert rows[0]["ditto-lfu"] > 1.0
    assert rows[0]["ditto"] > 1.0
    assert rows[-1]["ditto-lfu"] < 1.0
    assert rows[-1]["ditto"] > rows[-1]["ditto-lfu"]
    for row in rows:
        assert row["ditto"] >= min(1.0, row["ditto-lfu"]) - 0.05
