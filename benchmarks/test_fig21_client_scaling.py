"""Figure 21: relative hit rates under growing client counts."""

from repro.bench.experiments import fig21_client_scaling as exp


def test_fig21(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    for row in result["rows"]:
        rel = row["relative"]
        low = min(rel["ditto-lru"], rel["ditto-lfu"])
        high = max(rel["ditto-lru"], rel["ditto-lfu"])
        # Ditto stays at or above the worse fixed expert at every count.
        assert rel["ditto"] >= low - 0.03, row["clients"]
        assert rel["ditto"] <= high + 0.08, row["clients"]
