"""Figure 22: hit rate under dynamically growing memory."""

from repro.bench.experiments import fig22_memory_scaling as exp


def test_fig22(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    rows = result["rows"]
    for row in rows:
        low = min(row["ditto-lru"], row["ditto-lfu"])
        # Ditto adapts to the size-dependent best algorithm.
        assert row["ditto"] >= low - 0.03, row["cache_frac"]
    # Bigger caches help everyone (sanity).
    assert rows[-1]["ditto"] > rows[0]["ditto"]
