"""Figure 23 + Table 3: 12 algorithms, their performance and coding effort."""

from repro.bench.experiments import fig23_twelve_algorithms as exp


def test_fig23_tab03(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    rows = result["rows"]
    assert len(rows) == 12

    for row in rows:
        assert row["mops"] > 0, row["algorithm"]
        assert 0 <= row["hit_rate"] <= 1
        # Table 3: every algorithm integrates in at most ~23 LOC.
        assert row["loc"] <= 25, row["algorithm"]

    average_loc = sum(r["loc"] for r in rows) / len(rows)
    assert average_loc <= 16  # paper: 12.5 LOC on average

    by_name = {r["algorithm"]: r for r in rows}
    # MRU is the pathological policy on this workload (as in the paper).
    others_best = max(r["hit_rate"] for r in rows if r["algorithm"] != "mru")
    assert by_name["mru"]["hit_rate"] < others_best
