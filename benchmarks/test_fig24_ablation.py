"""Figure 24: contribution of each Ditto technique."""

from repro.bench.experiments import fig24_ablation as exp


def test_fig24(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    rows = {r["variant"]: r for r in result["rows"]}
    full = rows["ditto (full)"]["mops"]

    # Every ablation costs throughput (small noise allowance), and removing
    # everything costs the most.
    for variant in ("-sfht", "-lwh", "-lwu", "-fc"):
        assert rows[variant]["mops"] <= full * 1.03, variant
    assert rows["-all"]["mops"] < full
    # SFHT is the dominant contribution (paper: +42%).
    assert rows["-sfht"]["mops"] < full * 0.95
    assert rows["-all"]["mops"] <= rows["-sfht"]["mops"] * 1.05
