"""Figure 25: YCSB-C performance vs FC cache size."""

from repro.bench.experiments import fig25_fc_cache_size as exp


def test_fig25(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    rows = result["rows"]
    no_fc, biggest = rows[0], rows[-1]

    # More FC cache -> fewer FAAs -> more throughput, lower tail latency.
    assert biggest["faas"] < no_fc["faas"]
    assert biggest["mops"] >= no_fc["mops"]
    assert biggest["p99_us"] <= no_fc["p99_us"] * 1.05
    # Gains flatten: the last doubling adds little (paper: >5 MB plateau).
    second_biggest = rows[-2]
    assert biggest["mops"] <= second_biggest["mops"] * 1.15
