"""Table 2: the real-world workload catalog."""

from repro.bench.experiments import tab02_workload_catalog as exp


def test_tab02(benchmark):
    result = benchmark.pedantic(exp.main, rounds=1, iterations=1)
    rows = result["rows"]
    assert len(rows) == 6
    names = {r["workload"] for r in rows}
    assert names == {
        "webmail", "ibm", "cloudphysics",
        "twitter-transient", "twitter-storage", "twitter-compute",
    }
    for row in rows:
        assert 0 < row["footprint"] <= row["keys"]
