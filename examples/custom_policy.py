#!/usr/bin/env python3
"""Example: integrating a custom caching algorithm into Ditto.

The paper's Table 3 point: because the client-centric framework reduces an
algorithm to an ``update`` rule and a ``priority`` function over per-object
metadata, new algorithms land in ~10 lines.  Here we add **scan-guarded
LRU** — one-hit objects are evicted before anything else, protecting the hot
set from one-shot "flash" traffic — and run it head to head with plain LRU on
a scan-polluted workload.

Run: python examples/custom_policy.py
"""

import numpy as np

from repro.cachesim import SampledAdaptiveCache
from repro.core import DittoCluster, DittoConfig
from repro.core.policies import POLICY_REGISTRY, CachePolicy, Metadata, policy_loc
from repro.workloads import zipfian_trace


class GuardedLru(CachePolicy):
    """LRU that sacrifices one-hit wonders first (scan resistance)."""

    name = "guarded-lru"
    info = ("ts_L", "F")

    def priority(self, m: Metadata, now: float) -> float:
        if m.freq <= 1:
            return float("-inf")  # never re-referenced: evict first
        return m.last_ts


def main() -> None:
    # Register it like any built-in policy.
    POLICY_REGISTRY[GuardedLru.name] = GuardedLru
    print(f"GuardedLru integrated in {policy_loc(GuardedLru())} lines of code")

    # 60% skewed traffic over a hot set + 40% one-shot flash keys that
    # pollute a recency-only cache.
    rng = np.random.default_rng(3)
    hot = zipfian_trace(60_000, 800, theta=0.9, seed=4)
    flash = rng.integers(10_000, 80_000, size=60_000)
    trace = np.where(rng.random(60_000) < 0.6, hot, flash)

    for name in ("lru", "guarded-lru"):
        cache = SampledAdaptiveCache(400, policies=(name,), seed=1)
        for key in trace:
            cache.access(int(key))
        print(f"{name:12s} hit rate: {cache.hit_rate():.2%}")

    # The same class drives the full DM system, including as an adaptive
    # expert alongside LFU — no other code changes.
    cluster = DittoCluster(
        capacity_objects=256,
        object_bytes=64,
        num_clients=2,
        config=DittoConfig(policies=("guarded-lru", "lfu")),
        seed=2,
    )
    client = cluster.clients[0]
    for i in range(1200):
        cluster.engine.run_process(client.set(b"k%d" % (i % 500), b"v" * 40))
        cluster.engine.run_process(client.get(b"k%d" % ((i * 3) % 500)))
    print(f"\nDM cluster with (guarded-lru, lfu) experts: "
          f"hit={cluster.hit_rate():.2%}, "
          f"weights={[round(w, 2) for w in client.weights.weights]}")


if __name__ == "__main__":
    main()
