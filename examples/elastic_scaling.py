#!/usr/bin/env python3
"""Example: Ditto vs a Redis-like cluster during a load burst (Figure 1 vs
Figure 13 in miniature).

Both systems serve the same skewed read workload.  Mid-run, each is told to
double its compute.  The Redis-like cluster must migrate data and suffers a
delayed, bumpy transition; Ditto just adds client threads against the shared
memory pool and its throughput steps up within one measurement window.

Run: python examples/elastic_scaling.py
"""

from repro.baselines import RedisCluster
from repro.bench import Feed, Harness, make_value, pack_key, preload
from repro.bench.systems import build_ditto
from repro.workloads import ZipfianGenerator, make_ycsb

N_KEYS = 8_000
WINDOW_US = 100_000.0


def run_ditto() -> None:
    print("=== Ditto on disaggregated memory ===")
    cluster = build_ditto(2 * N_KEYS, num_clients=16, seed=3)
    preload(cluster.engine, cluster.clients, range(N_KEYS), value_size=232)
    harness = Harness(cluster.engine, value_size=232)

    def feed(i):
        return Feed.from_requests(
            make_ycsb("C", n_keys=N_KEYS, seed=i).requests(10_000)
        )

    base, extra = cluster.clients[:8], cluster.clients[8:]
    harness.launch_all(base, [feed(i) for i in range(8)])
    harness.warm(50_000.0)
    for step in range(3):
        r = harness.measure(WINDOW_US)
        print(f"  t={cluster.engine.now/1e6:5.2f}s  8 clients: {r.throughput_mops:5.2f} Mops")
    harness.launch_all(extra, [feed(100 + i) for i in range(8)])
    print("  >> scale compute x2 (no data migration)")
    for step in range(3):
        r = harness.measure(WINDOW_US)
        print(f"  t={cluster.engine.now/1e6:5.2f}s 16 clients: {r.throughput_mops:5.2f} Mops")


def run_redis() -> None:
    print("\n=== Redis-like monolithic cluster ===")
    cluster = RedisCluster(initial_nodes=4, migration_key_cpu_us=400.0,
                           migration_batch=32)
    cluster.load({pack_key(i): make_value(232) for i in range(N_KEYS)})
    cluster.add_clients(64)
    harness = Harness(cluster.engine, value_size=232)
    feeds = [Feed.reads(ZipfianGenerator(N_KEYS, seed=i).sample(4096)) for i in range(64)]
    harness.launch_all(cluster.clients, feeds)
    harness.warm(50_000.0)
    for step in range(3):
        r = harness.measure(WINDOW_US)
        print(f"  t={cluster.engine.now/1e6:5.2f}s  4 nodes: {r.throughput_mops:5.2f} Mops")
    cluster.scale(8)
    print("  >> scale nodes x2 (starts data migration)")
    while cluster.migration is not None:
        r = harness.measure(WINDOW_US)
        print(f"  t={cluster.engine.now/1e6:5.2f}s  migrating "
              f"({cluster.migration.fraction:4.0%} moved): {r.throughput_mops:5.2f} Mops")
    for step in range(3):
        r = harness.measure(WINDOW_US)
        print(f"  t={cluster.engine.now/1e6:5.2f}s  8 nodes: {r.throughput_mops:5.2f} Mops")


if __name__ == "__main__":
    run_ditto()
    run_redis()
