#!/usr/bin/env python3
"""Example: comparing all 12 caching algorithms across workload families.

Uses the fast hit-rate tier (the same policy classes the DM system runs) to
sweep every integrated algorithm over every synthetic workload family — a
miniature of the analysis a practitioner would run to choose Ditto's expert
set for their traffic.

Run: python examples/policy_comparison.py
"""

from repro.bench import format_table
from repro.cachesim import SampledAdaptiveCache
from repro.core import POLICY_REGISTRY
from repro.workloads import WORKLOAD_CATALOG, footprint

N_REQUESTS = 40_000
CACHE_FRAC = 0.1


def main() -> None:
    workload_names = list(WORKLOAD_CATALOG)
    rows = []
    best = {}
    for algorithm in POLICY_REGISTRY:
        row = [algorithm]
        for name in workload_names:
            spec = WORKLOAD_CATALOG[name]
            trace = spec.trace(N_REQUESTS, seed=7)
            capacity = max(int(footprint(trace) * CACHE_FRAC), 8)
            cache = SampledAdaptiveCache(capacity, policies=(algorithm,), seed=1)
            for key in trace:
                cache.access(int(key))
            rate = cache.hit_rate()
            row.append(rate)
            if rate > best.get(name, (None, -1.0))[1]:
                best[name] = (algorithm, rate)
        rows.append(row)

    # Adaptive Ditto (LRU+LFU) as the reference line.
    ditto_row = ["ditto(lru+lfu)"]
    for name in workload_names:
        spec = WORKLOAD_CATALOG[name]
        trace = spec.trace(N_REQUESTS, seed=7)
        capacity = max(int(footprint(trace) * CACHE_FRAC), 8)
        cache = SampledAdaptiveCache(capacity, policies=("lru", "lfu"), seed=1)
        for key in trace:
            cache.access(int(key))
        ditto_row.append(cache.hit_rate())
    rows.append(ditto_row)

    print(format_table(["algorithm"] + workload_names, rows))
    print("\nbest fixed algorithm per workload:")
    for name, (algorithm, rate) in best.items():
        print(f"  {name:20s} {algorithm:12s} ({rate:.2%})")
    print("\nNo single fixed algorithm wins everywhere — the motivation for")
    print("Ditto's adaptive expert selection.")


if __name__ == "__main__":
    main()
