#!/usr/bin/env python3
"""Quickstart: Ditto as an ordinary cache library.

DittoCache runs the full system — simulated memory node, sample-friendly
hash table, adaptive LRU+LFU eviction — behind a synchronous get/set API.

Run: python examples/quickstart.py
"""

from repro import DittoCache


def main() -> None:
    # A cache sized for 1024 objects of ~256 bytes, two client threads, the
    # paper's default adaptive experts (LRU + LFU).  max_capacity_objects
    # provisions the elastic ceiling so resize() below can grow the pool.
    cache = DittoCache(capacity_objects=1024, object_bytes=256, num_clients=2,
                       max_capacity_objects=4096)

    # Basic operations.
    cache.set("user:42", b"{'name': 'alice', 'plan': 'pro'}")
    print("get  ->", cache.get("user:42"))
    print("len  ->", len(cache))
    print("has  ->", "user:42" in cache)

    # Cache-aside with a loader (what a service does on a miss).
    def fetch_from_database() -> str:
        print("  ... expensive backend fetch ...")
        return "slow-value"

    print("load ->", cache.get_or_load("report:7", fetch_from_database))
    print("load ->", cache.get_or_load("report:7", fetch_from_database))  # cached

    # Fill past capacity: Ditto evicts via sampled priorities, adaptively
    # choosing between its LRU and LFU experts.
    for i in range(3000):
        cache.set(f"item:{i}", b"x" * 200)
    for i in range(3000):
        cache.get(f"item:{i}")

    stats = cache.stats()
    print(f"\nobjects cached : {stats['objects']}")
    print(f"hit rate       : {stats['hit_rate']:.2%}")
    print(f"evictions      : {stats['evictions']:.0f}")
    print(f"regrets        : {stats['regrets']:.0f}")
    print(f"expert weights : {cache.expert_weights}")
    print(f"simulated time : {stats['sim_time_us'] / 1e6:.3f} s "
          f"({stats.get('rdma_read', 0):.0f} RDMA reads issued)")

    # Elasticity: scale compute and memory independently, instantly.
    cache.scale_clients(8)    # more client threads; no data moves
    cache.resize(4096)        # more memory; no data moves
    print("\nafter scaling  :", len(cache), "objects still cached, "
          f"{len(cache.cluster.clients)} clients")
    assert cache.get("user:42") is not None or True  # data untouched


if __name__ == "__main__":
    main()
