#!/usr/bin/env python3
"""Example: a web-service session cache in front of a slow user store.

The motivating deployment from the paper's introduction: a cloud service
caches backend objects and needs the cache to (1) absorb a traffic burst by
adding CPU only, and (2) grow capacity by adding memory only — without data
migration either way.

The workload has two phases: a drifting set of active sessions
(recency-friendly) that later shifts to a skewed popular-content pattern
(frequency-friendly).  Watch the adaptive expert weights follow the change.

Run: python examples/web_session_cache.py
"""

import time

from repro import DittoCache
from repro.workloads import shifting_hotspot_trace, zipfian_trace

BACKEND_LATENCY_S = 0.0  # set > 0 to feel misses in wall-clock time
N_SESSIONS = 6000


class UserStore:
    """The slow backing database."""

    def __init__(self) -> None:
        self.reads = 0

    def load(self, session_id: int) -> bytes:
        self.reads += 1
        if BACKEND_LATENCY_S:
            time.sleep(BACKEND_LATENCY_S)
        return b"session-payload-%06d" % session_id + b"." * 180


def serve_phase(cache: DittoCache, store: UserStore, keys, label: str) -> None:
    hits0 = cache.stats()["hits"]
    total0 = hits0 + cache.stats()["misses"]
    reads0 = store.reads
    for session_id in keys:
        cache.get_or_load(f"session:{int(session_id)}", lambda sid=session_id: store.load(int(sid)))
    stats = cache.stats()
    window = stats["hits"] + stats["misses"] - total0
    hit_rate = (stats["hits"] - hits0) / window if window else 0.0
    print(f"{label:28s} hit={hit_rate:6.2%}  backend reads={store.reads - reads0:6d}  "
          f"weights={ {k: round(v, 2) for k, v in cache.expert_weights.items()} }")


def main() -> None:
    store = UserStore()
    cache = DittoCache(
        capacity_objects=800, object_bytes=220, num_clients=4, seed=1,
        max_capacity_objects=2400,  # provision the pool for the later growth
    )

    print("phase 1: active sessions drift (recency-friendly)")
    phase1 = shifting_hotspot_trace(40_000, N_SESSIONS, working_set=500,
                                    dwell=1200, shift=120, seed=7)
    for chunk in range(4):
        serve_phase(cache, store, phase1[chunk * 10_000:(chunk + 1) * 10_000],
                    f"  drift window {chunk}")

    print("phase 2: skewed popular content (frequency-friendly)")
    phase2 = zipfian_trace(40_000, N_SESSIONS, theta=1.1, seed=8)
    for chunk in range(4):
        serve_phase(cache, store, phase2[chunk * 10_000:(chunk + 1) * 10_000],
                    f"  zipf window {chunk}")

    print("\ntraffic burst: scale compute only (no data migration)")
    cache.scale_clients(16)
    serve_phase(cache, store, phase2[:10_000], "  after +12 clients")

    print("capacity need: scale memory only (no data migration)")
    cache.resize(2400)
    serve_phase(cache, store, phase2[10_000:20_000], "  after 3x memory")
    serve_phase(cache, store, phase2[20_000:30_000], "  warm at 3x memory")

    print(f"\ntotal backend reads saved: "
          f"{cache.stats()['hits']:.0f} of {cache.stats()['hits'] + store.reads:.0f} lookups")


if __name__ == "__main__":
    main()
