"""repro — a reproduction of Ditto, the elastic and adaptive
memory-disaggregated caching system (SOSP 2023).

Public API highlights:

- :class:`repro.DittoCache` — synchronous cache over simulated disaggregated
  memory (the paper's system, usable as a library).
- :class:`repro.DittoCluster` — the full deployment for timed experiments.
- :mod:`repro.cachesim` — fast hit-rate simulator sharing the same policies.
- :mod:`repro.workloads` — YCSB and synthetic real-world-like trace
  generators.
- :mod:`repro.baselines` — Redis-like, CliqueMap, and Shard-LRU comparators.
- :mod:`repro.bench` — the experiment harness regenerating every paper
  figure/table.
"""

from .core import (
    CacheOperationError,
    CachePolicy,
    DittoCache,
    DittoCluster,
    DittoConfig,
    Metadata,
    POLICY_REGISTRY,
    make_policy,
)
from .rdma import NetworkParams

__version__ = "1.0.0"

__all__ = [
    "CacheOperationError",
    "CachePolicy",
    "DittoCache",
    "DittoCluster",
    "DittoConfig",
    "Metadata",
    "NetworkParams",
    "POLICY_REGISTRY",
    "make_policy",
    "__version__",
]
