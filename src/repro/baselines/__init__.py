"""Baseline systems the paper compares against."""

from .cliquemap import CliqueMapClient, CliqueMapCluster, CliqueMapServer
from .kvs import DmKvsClient, DmKvsCluster
from .redis_like import RedisClient, RedisCluster
from .shard_lru import ShardLruClient, ShardLruCluster

__all__ = [
    "CliqueMapClient",
    "CliqueMapCluster",
    "CliqueMapServer",
    "DmKvsClient",
    "DmKvsCluster",
    "RedisClient",
    "RedisCluster",
    "ShardLruClient",
    "ShardLruCluster",
]
