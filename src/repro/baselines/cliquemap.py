"""CliqueMap (SIGCOMM'21) reimplemented per the paper's description (§5.1).

Hybrid RMA/RPC division of labour:

- *Get*: clients issue one-sided READs (index bucket, then the object) and
  record the access locally; no server CPU on the read path.
- *Set*: an RPC served by the memory node's CPU, which owns the cache
  structures and runs a **precise** LRU or LFU eviction.
- Periodically each client ships its buffered access information to the
  server, which merges it into the caching structures — the CPU and network
  amplification the paper identifies as CliqueMap's bottleneck on
  read-intensive workloads.

Replication/fault tolerance are disabled, as in the paper's comparison.  The
server's index and caching structures are cost-modelled: the verbs and RPCs
carry full timing (NIC + controller CPU contention) while the structures
themselves are the exact LRU/LFU models from ``repro.cachesim``.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from ..cachesim import ExactLFUCache, ExactLRUCache
from ..core import layout as L
from ..memory import Controller, MemoryNode, MemoryPool
from ..obs.observer import current as obs_current
from ..rdma.params import NetworkParams
from ..rdma.verbs import RdmaEndpoint
from ..sim import CounterSet, Engine

_BUCKET_BYTES = 64


class CliqueMapServer:
    """Server-side state: value store + precise caching structure."""

    def __init__(self, policy: str, capacity_objects: int):
        policy = policy.lower()
        if policy == "lru":
            self.cache = ExactLRUCache(capacity_objects)
        elif policy == "lfu":
            self.cache = ExactLFUCache(capacity_objects)
        else:
            raise ValueError(f"CliqueMap supports lru/lfu, got {policy!r}")
        self.policy = policy
        self.store: Dict[bytes, bytes] = {}
        self.sets = 0
        self.merged_entries = 0

    def handle_set(self, payload) -> bool:
        key, value = payload
        self.sets += 1
        for evicted in self.cache.insert(key):
            self.store.pop(evicted, None)
        self.store[key] = value
        return True

    def handle_merge(self, keys: List[bytes]) -> int:
        self.merged_entries += len(keys)
        for key in keys:
            self.cache.touch(key)
        return len(keys)

    def __contains__(self, key: bytes) -> bool:
        return key in self.store


class CliqueMapCluster:
    """A CliqueMap deployment on the simulated fabric."""

    def __init__(
        self,
        policy: str = "lru",
        capacity_objects: int = 4096,
        object_bytes: int = 256,
        num_clients: int = 1,
        server_cores: int = 1,
        sync_every: int = 64,
        set_cpu_us: float = 1.5,
        merge_entry_cpu_us: float = 0.3,
        params: Optional[NetworkParams] = None,
        engine: Optional[Engine] = None,
    ):
        self.engine = engine or Engine()
        self.params = params or NetworkParams()
        self.sync_every = sync_every
        self.object_bytes = object_bytes
        self.server = CliqueMapServer(policy, capacity_objects)
        # One MN hosts the data; its controller cores are the server CPU.
        size = 4 * capacity_objects * max(object_bytes, 64) + (1 << 20)
        self.node = MemoryNode(self.engine, size=size, params=self.params)
        self.pool = MemoryPool([self.node])
        self.controller = Controller(self.node, cores=server_cores)
        self.controller.register(
            "cm_set", self.server.handle_set, cpu_us=set_cpu_us
        )
        self.controller.register(
            "cm_merge",
            self.server.handle_merge,
            cpu_us=lambda keys: merge_entry_cpu_us * len(keys),
        )
        obs = obs_current()
        self.obs = obs
        self.tracer = (
            obs.bind(self.engine, label="cliquemap") if obs is not None else None
        )
        if self.tracer is not None:
            self.controller.tracer = self.tracer
        self.counters = CounterSet()
        if obs is not None:
            obs.bridge_counters(
                self.counters, component="cliquemap",
                cluster=str(self.tracer.pid) if self.tracer is not None else "0",
            )
        self.clients: List[CliqueMapClient] = [
            CliqueMapClient(self, i) for i in range(num_clients)
        ]

    def set_server_cores(self, cores: int) -> None:
        """The Figure 15 knob: MN-side CPU cores."""
        self.controller.set_cores(cores)

    def add_clients(self, n: int) -> None:
        base = len(self.clients)
        self.clients.extend(CliqueMapClient(self, base + i) for i in range(n))

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.clients)

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.clients)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CliqueMapClient:
    """Client: RMA Gets, RPC Sets, periodic access-info shipping."""

    def __init__(self, cluster: CliqueMapCluster, client_id: int):
        self.cluster = cluster
        self.client_id = client_id
        self.ep = RdmaEndpoint(
            cluster.engine, cluster.pool, cluster.params,
            counters=cluster.counters, tracer=cluster.tracer,
        )
        self._access_buffer: List[bytes] = []
        self.hits = 0
        self.misses = 0

    def _record_access(self, key: bytes) -> Generator:
        self._access_buffer.append(key)
        if len(self._access_buffer) >= self.cluster.sync_every:
            batch, self._access_buffer = self._access_buffer, []
            payload_bytes = sum(len(k) + 8 for k in batch)
            yield from self.ep.rpc(
                self.cluster.node, "cm_merge", batch, size=payload_bytes
            )

    def get(self, key: bytes) -> Generator:
        server = self.cluster.server
        yield from self.ep.charge(self.cluster.node, "read", _BUCKET_BYTES)
        if key in server:
            value = server.store[key]
            yield from self.ep.charge(
                self.cluster.node, "read", L.object_span(len(key), len(value))
            )
            self.hits += 1
            yield from self._record_access(key)
            return value
        self.misses += 1
        return None

    def set(self, key: bytes, value: bytes) -> Generator:
        yield from self.ep.rpc(
            self.cluster.node,
            "cm_set",
            (key, value),
            size=L.object_span(len(key), len(value)),
        )
        return True
