"""A plain key-value *store* on disaggregated memory (the "KVS" of Fig. 2).

FUSEE-style: a lock-free hash index accessed with one-sided verbs, no caching
metadata, no eviction.  It marks the throughput/latency budget that caching
data structures eat into — the motivation for Ditto's client-centric design.
"""

from __future__ import annotations

import struct
from typing import Generator, List, Optional

from ..memory import ClientAllocator, Controller, MemoryNode, MemoryPool
from ..memory.node import BLOCK_SIZE
from ..obs.observer import current as obs_current
from ..rdma.params import NetworkParams
from ..rdma.verbs import RdmaEndpoint
from ..sim import CounterSet, Engine
from ..core import layout as L

_SLOT = 8  # atomic field only: pointer | fp | size


class KvsLayout:
    """Bucketed table of bare 8-byte atomic slots."""

    SLOTS_PER_BUCKET = 8

    def __init__(self, base: int, num_buckets: int):
        self.base = base
        self.num_buckets = num_buckets
        self.table_addr = (base + 63) // 64 * 64
        self.total_slots = num_buckets * self.SLOTS_PER_BUCKET

    @property
    def reserved_bytes(self) -> int:
        return (self.table_addr + self.total_slots * _SLOT) - self.base

    def bucket_addr(self, bucket: int) -> int:
        return self.table_addr + bucket * self.SLOTS_PER_BUCKET * _SLOT


class DmKvsCluster:
    """Deployment wiring for the plain KVS."""

    def __init__(
        self,
        capacity_objects: int = 4096,
        object_bytes: int = 256,
        num_clients: int = 1,
        params: Optional[NetworkParams] = None,
        seed: int = 0,
        engine: Optional[Engine] = None,
        segment_bytes: int = 256 * 1024,
    ):
        self.engine = engine or Engine()
        self.params = params or NetworkParams()
        num_buckets = -(-2 * capacity_objects // KvsLayout.SLOTS_PER_BUCKET)
        self.layout = KvsLayout(0, num_buckets)
        span = L.object_span(8, object_bytes)
        heap = 2 * capacity_objects * ClientAllocator.blocks_for(span) * BLOCK_SIZE
        heap += 2 * num_clients * segment_bytes + (1 << 20)
        self.node = MemoryNode(
            self.engine, size=self.layout.reserved_bytes + heap, params=self.params
        )
        self.pool = MemoryPool([self.node])
        self.controller = Controller(
            self.node, cores=1, reserve=self.layout.reserved_bytes
        )
        obs = obs_current()
        self.obs = obs
        self.tracer = obs.bind(self.engine, label="kvs") if obs is not None else None
        if self.tracer is not None:
            self.controller.tracer = self.tracer
        self.counters = CounterSet()
        if obs is not None:
            obs.bridge_counters(
                self.counters, component="kvs",
                cluster=str(self.tracer.pid) if self.tracer is not None else "0",
            )
        self.segment_bytes = segment_bytes
        self.clients: List[DmKvsClient] = [
            DmKvsClient(self, i) for i in range(num_clients)
        ]

    def add_clients(self, n: int) -> None:
        base = len(self.clients)
        self.clients.extend(DmKvsClient(self, base + i) for i in range(n))


class DmKvsClient:
    """One KVS client thread: Get = 2 READs, Set = READ + WRITE + CAS."""

    def __init__(self, cluster: DmKvsCluster, client_id: int):
        self.cluster = cluster
        self.client_id = client_id
        self.ep = RdmaEndpoint(
            cluster.engine, cluster.pool, cluster.params,
            counters=cluster.counters, tracer=cluster.tracer,
        )
        self.alloc = ClientAllocator(self.ep, cluster.node, cluster.segment_bytes)
        self.hits = 0
        self.misses = 0

    def _scan_bucket(self, bucket_raw: bytes, fp: int):
        for i in range(KvsLayout.SLOTS_PER_BUCKET):
            (atomic,) = struct.unpack_from("<Q", bucket_raw, i * _SLOT)
            if atomic == 0:
                continue
            pointer, slot_fp, size = L.unpack_atomic(atomic)
            if slot_fp == fp:
                yield i, atomic, pointer, size * BLOCK_SIZE

    def _buckets_of(self, key_hash: int):
        """RACE-style two-choice hashing: a key lives in one of two buckets."""
        nb = self.cluster.layout.num_buckets
        first = key_hash % nb
        second = (key_hash >> 24) % nb
        if second == first:
            second = (first + 1) % nb
        return first, second

    def _find_in_bucket(self, raw: bytes, fp: int, key: bytes) -> Generator:
        """Returns (slot_index, atomic, pointer, nbytes, value) or None."""
        for i, atomic, pointer, nbytes in self._scan_bucket(raw, fp):
            obj = yield from self.ep.read(pointer, nbytes)
            try:
                found, value, _ext = L.decode_object(obj)
            except (ValueError, struct.error):
                continue
            if found == key:
                return i, atomic, pointer, nbytes, value
        return None

    def get(self, key: bytes) -> Generator:
        lay = self.cluster.layout
        key_hash = L.stable_hash64(key)
        fp = L.fingerprint(key_hash)
        for bucket in self._buckets_of(key_hash):
            addr = lay.bucket_addr(bucket)
            raw = yield from self.ep.read(addr, lay.SLOTS_PER_BUCKET * _SLOT)
            match = yield from self._find_in_bucket(raw, fp, key)
            if match is not None:
                self.hits += 1
                return match[4]
        self.misses += 1
        return None

    def set(self, key: bytes, value: bytes) -> Generator:
        lay = self.cluster.layout
        key_hash = L.stable_hash64(key)
        fp = L.fingerprint(key_hash)
        span = L.object_span(len(key), len(value))
        for _attempt in range(16):
            target_addr: Optional[int] = None
            target_atomic = 0
            old_pointer = old_bytes = 0
            empty_addr: Optional[int] = None
            for bucket in self._buckets_of(key_hash):
                bucket_addr = lay.bucket_addr(bucket)
                raw = yield from self.ep.read(bucket_addr, lay.SLOTS_PER_BUCKET * _SLOT)
                match = yield from self._find_in_bucket(raw, fp, key)
                if match is not None:
                    i, atomic, pointer, nbytes, _old = match
                    target_addr = bucket_addr + i * _SLOT
                    target_atomic = atomic
                    old_pointer, old_bytes = pointer, nbytes
                    break
                if empty_addr is None:
                    for i in range(lay.SLOTS_PER_BUCKET):
                        (atomic,) = struct.unpack_from("<Q", raw, i * _SLOT)
                        if atomic == 0:
                            empty_addr = bucket_addr + i * _SLOT
                            break
            if target_addr is None:
                target_addr = empty_addr
            if target_addr is None:
                raise RuntimeError("KVS bucket overflow; size the table larger")
            addr = yield from self.alloc.alloc(span)
            yield from self.ep.write(addr, L.encode_object(key, value))
            new_atomic = L.pack_atomic(addr, fp, ClientAllocator.blocks_for(span))
            old = yield from self.ep.cas(target_addr, target_atomic, new_atomic)
            if old == target_atomic:
                if old_pointer:
                    self.alloc.free(old_pointer, old_bytes)
                return True
            self.alloc.free(addr, span)
        raise RuntimeError("KVS set exhausted retries")
