"""A Redis-like monolithic-server caching cluster with live migration.

The elasticity strawman of Figures 1 and 13: data is sharded across
fixed-size VM nodes (1 CPU core each); every request is an RPC served by the
owner shard's CPU; scaling the cluster re-shards the key space and *migrates*
data, which (a) delays the performance gain / resource reclamation by the
migration duration and (b) dips throughput and inflates tail latency while
source and destination CPUs copy keys.

The model captures exactly those effects:

- per-node CPU as a simulated resource (the skew bottleneck on Zipfian
  workloads — the hottest shard caps cluster throughput),
- migration as background processes that occupy source *and* destination
  CPUs per moved key,
- request redirection for keys whose move has already completed (clients
  learn per-key placement only via MOVED responses, as in Redis Cluster).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..core.layout import stable_hash64
from ..sim import Engine, Resource, Timeout


class RedisNode:
    """One cache VM: a single-core server."""

    def __init__(self, engine: Engine):
        self.cpu = Resource(engine, 1)
        self.served = 0


class _Migration:
    """Book-keeping of one in-flight re-sharding."""

    def __init__(self, old_n: int, new_n: int, total_moving: int, streams: int):
        self.old_n = old_n
        self.new_n = new_n
        self.total_moving = total_moving
        self.moved = 0
        self.streams_left = streams
        self.started_at: float = 0.0
        self.finished_at: Optional[float] = None

    @property
    def fraction(self) -> float:
        if self.total_moving == 0:
            return 1.0
        return self.moved / self.total_moving


class RedisCluster:
    """The sharded monolithic cache."""

    def __init__(
        self,
        initial_nodes: int = 32,
        engine: Optional[Engine] = None,
        op_cpu_us: float = 2.5,
        client_rtt_us: float = 100.0,
        redirect_cpu_us: float = 0.4,
        migration_key_cpu_us: float = 3.0,
        migration_batch: int = 256,
        migration_duty_cycle: float = 0.25,
    ):
        """``migration_duty_cycle`` throttles migration streams to a fraction
        of each involved node's CPU (Redis interleaves MIGRATE bursts with
        request serving), bounding the throughput dip."""
        if not 0.0 < migration_duty_cycle <= 1.0:
            raise ValueError("migration_duty_cycle must be in (0, 1]")
        if initial_nodes < 1:
            raise ValueError("need at least one node")
        self.engine = engine or Engine()
        self.op_cpu_us = op_cpu_us
        self.client_rtt_us = client_rtt_us
        self.redirect_cpu_us = redirect_cpu_us
        self.migration_key_cpu_us = migration_key_cpu_us
        self.migration_batch = migration_batch
        self.migration_duty_cycle = migration_duty_cycle
        self.nodes: List[RedisNode] = [RedisNode(self.engine) for _ in range(initial_nodes)]
        self.active_nodes = initial_nodes
        self.store: Dict[bytes, bytes] = {}
        self.migration: Optional[_Migration] = None
        self.migrations_done: List[_Migration] = []
        self.redirects = 0
        self.clients: List[RedisClient] = []

    # -- data ---------------------------------------------------------------

    def load(self, items: Dict[bytes, bytes]) -> None:
        """Pre-populate (outside measured time)."""
        self.store.update(items)

    # -- placement ------------------------------------------------------------

    @staticmethod
    def _h2(key_hash: int) -> float:
        """Secondary hash in [0, 1): deterministic per-key move ordering."""
        return ((key_hash * 0x9E3779B97F4A7C15) >> 40 & 0xFFFFFF) / float(1 << 24)

    def _is_moving(self, key_hash: int) -> bool:
        mig = self.migration
        if mig is None:
            return False
        return key_hash % mig.new_n != key_hash % mig.old_n

    def route(self, key_hash: int) -> Tuple[int, bool]:
        """Owner node index and whether the first contact gets a MOVED."""
        mig = self.migration
        if mig is None or not self._is_moving(key_hash):
            return key_hash % self.active_nodes, False
        if self._h2(key_hash) < mig.fraction:
            # Already moved: the client still contacts the old owner first.
            return key_hash % mig.new_n, True
        return key_hash % mig.old_n, False

    # -- elasticity --------------------------------------------------------------

    def scale(self, new_count: int) -> None:
        """Begin re-sharding to ``new_count`` nodes (asynchronous)."""
        if self.migration is not None:
            raise RuntimeError("a migration is already in progress")
        old = self.active_nodes
        if new_count == old:
            return
        while len(self.nodes) < new_count:
            self.nodes.append(RedisNode(self.engine))
        moving = sum(
            1
            for key in self.store
            if stable_hash64(key) % new_count != stable_hash64(key) % old
        )
        streams = abs(new_count - old)
        mig = _Migration(old, new_count, moving, streams)
        mig.started_at = self.engine.now
        self.migration = mig
        per_stream = -(-moving // streams) if streams else 0
        for s in range(streams):
            count = min(per_stream, max(moving - s * per_stream, 0))
            if new_count > old:
                src, dst = s % old, old + s
            else:
                src, dst = new_count + s, s % new_count
            self.engine.spawn(
                self._migrate_stream(mig, src, dst, count),
                name=f"migrate-{src}->{dst}",
            )
        # Growing: new nodes serve immediately for already-moved keys, so the
        # routing capacity changes only when migration completes (below).

    def _migrate_stream(self, mig: _Migration, src: int, dst: int, count: int) -> Generator:
        remaining = count
        cost = self.migration_key_cpu_us
        duty = self.migration_duty_cycle
        while remaining > 0:
            batch = min(self.migration_batch, remaining)
            yield from self.nodes[src].cpu.serve(batch * cost)
            yield from self.nodes[dst].cpu.serve(batch * cost)
            mig.moved += batch
            remaining -= batch
            if duty < 1.0:
                # Back off so request serving gets (1 - duty) of the CPUs.
                yield Timeout(2 * batch * cost * (1.0 / duty - 1.0))
        mig.streams_left -= 1
        if mig.streams_left == 0:
            mig.finished_at = self.engine.now
            self.active_nodes = mig.new_n
            del self.nodes[mig.new_n :]  # reclamation (no-op when growing)
            self.migration = None
            self.migrations_done.append(mig)

    @property
    def provisioned_nodes(self) -> int:
        """Nodes holding resources (reclamation lags during scale-in)."""
        return len(self.nodes)

    def add_clients(self, n: int) -> None:
        base = len(self.clients)
        self.clients.extend(RedisClient(self, base + i) for i in range(n))


class RedisClient:
    """A client of the Redis-like cluster (RPC per request)."""

    def __init__(self, cluster: RedisCluster, client_id: int):
        self.cluster = cluster
        self.client_id = client_id
        self.hits = 0
        self.misses = 0

    def _request(self, key_hash: int) -> Generator:
        cl = self.cluster
        node_idx, redirected = cl.route(key_hash)
        yield Timeout(cl.client_rtt_us / 2)
        if redirected:
            cl.redirects += 1
            old_idx = key_hash % (cl.migration.old_n if cl.migration else cl.active_nodes)
            yield from cl.nodes[old_idx].cpu.serve(cl.redirect_cpu_us)
            yield Timeout(cl.client_rtt_us)  # bounce to the real owner
        node = cl.nodes[node_idx]
        yield from node.cpu.serve(cl.op_cpu_us)
        node.served += 1
        yield Timeout(cl.client_rtt_us / 2)

    def get(self, key: bytes) -> Generator:
        yield from self._request(stable_hash64(key))
        value = self.cluster.store.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def set(self, key: bytes, value: bytes) -> Generator:
        yield from self._request(stable_hash64(key))
        self.cluster.store[key] = value
        return True
