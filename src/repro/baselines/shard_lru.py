"""Shard-LRU / KVC / KVC-S: lock-protected LRU lists on disaggregated memory.

The straightforward port of a server-centric cache to DM (paper §3.1 and the
Shard-LRU baseline of §5): a hash index plus per-shard doubly linked LRU
lists in the memory pool, protected by spinlock words that clients acquire
with RDMA_CAS.  Every Get must splice its object to the list head — extra
round trips on the critical path — and lock-fail retries burn the MN NIC's
message budget, which is exactly the collapse Figure 2 shows.

Fidelity note: the lock words and the hash table are real bytes CASed/read
through the verb layer (so contention is real); the *list pointer updates*
are charged as their canonical verb sequence (1 READ + 3 WRITEs for a splice)
while the list order itself is tracked in local mirrors of the remote lists.
This keeps the timing and message counts faithful without a second
doubly-linked-list byte codec; Ditto, the system under study, is fully
byte-level.

Configurations: ``shards=1, backoff_us=0`` is Fig. 2's KVC; ``shards=32,
backoff_us=5`` is KVC-S and the Shard-LRU baseline of Fig. 14.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Generator, List, Optional

from ..core import layout as L
from ..memory import ClientAllocator, Controller, MemoryNode, MemoryPool
from ..memory.node import BLOCK_SIZE
from ..obs.observer import current as obs_current
from ..rdma.params import NetworkParams
from ..rdma.verbs import RdmaEndpoint
from ..sim import CounterSet, Engine, Timeout

_SLOT = 8
SLOTS_PER_BUCKET = 8
_NODE_BYTES = 16  # prev + next pointers of a list node


class ShardLruCluster:
    """Deployment: hash table + per-shard lock words and LRU lists."""

    def __init__(
        self,
        capacity_objects: int = 4096,
        object_bytes: int = 256,
        num_clients: int = 1,
        shards: int = 32,
        backoff_us: float = 5.0,
        params: Optional[NetworkParams] = None,
        seed: int = 0,
        engine: Optional[Engine] = None,
        segment_bytes: int = 256 * 1024,
    ):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.engine = engine or Engine()
        self.params = params or NetworkParams()
        self.shards = shards
        self.backoff_us = backoff_us
        self.capacity_per_shard = max(capacity_objects // shards, 1)

        # [lock words | list head/tail words | hash table | heap]
        self.locks_addr = 0
        heads_addr = shards * 8
        table_start = heads_addr + shards * _NODE_BYTES
        self.num_buckets = -(-2 * capacity_objects // SLOTS_PER_BUCKET)
        self.table_addr = (table_start + 63) // 64 * 64
        self.total_slots = self.num_buckets * SLOTS_PER_BUCKET
        reserved = self.table_addr + self.total_slots * _SLOT

        span = L.object_span(8, object_bytes)
        heap = 2 * capacity_objects * ClientAllocator.blocks_for(span) * BLOCK_SIZE
        heap += 2 * num_clients * segment_bytes + (1 << 20)
        self.node = MemoryNode(self.engine, size=reserved + heap, params=self.params)
        self.pool = MemoryPool([self.node])
        self.controller = Controller(self.node, cores=1, reserve=reserved)
        obs = obs_current()
        self.obs = obs
        self.tracer = (
            obs.bind(self.engine, label="shard-lru") if obs is not None else None
        )
        if self.tracer is not None:
            self.controller.tracer = self.tracer
        self.counters = CounterSet()
        if obs is not None:
            obs.bridge_counters(
                self.counters, component="shard-lru",
                cluster=str(self.tracer.pid) if self.tracer is not None else "0",
            )
        self.segment_bytes = segment_bytes
        # Local mirror of each shard's remote LRU list:
        # key -> (slot_addr, pointer, object_bytes)
        self.lists: List["OrderedDict[bytes, tuple]"] = [
            OrderedDict() for _ in range(shards)
        ]
        self.clients: List[ShardLruClient] = [
            ShardLruClient(self, i) for i in range(num_clients)
        ]

    def lock_addr(self, shard: int) -> int:
        return self.locks_addr + shard * 8

    def bucket_addr(self, bucket: int) -> int:
        return self.table_addr + bucket * SLOTS_PER_BUCKET * _SLOT

    def shard_of(self, key_hash: int) -> int:
        return (key_hash >> 16) % self.shards

    def add_clients(self, n: int) -> None:
        base = len(self.clients)
        self.clients.extend(ShardLruClient(self, base + i) for i in range(n))

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.clients)

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.clients)


class ShardLruClient:
    """One client thread of the Shard-LRU cache."""

    def __init__(self, cluster: ShardLruCluster, client_id: int):
        self.cluster = cluster
        self.client_id = client_id
        self.ep = RdmaEndpoint(
            cluster.engine, cluster.pool, cluster.params,
            counters=cluster.counters, tracer=cluster.tracer,
        )
        self.alloc = ClientAllocator(self.ep, cluster.node, cluster.segment_bytes)
        self.hits = 0
        self.misses = 0
        self.lock_retries = 0
        self.evictions = 0

    # -- remote spinlock ---------------------------------------------------

    def _lock(self, shard: int) -> Generator:
        addr = self.cluster.lock_addr(shard)
        while True:
            old = yield from self.ep.cas(addr, 0, 1)
            if old == 0:
                return
            self.lock_retries += 1
            self.cluster.counters.add("lock_retries")
            if self.cluster.backoff_us:
                yield Timeout(self.cluster.backoff_us)

    def _unlock(self, shard: int) -> Generator:
        yield from self.ep.write(self.cluster.lock_addr(shard), bytes(8))

    def _splice_to_head(self, shard: int, key: bytes) -> Generator:
        """Charge the canonical list-move verbs and mirror the reorder."""
        node = self.cluster.node
        yield from self.ep.charge(node, "read", _NODE_BYTES)
        for _ in range(3):
            yield from self.ep.charge(node, "write", _NODE_BYTES)
        lru = self.cluster.lists[shard]
        if key in lru:
            lru.move_to_end(key)

    # -- hash-table helpers --------------------------------------------------

    def _scan_bucket(self, raw: bytes, fp: int):
        for i in range(SLOTS_PER_BUCKET):
            (atomic,) = struct.unpack_from("<Q", raw, i * _SLOT)
            if atomic == 0:
                continue
            pointer, slot_fp, size = L.unpack_atomic(atomic)
            if slot_fp == fp:
                yield i, atomic, pointer, size * BLOCK_SIZE

    def _buckets_of(self, key_hash: int):
        """RACE-style two-choice hashing."""
        nb = self.cluster.num_buckets
        first = key_hash % nb
        second = (key_hash >> 24) % nb
        if second == first:
            second = (first + 1) % nb
        return first, second

    def _find(self, key_hash: int, fp: int, key: bytes) -> Generator:
        """Locate the key: (slot_addr, atomic, pointer, nbytes, value) or None."""
        cl = self.cluster
        for bucket in self._buckets_of(key_hash):
            bucket_addr = cl.bucket_addr(bucket)
            raw = yield from self.ep.read(bucket_addr, SLOTS_PER_BUCKET * _SLOT)
            for i, atomic, pointer, nbytes in self._scan_bucket(raw, fp):
                obj = yield from self.ep.read(pointer, nbytes)
                try:
                    found, value, _ext = L.decode_object(obj)
                except (ValueError, struct.error):
                    continue
                if found == key:
                    return bucket_addr + i * _SLOT, atomic, pointer, nbytes, value
        return None

    # -- operations ------------------------------------------------------------

    def get(self, key: bytes) -> Generator:
        cl = self.cluster
        key_hash = L.stable_hash64(key)
        fp = L.fingerprint(key_hash)
        match = yield from self._find(key_hash, fp, key)
        if match is not None:
            shard = cl.shard_of(key_hash)
            yield from self._lock(shard)
            yield from self._splice_to_head(shard, key)
            yield from self._unlock(shard)
            self.hits += 1
            return match[4]
        self.misses += 1
        return None

    def _find_empty(self, key_hash: int) -> Generator:
        """An empty slot address in either candidate bucket, or None."""
        cl = self.cluster
        for bucket in self._buckets_of(key_hash):
            bucket_addr = cl.bucket_addr(bucket)
            raw = yield from self.ep.read(bucket_addr, SLOTS_PER_BUCKET * _SLOT)
            for i in range(SLOTS_PER_BUCKET):
                (atomic,) = struct.unpack_from("<Q", raw, i * _SLOT)
                if atomic == 0:
                    return bucket_addr + i * _SLOT
        return None

    def set(self, key: bytes, value: bytes) -> Generator:
        cl = self.cluster
        key_hash = L.stable_hash64(key)
        fp = L.fingerprint(key_hash)
        shard = cl.shard_of(key_hash)
        span = L.object_span(len(key), len(value))
        for _attempt in range(16):
            match = yield from self._find(key_hash, fp, key)
            old_pointer = old_bytes = 0
            if match is not None:
                slot_addr, target_atomic, old_pointer, old_bytes, _old = match
            else:
                yield from self._lock(shard)
                while len(cl.lists[shard]) >= cl.capacity_per_shard:
                    yield from self._evict_locked(shard)
                yield from self._unlock(shard)
                slot_addr = yield from self._find_empty(key_hash)
                target_atomic = 0
                if slot_addr is None:
                    raise RuntimeError("Shard-LRU bucket overflow; enlarge table")
            addr = yield from self.alloc.alloc(span)
            yield from self.ep.write(addr, L.encode_object(key, value))
            new_atomic = L.pack_atomic(addr, fp, ClientAllocator.blocks_for(span))
            old = yield from self.ep.cas(slot_addr, target_atomic, new_atomic)
            if old != target_atomic:
                self.alloc.free(addr, span)
                continue
            if old_pointer:
                self.alloc.free(old_pointer, old_bytes)
            yield from self._lock(shard)
            lru = cl.lists[shard]
            lru[key] = (slot_addr, addr, ClientAllocator.blocks_for(span) * BLOCK_SIZE)
            yield from self._splice_to_head(shard, key)
            yield from self._unlock(shard)
            return True
        raise RuntimeError("Shard-LRU set exhausted retries")

    def _evict_locked(self, shard: int) -> Generator:
        """Evict the shard's LRU tail (caller holds the shard lock)."""
        lru = self.cluster.lists[shard]
        victim, (slot_addr, pointer, nbytes) = next(iter(lru.items()))
        # tail pointer READ + victim slot read & CAS + list unlink WRITEs
        yield from self.ep.charge(self.cluster.node, "read", _NODE_BYTES)
        raw = yield from self.ep.read(slot_addr, 8)
        (atomic,) = struct.unpack("<Q", raw)
        old = yield from self.ep.cas(slot_addr, atomic, 0)
        for _ in range(2):
            yield from self.ep.charge(self.cluster.node, "write", _NODE_BYTES)
        del lru[victim]
        if old == atomic:
            self.alloc.free(pointer, nbytes)
        self.evictions += 1
