"""Experiment harness: drivers, result formatting, and scaling knobs."""

from .format import format_table, print_table
from .runner import (
    Feed,
    Harness,
    MeasureResult,
    make_value,
    pack_key,
    preload,
)
from .scale import scale_name, scaled

__all__ = [
    "Feed",
    "Harness",
    "MeasureResult",
    "format_table",
    "make_value",
    "pack_key",
    "preload",
    "print_table",
    "scale_name",
    "scaled",
]
