"""Experiment harness: drivers, result formatting, and scaling knobs."""

from .format import format_table, print_table
from .parallel import (
    ExperimentJob,
    JobOutcome,
    ParallelRunner,
    ResultCache,
    run_grid,
)
from .runner import (
    Feed,
    Harness,
    MeasureResult,
    make_value,
    pack_key,
    preload,
)
from .scale import scale_name, scaled

__all__ = [
    "ExperimentJob",
    "Feed",
    "Harness",
    "JobOutcome",
    "MeasureResult",
    "ParallelRunner",
    "ResultCache",
    "format_table",
    "make_value",
    "pack_key",
    "preload",
    "print_table",
    "run_grid",
    "scale_name",
    "scaled",
]
