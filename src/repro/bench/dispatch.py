"""Pluggable job dispatchers for the parallel benchmark runner.

:class:`ParallelRunner` (``repro.bench.parallel``) separates *what* to run
(spawn-safe job specs: ``module:attr`` + JSON params) from *where* to run it.
A dispatcher takes the list of cache-miss specs and returns one raw result
per spec, in order:

- :class:`LocalPoolDispatcher` — the default: a spawn-context
  ``ProcessPoolExecutor`` on this machine (inline when one worker or one
  job, so small runs skip pool startup).
- :class:`FileQueueDispatcher` — a shared-directory job/result queue for
  multi-host sweeps.  The dispatcher enqueues specs as JSON files under
  ``<root>/jobs/``; any number of workers (``python -m repro.bench.worker
  <root>``, started by hand, by SSH, or by a cluster scheduler) claim jobs
  with an atomic rename, execute them, and write ``<root>/results/``.  Any
  shared filesystem works as transport — NFS, sshfs, or a cloud mount —
  because jobs are already deterministic, self-contained, and JSON-encoded.

Selection is explicit (``ParallelRunner(dispatcher=...)``) or via the
``REPRO_DISPATCHER`` environment variable: ``local`` (default) or
``file:/path/to/queue``.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: (raw result dict, seconds the job took) — what dispatchers return per spec.
DispatchResult = Tuple[Dict[str, Any], float]


class DispatchError(RuntimeError):
    """A job failed remotely or the queue timed out."""


def _timed_execute(spec: Dict[str, Any]) -> DispatchResult:
    """Run one spec in this process; module-level for spawn picklability."""
    from .parallel import execute_job

    started = time.perf_counter()
    raw = execute_job(spec)
    return raw, time.perf_counter() - started


class LocalPoolDispatcher:
    """Process-pool execution on this machine (the classic backend)."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def dispatch(self, specs: Sequence[Dict[str, Any]]) -> List[DispatchResult]:
        if self.workers == 1 or len(specs) == 1:
            return [_timed_execute(spec) for spec in specs]
        # spawn: workers import modules fresh, never inheriting engine or
        # rng state from the parent — determinism holds regardless of what
        # the parent has already simulated.
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(specs)),
            mp_context=get_context("spawn"),
        ) as pool:
            return list(pool.map(_timed_execute, specs))


class FileQueueDispatcher:
    """Fan jobs out through a shared directory; workers may live anywhere.

    Queue layout under ``root``::

        jobs/<id>.json         enqueued spec (atomic write)
        claims/<id>.json       spec mid-execution (atomic rename = claim)
        results/<id>.json      {"raw": ..., "elapsed_s": ...} or {"error": ...}

    The claim rename is the whole coordination protocol: exactly one worker
    wins the rename, every other claimant gets a missing-file error and
    moves on.  Results are collected by polling, which is cheap at
    simulation-job granularity (seconds to minutes each).
    """

    def __init__(
        self,
        root: str,
        poll_s: float = 0.2,
        timeout_s: Optional[float] = 3600.0,
    ):
        self.root = Path(root)
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.jobs_dir = self.root / "jobs"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"

    def _write_atomic(self, path: Path, payload: Dict[str, Any]) -> None:
        tmp = path.with_suffix(f".tmp-{uuid.uuid4().hex[:8]}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, path)

    def dispatch(self, specs: Sequence[Dict[str, Any]]) -> List[DispatchResult]:
        for d in (self.jobs_dir, self.claims_dir, self.results_dir):
            d.mkdir(parents=True, exist_ok=True)
        batch = uuid.uuid4().hex[:12]
        job_ids = [f"{batch}-{i:06d}" for i in range(len(specs))]
        for job_id, spec in zip(job_ids, specs):
            self._write_atomic(self.jobs_dir / f"{job_id}.json", dict(spec))

        outcomes: Dict[str, DispatchResult] = {}
        deadline = (
            time.monotonic() + self.timeout_s
            if self.timeout_s is not None
            else None
        )
        missing = set(job_ids)
        try:
            while missing:
                for job_id in sorted(missing):
                    path = self.results_dir / f"{job_id}.json"
                    try:
                        with open(path, "r", encoding="utf-8") as fh:
                            entry = json.load(fh)
                    except FileNotFoundError:
                        continue
                    except json.JSONDecodeError:
                        continue  # torn read of a non-atomic writer; retry
                    if "error" in entry:
                        raise DispatchError(
                            f"job {job_id} failed on "
                            f"{entry.get('worker', '<unknown worker>')}: "
                            f"{entry['error']}"
                        )
                    outcomes[job_id] = (
                        entry["raw"], entry.get("elapsed_s", 0.0))
                    missing.discard(job_id)
                    path.unlink(missing_ok=True)
                if not missing:
                    break
                if deadline is not None and time.monotonic() > deadline:
                    raise DispatchError(
                        f"file queue timed out after {self.timeout_s}s with "
                        f"{len(missing)} job(s) unfinished (is a worker "
                        f"running? start one with: python -m "
                        f"repro.bench.worker {self.root})"
                    )
                time.sleep(self.poll_s)
        except BaseException:
            # The batch is abandoned: nobody will ever collect its results.
            # Remove whatever is left so idle workers don't burn time on
            # stale jobs and the shared queue doesn't accumulate orphans.
            self._discard(missing)
            raise
        return [outcomes[job_id] for job_id in job_ids]

    def _discard(self, job_ids) -> None:
        """Best-effort removal of an abandoned batch's queue files.

        Unclaimed specs vanish from ``jobs/``; for jobs already claimed the
        claim marker and any late-arriving result are removed if present
        (a worker mid-execution may still write its result afterwards —
        harmless, just one orphan file instead of a growing backlog).
        """
        for job_id in job_ids:
            # Claims carry the claiming worker's id: <job_id>.<worker>.json.
            stale = [self.jobs_dir / f"{job_id}.json",
                     self.results_dir / f"{job_id}.json"]
            try:
                stale.extend(self.claims_dir.glob(f"{job_id}.*"))
            except OSError:
                pass
            for path in stale:
                try:
                    path.unlink()
                except OSError:
                    pass


def from_env(workers: int) -> Any:
    """Build the dispatcher named by ``REPRO_DISPATCHER`` (default local).

    ``local`` → :class:`LocalPoolDispatcher`; ``file:<root>`` →
    :class:`FileQueueDispatcher` rooted at ``<root>``.
    """
    setting = os.environ.get("REPRO_DISPATCHER", "local")
    if setting in ("", "local"):
        return LocalPoolDispatcher(workers)
    if setting.startswith("file:"):
        return FileQueueDispatcher(setting[5:])
    raise ValueError(
        f"unknown REPRO_DISPATCHER {setting!r}; expected 'local' or 'file:<root>'"
    )
