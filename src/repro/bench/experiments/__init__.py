"""Per-figure experiment drivers.

One module per paper figure/table; each exposes ``run(...) -> dict`` with the
rows/series the paper reports, plus ``main()`` printing them.  The
``benchmarks/`` suite wraps these with pytest-benchmark and asserts the
paper's qualitative shapes.
"""
