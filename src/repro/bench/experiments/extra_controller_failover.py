"""Extra figure: controller failover — leader loss during a live drain.

Not a paper figure — a robustness probe of the replicated controller
metadata service (``repro.core.consensus``, DESIGN §3.6).  A Ditto cluster
with a 3-replica controller group serves YCSB-A while a memory node drains
live; the moment the drain enters its copy phase, the current raft leader
is crashed for a multi-election-timeout window.  The group must elect a
successor, the in-flight drain must complete through the failover, and
client traffic must keep flowing on the data path (which never touches the
controllers) while metadata operations stall only for the election.

Reported metrics:

- **election latency** — leader crash to the successor's ``leader`` event;
- **metadata unavailability** — leader crash to the first post-crash
  committed metadata command (the window in which segment grants and
  membership flips queued);
- **hit-rate / throughput timeline** across steady state, failover, and
  recovery, showing the data path rides through;
- the migration record, the election timeline, and the final
  memory-accounting sweep.

The fault plan is plain data, so the on-disk result cache keys on it like
on any other knob.
"""

from __future__ import annotations

from typing import Dict, List

from ...core import invariant_sweep
from ...sim.faults import ControllerCrash, FaultPlan
from ...workloads import make_ycsb
from ..format import print_table
from ..runner import Feed, Harness, preload
from ..scale import scaled
from ..systems import build_ditto


def run(
    n_keys: int = 2_000,
    num_clients: int = 4,
    controller_replicas: int = 3,
    crash_us: float = 6_000.0,
    phase_us: float = 30_000.0,
    window_us: float = 10_000.0,
    requests_per_client: int = 40_000,
    seed: int = 13,
) -> Dict:
    cluster = build_ditto(
        2 * n_keys, num_clients, seed=seed, num_memory_nodes=3,
        faults=FaultPlan(),  # arm an inert injector; the crash loads later
        controller_replicas=controller_replicas,
    )
    group = cluster.consensus
    preload(cluster.engine, cluster.clients, range(n_keys), value_size=232)
    harness = Harness(
        cluster.engine, value_size=232, miss_penalty_us=200.0,
        tolerate_failures=True,
    )
    feeds = [
        Feed.from_requests(
            make_ycsb("A", n_keys=n_keys, seed=seed + i, client_id=i)
            .requests(requests_per_client)
        )
        for i in range(num_clients)
    ]
    harness.launch_all(cluster.clients, feeds)
    harness.warm(15_000.0)

    timeline: List[Dict] = []

    def sample(label: str, until_finished=None) -> None:
        end = cluster.engine.now + phase_us
        while cluster.engine.now < end - 1.0 or (
            until_finished is not None and not until_finished.finished
        ):
            left = end - cluster.engine.now
            result = harness.measure(
                window_us if left < 1.0 else min(window_us, left)
            )
            timeline.append(
                {
                    "t_s": cluster.engine.now / 1e6,
                    "phase": label,
                    "mops": result.throughput_mops,
                    "hit_rate": result.hit_rate,
                    "p99_us": result.get_latency.p99(),
                }
            )

    sample("steady")

    crash_info: Dict = {}

    def on_phase(name: str) -> None:
        if name != "copy" or crash_info:
            return
        leader = group.leader_id()
        crash_info["leader"] = leader
        crash_info["at_us"] = cluster.engine.now
        cluster.fault_injector.load(
            FaultPlan(
                controller_crashes=(ControllerCrash(leader, 0.0, crash_us),)
            ),
            offset_us=cluster.engine.now,
        )

    drain = cluster.remove_memory_node(2, on_phase=on_phase)
    sample("failover", until_finished=drain)
    sample("recovered")
    harness.stop_all()
    cluster.engine.run()

    crash_at = crash_info["at_us"]
    election_latency = None
    for t, kind, _rid, _term in group.election_timeline():
        if kind == "leader" and t > crash_at:
            election_latency = t - crash_at
            break
    unavailability = None
    for t, _position in group.commit_times:
        if t > crash_at:
            unavailability = t - crash_at
            break

    counters = cluster.counters.as_dict()
    return {
        "timeline": timeline,
        "crashed_leader": crash_info["leader"],
        "crash_at_us": crash_at,
        "crash_window_us": crash_us,
        "election_latency_us": election_latency,
        "metadata_unavailability_us": unavailability,
        "elections": group.election_timeline(),
        "migration": cluster.migrations[-1].as_dict(),
        "epoch": cluster.membership.epoch,
        "node_ids": [node.node_id for node in cluster.nodes],
        "failed_ops": harness.failed_ops,
        "sweep": invariant_sweep(cluster),
        "counters": {
            key: counters[key]
            for key in sorted(counters)
            if key.startswith(("consensus", "epoch", "migrat", "mn_"))
        },
    }


def phase_mean(timeline, phase: str, field: str = "hit_rate") -> float:
    values = [row[field] for row in timeline if row["phase"] == phase]
    return sum(values) / len(values) if values else 0.0


def main() -> Dict:
    result = run(
        n_keys=scaled(2_000, 200_000),
        num_clients=scaled(4, 16),
        phase_us=scaled(30_000.0, 2_000_000.0),
        window_us=scaled(10_000.0, 500_000.0),
        requests_per_client=scaled(40_000, 2_000_000),
    )
    print_table(
        "Extra: controller failover (leader crash mid-drain)",
        ["t (s)", "phase", "Mops", "hit rate", "p99 (us)"],
        [
            (r["t_s"], r["phase"], r["mops"], r["hit_rate"], r["p99_us"])
            for r in result["timeline"]
        ],
    )
    print_table(
        "Election timeline",
        ["t (us)", "event", "replica", "term"],
        [(t, kind, rid, term) for t, kind, rid, term in result["elections"]],
    )
    m = result["migration"]
    print(
        f"crashed leader {result['crashed_leader']} at "
        f"{result['crash_at_us']:.0f}us for {result['crash_window_us']:.0f}us; "
        f"election latency {result['election_latency_us']:.0f}us; "
        f"metadata unavailable {result['metadata_unavailability_us']:.0f}us"
    )
    print(
        f"drain: {m['phase']} ({m['migrated_objects']} objects, "
        f"epochs {m['epoch_start']}->{m['epoch_end']}); "
        f"steady hit rate {phase_mean(result['timeline'], 'steady'):.3f} vs "
        f"recovered {phase_mean(result['timeline'], 'recovered'):.3f}; "
        f"sweep: {result['sweep']['live_objects']} live objects"
    )
    return result


if __name__ == "__main__":
    main()
