"""Extra figure: memory-node churn — repeated add/drain cycles under faults.

Not a paper figure — a robustness probe of the elasticity subsystem.  A
Ditto cluster serves a write-heavy workload (YCSB-A, so the epoch fence is
actually exercised) while memory nodes churn: each cycle adds a fresh node
to the pool and then live-drains the oldest data-bearing node, with a
seeded controller-RPC fault window armed across the drain.  The timeline
tracks throughput and tail latency through every membership change; the
summary reports per-drain migrated bytes, epoch advance, and the final
memory-accounting sweep, proving no block leaked or stayed double-owned
across the churn.

The fault plan is plain data and part of the experiment's parameters, so
the on-disk result cache keys on it like on any other knob.
"""

from __future__ import annotations

from typing import Dict, List

from ...core import invariant_sweep
from ...sim.faults import FaultPlan, RpcFailure
from ...workloads import make_ycsb
from ..format import print_table
from ..runner import Feed, Harness, preload
from ..scale import scaled
from ..systems import build_ditto


def run(
    n_keys: int = 2_000,
    num_clients: int = 4,
    cycles: int = 2,
    phase_us: float = 30_000.0,
    window_us: float = 10_000.0,
    rpc_fault_prob: float = 0.3,
    rpc_fault_us: float = 2_000.0,
    requests_per_client: int = 40_000,
    seed: int = 13,
) -> Dict:
    cluster = build_ditto(
        2 * n_keys, num_clients, seed=seed, num_memory_nodes=2,
        faults=FaultPlan(),  # arm an inert injector; windows load per cycle
    )
    preload(cluster.engine, cluster.clients, range(n_keys), value_size=232)
    harness = Harness(
        cluster.engine, value_size=232, miss_penalty_us=200.0,
        tolerate_failures=True,
    )
    feeds = [
        Feed.from_requests(
            make_ycsb("A", n_keys=n_keys, seed=seed + i, client_id=i)
            .requests(requests_per_client)
        )
        for i in range(num_clients)
    ]
    harness.launch_all(cluster.clients, feeds)
    harness.warm(15_000.0)

    timeline: List[Dict] = []

    def sample(label: str, until_finished=None) -> None:
        end = cluster.engine.now + phase_us
        while cluster.engine.now < end - 1.0 or (
            until_finished is not None and not until_finished.finished
        ):
            left = end - cluster.engine.now
            result = harness.measure(window_us if left < 1.0 else min(window_us, left))
            timeline.append(
                {
                    "t_s": cluster.engine.now / 1e6,
                    "phase": label,
                    "mops": result.throughput_mops,
                    "hit_rate": result.hit_rate,
                    "p99_us": result.get_latency.p99(),
                }
            )

    sample("steady")
    drain_target = 1  # node 0 hosts the hash table and never drains
    for cycle in range(cycles):
        node = cluster.add_memory_node()
        sample(f"cycle{cycle}-grown")
        # A controller-RPC fault window opens right as the drain starts:
        # membership refreshes, segment grants, and grant reassignment all
        # have to retry through it.
        if rpc_fault_prob > 0.0:
            cluster.fault_injector.load(
                FaultPlan(
                    rpc_failures=(
                        RpcFailure(0.0, rpc_fault_us, prob=rpc_fault_prob),
                    ),
                    seed=seed + cycle,
                ),
                offset_us=cluster.engine.now,
            )
        drain = cluster.remove_memory_node(drain_target)
        sample(f"cycle{cycle}-drain", until_finished=drain)
        drain_target = node.node_id
    harness.stop_all()
    cluster.engine.run()

    counters = cluster.counters.as_dict()
    return {
        "timeline": timeline,
        "migrations": [record.as_dict() for record in cluster.migrations],
        "epoch": cluster.membership.epoch,
        "node_ids": [node.node_id for node in cluster.nodes],
        "failed_ops": harness.failed_ops,
        "sweep": invariant_sweep(cluster),
        "counters": {
            key: counters[key]
            for key in sorted(counters)
            if key.startswith(("epoch", "migrat", "mn_", "stale", "fault"))
        },
    }


def phase_mean(timeline, phase: str, field: str = "mops") -> float:
    values = [row[field] for row in timeline if row["phase"] == phase]
    return sum(values) / len(values) if values else 0.0


def main() -> Dict:
    result = run(
        n_keys=scaled(2_000, 200_000),
        num_clients=scaled(4, 16),
        cycles=scaled(2, 4),
        phase_us=scaled(30_000.0, 2_000_000.0),
        window_us=scaled(10_000.0, 500_000.0),
        requests_per_client=scaled(40_000, 2_000_000),
    )
    print_table(
        "Extra: elasticity churn (add/drain cycles under RPC faults)",
        ["t (s)", "phase", "Mops", "hit rate", "p99 (us)"],
        [
            (r["t_s"], r["phase"], r["mops"], r["hit_rate"], r["p99_us"])
            for r in result["timeline"]
        ],
    )
    print_table(
        "Drains",
        ["node", "phase", "objects", "KiB moved", "CAS lost", "passes", "epochs"],
        [
            (
                m["node_id"], m["phase"], m["migrated_objects"],
                m["migrated_bytes"] / 1024.0, m["cas_lost"], m["passes"],
                f"{m['epoch_start']}->{m['epoch_end']}",
            )
            for m in result["migrations"]
        ],
    )
    sweep = result["sweep"]
    print(
        f"final epoch: {result['epoch']}; surviving nodes: "
        f"{result['node_ids']}; failed ops: {result['failed_ops']}; "
        f"sweep: {sweep['live_objects']} live objects, "
        f"{sweep['live_bytes']}B live of {sweep['granted_bytes']}B granted"
    )
    return result


if __name__ == "__main__":
    main()
