"""Extra figure: the fig13 elasticity timeline with a leader failover
overlaid.

Not a paper figure — a composition of two of its claims.  Figure 13 shows
Ditto riding through compute and memory scaling with level throughput;
DESIGN §3.6 adds the replicated controller so metadata survives a leader
crash.  This experiment runs the *same* elasticity schedule as fig13
(compute up, compute down, memory up, memory drain-down) on a cluster
with a 3-replica controller group, crashes the raft leader the moment the
drain enters its copy phase, and overlays the election latency and the
metadata-unavailability window on the throughput timeline: every sample
window that overlaps the outage is flagged, so the plot shows exactly
which part of the timeline ran leaderless — and that the data path kept
serving through it.

Because the adaptive eviction weights are replicated through the
consensus log (ROADMAP item: learned state must survive failover), the
run also checks that the weights learned before the crash are intact on
the successor's replica afterward.
"""

from __future__ import annotations

from typing import Dict, List

from ...sim.faults import ControllerCrash, FaultPlan
from ...workloads import make_ycsb
from ..format import print_table
from ..runner import Feed, Harness, preload
from ..scale import scaled
from ..systems import build_ditto


def run(
    n_keys: int = 3_000,
    base_clients: int = 4,
    extra_clients: int = 4,
    controller_replicas: int = 3,
    crash_us: float = 6_000.0,
    phase_us: float = 40_000.0,
    window_us: float = 10_000.0,
    seed: int = 17,
) -> Dict:
    total = base_clients + extra_clients
    cluster = build_ditto(
        2 * n_keys, total, seed=seed, max_capacity_objects=4 * n_keys,
        num_memory_nodes=2,
        faults=FaultPlan(),  # inert injector; the leader crash loads later
        controller_replicas=controller_replicas,
    )
    group = cluster.consensus
    preload(cluster.engine, cluster.clients, range(n_keys), value_size=232)
    harness = Harness(
        cluster.engine, value_size=232, tolerate_failures=True
    )

    def feed(i: int) -> Feed:
        # YCSB-A: the write fraction keeps segment-grant metadata traffic
        # flowing, so the unavailability window is actually observable.
        return Feed.from_requests(
            make_ycsb("A", n_keys=n_keys, seed=seed + i, client_id=i)
            .requests(16_000)
        )

    base = cluster.clients[:base_clients]
    extras = cluster.clients[base_clients:]
    base_handles = harness.launch_all(
        base, [feed(i) for i in range(base_clients)]
    )
    harness.warm(30_000.0)

    timeline: List[Dict] = []

    def sample(label: str, until_finished=None) -> None:
        end = cluster.engine.now + phase_us
        while cluster.engine.now < end - 1.0 or (
            until_finished is not None and not until_finished.finished
        ):
            left = end - cluster.engine.now
            start = cluster.engine.now
            result = harness.measure(
                window_us if left < 1.0 else min(window_us, left)
            )
            timeline.append(
                {
                    "t_start_us": start,
                    "t_s": cluster.engine.now / 1e6,
                    "phase": label,
                    "mops": result.throughput_mops,
                    "p99_us": result.get_latency.p99(),
                }
            )

    sample("base-compute")
    extra_handles = harness.launch_all(
        extras, [feed(base_clients + i) for i in range(extra_clients)]
    )
    sample("compute-scaled-up")
    for handle in extra_handles:
        harness.stop(handle)
    sample("compute-scaled-down")

    cluster.add_memory_node()
    cluster.resize_memory(4 * n_keys)
    sample("memory-scaled-up")

    # Snapshot the learned weights just before the failover phase.
    weights_before = list(cluster.global_weights.weights)

    crash_info: Dict = {}

    def on_phase(name: str) -> None:
        if name != "copy" or crash_info:
            return
        leader = group.leader_id()
        crash_info["leader"] = leader
        crash_info["at_us"] = cluster.engine.now
        cluster.fault_injector.load(
            FaultPlan(
                controller_crashes=(ControllerCrash(leader, 0.0, crash_us),)
            ),
            offset_us=cluster.engine.now,
        )

    drain = cluster.remove_memory_node(1, on_phase=on_phase)
    sample("memory-scaled-down", until_finished=drain)
    cluster.resize_memory(2 * n_keys)
    sample("recovered")

    for handle in base_handles:
        harness.stop(handle)
    harness.stop_all()
    cluster.engine.run()

    crash_at = crash_info["at_us"]
    election_latency = None
    for t, kind, _rid, _term in group.election_timeline():
        if kind == "leader" and t > crash_at:
            election_latency = t - crash_at
            break
    unavailability = None
    for t, _position in group.commit_times:
        if t > crash_at:
            unavailability = t - crash_at
            break
    outage_end = crash_at + (
        unavailability if unavailability is not None else crash_us
    )
    for row in timeline:
        row["in_outage"] = (
            row["t_start_us"] < outage_end and row["t_s"] * 1e6 > crash_at
        )

    # The weights learned before the crash must be intact on the successor:
    # the physical state folds committed updates into the live GlobalWeights,
    # and the new leader's replica replayed the same committed prefix, so
    # after the run settles the two must agree exactly.
    new_leader = group.leader_id()
    successor_weights = (
        list(group.replicas[new_leader].state.weights.weights)
        if new_leader is not None
        else None
    )
    weights_preserved = successor_weights is not None and all(
        abs(sw - lw) < 1e-9
        for sw, lw in zip(successor_weights, cluster.global_weights.weights)
    )

    return {
        "timeline": timeline,
        "crashed_leader": crash_info["leader"],
        "crash_at_us": crash_at,
        "crash_window_us": crash_us,
        "election_latency_us": election_latency,
        "metadata_unavailability_us": unavailability,
        "outage_windows": sum(1 for row in timeline if row["in_outage"]),
        "migration": cluster.migrations[-1].as_dict(),
        "epoch": cluster.membership.epoch,
        "weights_before_crash": weights_before,
        "weights_after_failover": successor_weights,
        "weights_preserved": weights_preserved,
        "failed_ops": harness.failed_ops,
    }


def phase_mean(timeline, phase: str, field: str = "mops") -> float:
    values = [row[field] for row in timeline if row["phase"] == phase]
    return sum(values) / len(values) if values else 0.0


def main() -> Dict:
    result = run(
        n_keys=scaled(3_000, 200_000),
        base_clients=scaled(4, 16),
        extra_clients=scaled(4, 16),
        phase_us=scaled(40_000.0, 2_000_000.0),
        window_us=scaled(10_000.0, 500_000.0),
    )
    print_table(
        "Extra: elasticity timeline with leader failover overlay",
        ["t (s)", "phase", "Mops", "p99 (us)", "in outage"],
        [
            (r["t_s"], r["phase"], r["mops"], r["p99_us"],
             "*" if r["in_outage"] else "")
            for r in result["timeline"]
        ],
    )
    print(
        f"leader {result['crashed_leader']} crashed at "
        f"{result['crash_at_us']:.0f}us (window {result['crash_window_us']:.0f}us); "
        f"election latency {result['election_latency_us']:.0f}us; "
        f"metadata unavailable {result['metadata_unavailability_us']:.0f}us; "
        f"{result['outage_windows']} sample windows overlap the outage"
    )
    m = result["migration"]
    print(
        f"drain rode through: {m['phase']} ({m['migrated_objects']} objects, "
        f"epochs {m['epoch_start']}->{m['epoch_end']}); "
        f"weights preserved across failover: {result['weights_preserved']}"
    )
    return result


if __name__ == "__main__":
    main()
