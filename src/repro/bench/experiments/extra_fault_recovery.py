"""Extra figure: throughput and hit rate through a memory-node outage.

Not a paper figure — a robustness probe of the reproduction.  A two-MN Ditto
cluster serves a read-mostly workload; after warmup, memory node 1 (half the
object heap — the hash table lives on node 0) becomes unreachable for a
fixed window and then comes back.  During the outage every Get that needs
node 1 degrades to a miss (``NodeUnavailable`` short-circuits the fault
retries), pays the backing-store penalty, and refills the object — striping
naturally lands the refill on the surviving node.  Throughput dips while
clients burn verb timeouts and miss penalties; once the window passes, hit
rate and throughput recover without any explicit repair step.

The fault plan is plain data and part of the experiment's parameters, so the
on-disk result cache keys on it like on any other knob.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...sim.faults import FaultPlan, NodeOutage
from ...workloads import make_ycsb
from ..format import print_table
from ..runner import Feed, Harness, preload
from ..scale import scaled
from ..systems import build_ditto

#: Default plan, relative to the end of warmup: node 1 is unreachable for
#: the middle third of a three-phase timeline.
def default_plan(phase_us: float) -> FaultPlan:
    return FaultPlan(outages=(NodeOutage(node_id=1, start_us=phase_us,
                                         end_us=2 * phase_us),))


def run(
    n_keys: int = 4_000,
    num_clients: int = 8,
    phase_us: float = 60_000.0,
    window_us: float = 10_000.0,
    miss_penalty_us: float = 500.0,
    requests_per_client: int = 16_000,
    seed: int = 11,
    plan_dict: Optional[Dict] = None,
) -> Dict:
    plan = (
        FaultPlan.from_dict(plan_dict)
        if plan_dict is not None
        else default_plan(phase_us)
    )
    cluster = build_ditto(
        2 * n_keys,
        num_clients,
        seed=seed,
        num_memory_nodes=2,
        faults=FaultPlan(),  # arm an inert injector; the plan loads post-warmup
    )
    preload(cluster.engine, cluster.clients, range(n_keys), value_size=232)
    harness = Harness(
        cluster.engine,
        value_size=232,
        miss_penalty_us=miss_penalty_us,
        tolerate_failures=True,
    )
    feeds = [
        Feed.from_requests(
            make_ycsb("B", n_keys=n_keys, seed=seed + i, client_id=i).requests(
                requests_per_client
            )
        )
        for i in range(num_clients)
    ]
    harness.launch_all(cluster.clients, feeds)
    harness.warm(20_000.0)

    # Arm the plan relative to "now" and schedule any client crashes it has.
    start = cluster.engine.now
    cluster.fault_injector.load(plan, offset_us=start)
    harness.schedule_crashes(cluster, plan.client_crashes, offset_us=start)

    timeline: List[Dict] = []

    def sample(label: str, duration_us: float) -> None:
        end = cluster.engine.now + duration_us
        while cluster.engine.now < end - 1.0:
            result = harness.measure(min(window_us, end - cluster.engine.now))
            timeline.append(
                {
                    "t_s": cluster.engine.now / 1e6,
                    "phase": label,
                    "mops": result.throughput_mops,
                    "hit_rate": result.hit_rate,
                    "p99_us": result.get_latency.p99(),
                }
            )

    sample("healthy", phase_us)
    sample("outage", phase_us)
    sample("recovered", phase_us)
    harness.stop_all()
    return {
        "timeline": timeline,
        "plan": plan.to_dict(),
        "failed_ops": harness.failed_ops,
        "counters": dict(cluster.counters.as_dict()),
    }


def phase_mean(timeline, phase: str, field: str = "mops") -> float:
    values = [row[field] for row in timeline if row["phase"] == phase]
    return sum(values) / len(values) if values else 0.0


def main() -> Dict:
    result = run(
        n_keys=scaled(4_000, 1_000_000),
        num_clients=scaled(8, 64),
        phase_us=scaled(60_000.0, 10_000_000.0),
        window_us=scaled(10_000.0, 1_000_000.0),
        requests_per_client=scaled(16_000, 500_000),
    )
    print_table(
        "Extra: fault recovery (MN 1 unreachable for the middle phase)",
        ["t (s)", "phase", "Mops", "hit rate", "p99 (us)"],
        [
            (r["t_s"], r["phase"], r["mops"], r["hit_rate"], r["p99_us"])
            for r in result["timeline"]
        ],
    )
    healthy = phase_mean(result["timeline"], "healthy")
    outage = phase_mean(result["timeline"], "outage")
    recovered = phase_mean(result["timeline"], "recovered")
    print(
        f"phase means (Mops): healthy={healthy:.3f} "
        f"outage={outage:.3f} recovered={recovered:.3f}; "
        f"failed ops: {result['failed_ops']}"
    )
    return result


if __name__ == "__main__":
    main()
