"""Parameter study: eviction-history size (paper §5.1, "Parameters").

The paper sets the history length equal to the cache size (following LeCaR)
and notes the tradeoff: longer histories collect more regrets (faster
adaptation) at the cost of metadata space — 40 bytes per entry in the
embedded design.  This study sweeps the history length as a multiple of the
cache size on the phase-switching workload where adaptation speed matters.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ...cachesim import SampledAdaptiveCache
from ...workloads import footprint, phase_switch_trace
from ..format import print_table
from ..scale import scaled

HISTORY_ENTRY_BYTES = 40


def run(
    history_factors: Sequence[float] = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0),
    n_requests: int = 100_000,
    n_keys: int = 4096,
    capacity_frac: float = 0.1,
    seed: int = 22,
) -> Dict:
    trace = phase_switch_trace(n_requests, n_keys, phases=4, seed=seed)
    capacity = max(int(footprint(trace) * capacity_frac), 8)
    rows = []
    for factor in history_factors:
        history_size = max(int(capacity * factor), 1)
        cache = SampledAdaptiveCache(
            capacity,
            policies=("lru", "lfu"),
            history_size=history_size,
            seed=seed,
        )
        for key in trace:
            cache.access(int(key))
        rows.append(
            {
                "factor": factor,
                "history_entries": history_size,
                "hit_rate": cache.hit_rate(),
                "regrets": cache.regrets,
                "metadata_bytes": history_size * HISTORY_ENTRY_BYTES,
            }
        )
    return {"rows": rows, "capacity": capacity}


def main() -> Dict:
    result = run(n_requests=scaled(100_000, 7_800_000))
    print_table(
        "Parameter study: eviction history size (phase-switching workload)",
        ["history / cache", "entries", "hit rate", "regrets", "metadata bytes"],
        [
            (r["factor"], r["history_entries"], r["hit_rate"], r["regrets"],
             r["metadata_bytes"])
            for r in result["rows"]
        ],
    )
    return result


if __name__ == "__main__":
    main()
