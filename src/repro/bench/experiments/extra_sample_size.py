"""Parameter study: eviction sample size K (paper §5.1, "Parameters").

The paper fixes K = 5 (Redis' default) and notes that K controls how
precisely sampling approximates the underlying algorithm.  This study sweeps
K: hit rate climbs steeply from K=1 (random eviction) and saturates around
the paper's default, while each eviction's READ grows by 40 bytes per extra
sample.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ...cachesim import SampledAdaptiveCache
from ...core.layout import SLOT_SIZE
from ...workloads import footprint, webmail_like_trace
from ..format import print_table
from ..scale import scaled


def run(
    sample_sizes: Sequence[int] = (1, 2, 3, 5, 8, 16, 32),
    n_requests: int = 80_000,
    n_keys: int = 4096,
    capacity_frac: float = 0.1,
    seed: int = 21,
) -> Dict:
    trace = webmail_like_trace(n_requests, n_keys, seed=seed)
    capacity = max(int(footprint(trace) * capacity_frac), 8)
    rows = []
    for k in sample_sizes:
        per_policy = {}
        for policy in ("lru", "lfu"):
            cache = SampledAdaptiveCache(
                capacity, policies=(policy,), sample_size=k, seed=seed
            )
            for key in trace:
                cache.access(int(key))
            per_policy[policy] = cache.hit_rate()
        rows.append(
            {
                "k": k,
                "lru": per_policy["lru"],
                "lfu": per_policy["lfu"],
                "sample_read_bytes": k * SLOT_SIZE,
            }
        )
    return {"rows": rows, "capacity": capacity}


def main() -> Dict:
    result = run(n_requests=scaled(80_000, 7_800_000))
    print_table(
        "Parameter study: eviction sample size",
        ["K", "LRU hit", "LFU hit", "sample READ bytes"],
        [(r["k"], r["lru"], r["lfu"], r["sample_read_bytes"]) for r in result["rows"]],
    )
    return result


if __name__ == "__main__":
    main()
