"""Figure 1: Redis throughput/latency while scaling the cluster out and in.

The paper's headline motivation: re-sharding a monolithic cache migrates
data, so scaling 32→64→32 nodes (i) delays the throughput gain and the
resource reclamation by minutes of migration and (ii) dips throughput and
inflates p99 while CPUs copy keys.  Scaled down (8→16→8 nodes by default),
the same four signals appear: stable → migration (dip) → improved → shrink
migration (reclamation delay) → back to baseline.
"""

from __future__ import annotations

from typing import Dict, List

from ...baselines import RedisCluster
from ...workloads import ZipfianGenerator
from ..format import print_table
from ..runner import Feed, Harness, make_value, pack_key
from ..scale import scaled


def run(
    nodes: int = 8,
    scale_to: int = 16,
    n_keys: int = 20_000,
    clients: int = 192,
    phase_us: float = 1_000_000.0,
    window_us: float = 250_000.0,
    op_cpu_us: float = 10.0,
    migration_key_cpu_us: float = 150.0,
    migration_batch: int = 8,
    seed: int = 4,
) -> Dict:
    # op_cpu_us ~ 10 us matches a 1-core Redis VM (~100 Kops/s); the client
    # count is chosen so the cluster is server-bound, as in the paper (512
    # client threads against 32 single-core nodes).  Per-key migration cost
    # includes serialization + network + re-indexing; real Redis clusters
    # move O(1k) keys/s/node.
    cluster = RedisCluster(
        initial_nodes=nodes,
        op_cpu_us=op_cpu_us,
        migration_batch=migration_batch,
        migration_key_cpu_us=migration_key_cpu_us,
    )
    cluster.load({pack_key(i): make_value(232) for i in range(n_keys)})
    cluster.add_clients(clients)
    harness = Harness(cluster.engine, value_size=232)
    feeds = [
        Feed.reads(ZipfianGenerator(n_keys, seed=seed + i).sample(4096))
        for i in range(clients)
    ]
    harness.launch_all(cluster.clients, feeds)
    harness.warm(100_000.0)

    timeline: List[Dict] = []

    def sample(label: str, duration_us: float) -> None:
        end = cluster.engine.now + duration_us
        while cluster.engine.now < end - 1.0:
            span = min(window_us, end - cluster.engine.now)
            result = harness.measure(span)
            timeline.append(
                {
                    "t_s": cluster.engine.now / 1e6,
                    "phase": label,
                    "mops": result.throughput_mops,
                    "p99_us": result.get_latency.p99(),
                    "provisioned_nodes": cluster.provisioned_nodes,
                    "active_nodes": cluster.active_nodes,
                }
            )

    def sample_migration(label: str) -> None:
        while cluster.migration is not None:
            result = harness.measure(window_us)
            timeline.append(
                {
                    "t_s": cluster.engine.now / 1e6,
                    "phase": label,
                    "mops": result.throughput_mops,
                    "p99_us": result.get_latency.p99(),
                    "provisioned_nodes": cluster.provisioned_nodes,
                    "active_nodes": cluster.active_nodes,
                }
            )

    sample("stable-small", phase_us)
    cluster.scale(scale_to)
    sample_migration("scale-out-migration")
    sample("stable-large", phase_us)
    cluster.scale(nodes)
    sample_migration("scale-in-migration")
    sample("stable-small-again", phase_us)

    migrations = [
        {
            "direction": "out" if m.new_n > m.old_n else "in",
            "duration_s": (m.finished_at - m.started_at) / 1e6,
            "keys_moved": m.total_moving,
        }
        for m in cluster.migrations_done
    ]
    return {"timeline": timeline, "migrations": migrations}


def phase_mean(timeline, phase: str, field: str = "mops") -> float:
    values = [row[field] for row in timeline if row["phase"] == phase]
    return sum(values) / len(values) if values else 0.0


def main() -> Dict:
    result = run(phase_us=scaled(800_000.0, 180_000_000.0))
    print_table(
        "Figure 1: Redis during resource adjustment",
        ["t (s)", "phase", "Mops", "p99 (us)", "nodes"],
        [
            (r["t_s"], r["phase"], r["mops"], r["p99_us"], r["provisioned_nodes"])
            for r in result["timeline"]
        ],
    )
    print_table(
        "Figure 1: migration cost",
        ["direction", "duration (s)", "keys moved"],
        [(m["direction"], m["duration_s"], m["keys_moved"]) for m in result["migrations"]],
    )
    return result


if __name__ == "__main__":
    main()
