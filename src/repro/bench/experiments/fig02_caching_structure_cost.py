"""Figure 2: the cost of maintaining caching data structures on DM.

KVC (one lock-protected LRU list), KVC-S (32 sharded lists + 5 µs backoff),
and a plain KVS run read-only YCSB-C.  Expected shapes: (a) with one client,
KVC/KVC-S throughput is a fraction of KVS and tail latency several times
higher (extra verbs on the critical path); (b) with many clients, KVC
collapses under lock-fail CAS retries that exhaust the MN NIC, KVC-S decays
more mildly, KVS keeps scaling.
"""

from __future__ import annotations

from typing import Dict

from ...baselines import DmKvsCluster
from ..format import print_table
from ..scale import scaled
from ..systems import build_shard_lru, run_ycsb_workload


def _build(system: str, n_keys: int, num_clients: int):
    if system == "kvs":
        return DmKvsCluster(capacity_objects=2 * n_keys, num_clients=num_clients, seed=7)
    if system == "kvc":
        return build_shard_lru(4 * n_keys, num_clients, shards=1, backoff_us=0.0)
    if system == "kvc-s":
        return build_shard_lru(4 * n_keys, num_clients, shards=32, backoff_us=5.0)
    raise ValueError(system)


def run(
    n_keys: int = 5_000,
    client_counts=(1, 8, 32, 64, 128),
    window_us: float = 10_000.0,
) -> Dict:
    single: Dict[str, Dict[str, float]] = {}
    multi: Dict[str, Dict[int, float]] = {"kvs": {}, "kvc": {}, "kvc-s": {}}
    for system in ("kvs", "kvc", "kvc-s"):
        for count in client_counts:
            cluster = _build(system, n_keys, count)
            result = run_ycsb_workload(
                cluster, cluster.clients, "C", n_keys, window_us=window_us
            )
            multi[system][count] = result.throughput_mops
            if count == 1:
                single[system] = {
                    "mops": result.throughput_mops,
                    "p50_us": result.get_latency.median(),
                    "p99_us": result.get_latency.p99(),
                }
    return {"single_client": single, "multi_client": multi, "client_counts": list(client_counts)}


def main() -> Dict:
    result = run(
        n_keys=scaled(5_000, 1_000_000),
        window_us=scaled(10_000.0, 200_000.0),
    )
    print_table(
        "Figure 2a: single-client performance",
        ["system", "Mops", "p50 (us)", "p99 (us)"],
        [
            (name, row["mops"], row["p50_us"], row["p99_us"])
            for name, row in result["single_client"].items()
        ],
    )
    counts = result["client_counts"]
    print_table(
        "Figure 2b: multi-client throughput (Mops)",
        ["system"] + [str(c) for c in counts],
        [
            [name] + [result["multi_client"][name][c] for c in counts]
            for name in ("kvs", "kvc", "kvc-s")
        ],
    )
    return result


if __name__ == "__main__":
    main()
