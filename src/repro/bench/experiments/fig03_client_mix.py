"""Figure 3: hit rates when compute shifts between two applications.

Two applications share the cache: one LRU-friendly (drifting hot set), one
LFU-friendly (stable Zipf), on disjoint key ranges.  As client threads move
from one application to the other, the mixture of access patterns — and with
it the best caching algorithm — changes: LFU wins while the LFU-friendly app
holds most threads, LRU wins at the other end.
"""

from __future__ import annotations

from typing import Dict

from ...workloads import (
    mix_traces,
    offset_keys,
    shifting_hotspot_trace,
    zipfian_trace,
)
from ..format import print_table
from ..hitrate import compare_systems
from ..scale import scaled


def run(
    n_requests: int = 120_000,
    n_keys: int = 4096,
    capacity_frac: float = 0.1,
    total_threads: int = 8,
    seed: int = 2,
) -> Dict:
    lru_app = shifting_hotspot_trace(
        n_requests, n_keys,
        working_set=max(n_keys // 12, 32), dwell=1500,
        shift=max(n_keys // 48, 8), seed=seed,
    )
    lfu_app = offset_keys(
        zipfian_trace(n_requests, n_keys, theta=1.05, seed=seed + 1), n_keys
    )
    capacity = max(int(2 * n_keys * capacity_frac), 8)
    rows = []
    for lru_threads in range(total_threads + 1):
        lfu_threads = total_threads - lru_threads
        weights = [max(lru_threads, 1e-9), max(lfu_threads, 1e-9)]
        mixed = mix_traces([lru_app, lfu_app], weights, n_requests, seed=seed + 2)
        rates = compare_systems(
            ("ditto-lru", "ditto-lfu", "ditto"), mixed, capacity, seed=seed
        )
        rows.append({"lru_threads": lru_threads, "lfu_threads": lfu_threads, **rates})
    return {"rows": rows, "capacity": capacity}


def main() -> Dict:
    result = run(n_requests=scaled(120_000, 10_000_000))
    print_table(
        "Figure 3: hit rate vs client split (LRU-app threads of 8)",
        ["LRU threads", "LFU threads", "LRU", "LFU", "Ditto"],
        [
            (r["lru_threads"], r["lfu_threads"], r["ditto-lru"], r["ditto-lfu"], r["ditto"])
            for r in result["rows"]
        ],
    )
    return result


if __name__ == "__main__":
    main()
