"""Figure 4: LRU vs LFU hit rates flip with cache size on one workload.

On the webmail-like trace the winning algorithm depends on the cache size —
the paper's argument that elastic *memory* scaling also demands adaptive
caching.
"""

from __future__ import annotations

from typing import Dict

from ...workloads import footprint, webmail_like_trace
from ..format import print_table
from ..hitrate import compare_systems
from ..scale import scaled


def run(
    n_requests: int = 150_000,
    n_keys: int = 4096,
    size_fracs=(0.02, 0.05, 0.1, 0.2, 0.4, 0.8),
    seed: int = 3,
) -> Dict:
    trace = webmail_like_trace(n_requests, n_keys, seed=seed)
    total = footprint(trace)
    rows = []
    for frac in size_fracs:
        capacity = max(int(total * frac), 4)
        rates = compare_systems(("ditto-lru", "ditto-lfu"), trace, capacity, seed=seed)
        rows.append(
            {
                "cache_frac": frac,
                "capacity": capacity,
                "lru": rates["ditto-lru"],
                "lfu": rates["ditto-lfu"],
            }
        )
    return {"rows": rows, "footprint": total}


def main() -> Dict:
    result = run(n_requests=scaled(150_000, 7_800_000))
    print_table(
        "Figure 4: LRU vs LFU hit rate across cache sizes",
        ["cache (frac of footprint)", "objects", "LRU", "LFU"],
        [(r["cache_frac"], r["capacity"], r["lru"], r["lfu"]) for r in result["rows"]],
    )
    return result


if __name__ == "__main__":
    main()
