"""Figure 5: concurrent clients change access patterns and hit rates.

(a) Across a corpus of workloads, the relative hit-rate change
``(h_max - h_min) / h_max`` as the client count varies from 1 to many — the
paper reports 80% of workloads with ≥60% change for LRU and the best
algorithm flipping on 36% of workloads.
(b) One example trace where LFU beats LRU at low concurrency and loses at
high concurrency.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ...sim import relative_change
from ...workloads import concurrent_view, corpus, footprint, webmail_like_trace
from ..format import print_table
from ..hitrate import compare_systems, make_hit_cache, replay
from ..scale import scaled


def run(
    n_traces: int = 20,
    n_requests: int = 40_000,
    client_counts=(1, 4, 16, 64),
    capacity_frac: float = 0.1,
    seed: int = 5,
) -> Dict:
    specs = corpus(n_traces, seed=seed)
    changes = {"lru": [], "lfu": []}
    best_flips = 0
    for i, spec in enumerate(specs):
        base = spec.trace(n_requests, seed=seed + i)
        capacity = max(int(footprint(base) * capacity_frac), 4)
        per_policy: Dict[str, List[float]] = {"lru": [], "lfu": []}
        best_by_count = []
        for count in client_counts:
            view = concurrent_view(base, count, mode="random", seed=seed + count)
            for policy in ("lru", "lfu"):
                cache = make_hit_cache(f"ditto-{policy}", capacity, seed=seed)
                per_policy[policy].append(replay(cache, view))
            best_by_count.append(
                "lru" if per_policy["lru"][-1] >= per_policy["lfu"][-1] else "lfu"
            )
        for policy in ("lru", "lfu"):
            changes[policy].append(relative_change(per_policy[policy]))
        if len(set(best_by_count)) > 1:
            best_flips += 1

    # (b) example: the webmail-like trace across client counts
    example_trace = webmail_like_trace(n_requests, 4096, seed=seed)
    example_capacity = max(int(footprint(example_trace) * capacity_frac), 4)
    example_rows = []
    for count in client_counts:
        view = concurrent_view(example_trace, count, mode="random", seed=seed)
        rates = compare_systems(("ditto-lru", "ditto-lfu"), view, example_capacity, seed=seed)
        example_rows.append(
            {"clients": count, "lru": rates["ditto-lru"], "lfu": rates["ditto-lfu"]}
        )
    return {
        "cdf": {k: sorted(v) for k, v in changes.items()},
        "best_flip_fraction": best_flips / len(specs),
        "example": example_rows,
    }


def main() -> Dict:
    result = run(
        n_traces=scaled(20, 74),
        n_requests=scaled(40_000, 10_000_000),
        client_counts=scaled((1, 4, 16, 64), (1, 8, 64, 512)),
    )
    for policy in ("lru", "lfu"):
        values = result["cdf"][policy]
        print_table(
            f"Figure 5a: CDF of relative hit-rate change ({policy.upper()})",
            ["percentile", "relative change"],
            [
                (p, float(np.percentile(values, p)))
                for p in (10, 25, 50, 75, 90, 100)
            ],
        )
    print(f"best algorithm flips on {result['best_flip_fraction']:.0%} of workloads")
    print_table(
        "Figure 5b: example trace hit rates vs concurrent clients",
        ["clients", "LRU", "LFU"],
        [(r["clients"], r["lru"], r["lfu"]) for r in result["example"]],
    )
    return result


if __name__ == "__main__":
    main()
