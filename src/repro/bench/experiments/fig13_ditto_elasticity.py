"""Figure 13: Ditto's throughput under dynamic compute and memory scaling.

The DM payoff: adding CPU cores (client threads) raises throughput
*immediately* — no data migration — and removing them reclaims resources
immediately; growing/shrinking the memory budget leaves throughput and tail
latency flat (read-only working set already fits).
"""

from __future__ import annotations

from typing import Dict, List

from ...workloads import make_ycsb
from ..format import print_table
from ..runner import Feed, Harness, preload
from ..scale import scaled
from ..systems import build_ditto


def run(
    n_keys: int = 5_000,
    base_clients: int = 8,
    extra_clients: int = 8,
    phase_us: float = 60_000.0,
    window_us: float = 20_000.0,
    seed: int = 9,
) -> Dict:
    total = base_clients + extra_clients
    cluster = build_ditto(
        2 * n_keys, total, seed=seed, max_capacity_objects=4 * n_keys
    )
    preload(cluster.engine, cluster.clients, range(n_keys), value_size=232)
    harness = Harness(cluster.engine, value_size=232)

    def feed(i: int) -> Feed:
        return Feed.from_requests(
            make_ycsb("C", n_keys=n_keys, seed=seed + i).requests(16_000)
        )

    base = cluster.clients[:base_clients]
    extras = cluster.clients[base_clients:]
    base_handles = harness.launch_all(base, [feed(i) for i in range(base_clients)])
    harness.warm(50_000.0)

    timeline: List[Dict] = []

    def sample(label: str) -> None:
        end = cluster.engine.now + phase_us
        while cluster.engine.now < end - 1.0:
            result = harness.measure(min(window_us, end - cluster.engine.now))
            timeline.append(
                {
                    "t_s": cluster.engine.now / 1e6,
                    "phase": label,
                    "mops": result.throughput_mops,
                    "p50_us": result.get_latency.median(),
                    "p99_us": result.get_latency.p99(),
                }
            )

    sample("base-compute")
    extra_handles = harness.launch_all(
        extras, [feed(base_clients + i) for i in range(extra_clients)]
    )
    sample("compute-scaled-up")
    for handle in extra_handles:
        harness.stop(handle)
    sample("compute-scaled-down")
    cluster.resize_memory(4 * n_keys)
    sample("memory-scaled-up")
    cluster.resize_memory(2 * n_keys)
    sample("memory-scaled-down")
    for handle in base_handles:
        harness.stop(handle)
    return {"timeline": timeline}


def phase_mean(timeline, phase: str, field: str = "mops") -> float:
    values = [row[field] for row in timeline if row["phase"] == phase]
    return sum(values) / len(values) if values else 0.0


def main() -> Dict:
    result = run(
        n_keys=scaled(5_000, 10_000_000),
        base_clients=scaled(8, 32),
        extra_clients=scaled(8, 32),
        phase_us=scaled(60_000.0, 180_000_000.0),
        window_us=scaled(20_000.0, 1_000_000.0),
    )
    print_table(
        "Figure 13: Ditto under compute/memory scaling",
        ["t (s)", "phase", "Mops", "p50 (us)", "p99 (us)"],
        [
            (r["t_s"], r["phase"], r["mops"], r["p50_us"], r["p99_us"])
            for r in result["timeline"]
        ],
    )
    return result


if __name__ == "__main__":
    main()
