"""Figure 13: Ditto's throughput under dynamic compute and memory scaling.

The DM payoff: adding CPU cores (client threads) raises throughput
*immediately* and removing them reclaims resources immediately — compute
carries no data, so no bytes move.  Memory scaling is a real membership
change: scale-up adds a memory node to the pool at a new epoch, and
scale-down *drains* a data-bearing node through the epoch-fenced live
migration (`repro.core.elasticity`) while clients keep serving traffic.
The timeline shows throughput staying level through both, and the summary
reports how many bytes the drain migrated and how far the epoch advanced —
small and fast next to the Redis baseline's whole-keyspace reshuffle.
"""

from __future__ import annotations

from typing import Dict, List

from ...workloads import make_ycsb
from ..format import print_table
from ..runner import Feed, Harness, preload
from ..scale import scaled
from ..systems import build_ditto


def run(
    n_keys: int = 5_000,
    base_clients: int = 8,
    extra_clients: int = 8,
    phase_us: float = 60_000.0,
    window_us: float = 20_000.0,
    seed: int = 9,
) -> Dict:
    total = base_clients + extra_clients
    cluster = build_ditto(
        2 * n_keys, total, seed=seed, max_capacity_objects=4 * n_keys,
        num_memory_nodes=2,
    )
    preload(cluster.engine, cluster.clients, range(n_keys), value_size=232)
    harness = Harness(cluster.engine, value_size=232)

    def feed(i: int) -> Feed:
        return Feed.from_requests(
            make_ycsb("C", n_keys=n_keys, seed=seed + i).requests(16_000)
        )

    base = cluster.clients[:base_clients]
    extras = cluster.clients[base_clients:]
    base_handles = harness.launch_all(base, [feed(i) for i in range(base_clients)])
    harness.warm(50_000.0)

    timeline: List[Dict] = []

    def sample(label: str, until_finished=None) -> None:
        end = cluster.engine.now + phase_us
        while cluster.engine.now < end - 1.0 or (
            until_finished is not None and not until_finished.finished
        ):
            left = end - cluster.engine.now
            result = harness.measure(window_us if left < 1.0 else min(window_us, left))
            timeline.append(
                {
                    "t_s": cluster.engine.now / 1e6,
                    "phase": label,
                    "mops": result.throughput_mops,
                    "p50_us": result.get_latency.median(),
                    "p99_us": result.get_latency.p99(),
                }
            )

    sample("base-compute")
    extra_handles = harness.launch_all(
        extras, [feed(base_clients + i) for i in range(extra_clients)]
    )
    sample("compute-scaled-up")
    for handle in extra_handles:
        harness.stop(handle)
    sample("compute-scaled-down")

    # Memory scale-up: a third node joins the pool at a new epoch, and the
    # budget grows to match.  No data moves — new allocations simply start
    # landing on the new node.
    cluster.add_memory_node()
    cluster.resize_memory(4 * n_keys)
    sample("memory-scaled-up")

    # Memory scale-down: drain node 1 (it holds roughly half the preloaded
    # objects) through the two-phase live migration while traffic continues,
    # then shrink the budget back.
    drain = cluster.remove_memory_node(1)
    sample("memory-scaled-down", until_finished=drain)
    cluster.resize_memory(2 * n_keys)

    for handle in base_handles:
        harness.stop(handle)
    counters = cluster.counters.as_dict()
    return {
        "timeline": timeline,
        "migrations": [record.as_dict() for record in cluster.migrations],
        "epoch": cluster.membership.epoch,
        "epoch_bumps": counters.get("epoch_bump", 0),
        "stale_epoch_retries": counters.get("stale_epoch_retry", 0),
    }


def phase_mean(timeline, phase: str, field: str = "mops") -> float:
    values = [row[field] for row in timeline if row["phase"] == phase]
    return sum(values) / len(values) if values else 0.0


def main() -> Dict:
    result = run(
        n_keys=scaled(5_000, 10_000_000),
        base_clients=scaled(8, 32),
        extra_clients=scaled(8, 32),
        phase_us=scaled(60_000.0, 180_000_000.0),
        window_us=scaled(20_000.0, 1_000_000.0),
    )
    print_table(
        "Figure 13: Ditto under compute/memory scaling",
        ["t (s)", "phase", "Mops", "p50 (us)", "p99 (us)"],
        [
            (r["t_s"], r["phase"], r["mops"], r["p50_us"], r["p99_us"])
            for r in result["timeline"]
        ],
    )
    print_table(
        "Memory-node drains during the run",
        ["node", "phase", "objects", "KiB moved", "CAS lost", "passes", "epochs"],
        [
            (
                m["node_id"], m["phase"], m["migrated_objects"],
                m["migrated_bytes"] / 1024.0, m["cas_lost"], m["passes"],
                f"{m['epoch_start']}->{m['epoch_end']}",
            )
            for m in result["migrations"]
        ],
    )
    print(
        f"final epoch: {result['epoch']} "
        f"({result['epoch_bumps']} membership bumps, "
        f"{result['stale_epoch_retries']} stale-epoch retries)"
    )
    return result


if __name__ == "__main__":
    main()
