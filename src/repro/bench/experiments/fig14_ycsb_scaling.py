"""Figure 14: throughput and p99 of Ditto vs Shard-LRU vs CM-LRU/CM-LFU on
YCSB A-D with growing client counts.

Expected shapes: Shard-LRU is lock-bound and collapses; CliqueMap saturates
on the MN CPU (Sets on A, access-info merging on B/C/D); Ditto scales until
the MN NIC message rate caps it, several times above both.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..format import print_table
from ..scale import scaled
from ..systems import (
    build_cliquemap,
    build_ditto,
    build_shard_lru,
    run_ycsb_workload,
)

SYSTEMS = ("ditto", "shard-lru", "cm-lru", "cm-lfu")


def _build(system: str, n_keys: int, count: int):
    if system == "ditto":
        return build_ditto(2 * n_keys, count)
    if system == "shard-lru":
        return build_shard_lru(4 * n_keys, count)
    if system == "cm-lru":
        return build_cliquemap("lru", 2 * n_keys, count)
    if system == "cm-lfu":
        return build_cliquemap("lfu", 2 * n_keys, count)
    raise ValueError(system)


def run(
    workloads: Sequence[str] = ("A", "B", "C", "D"),
    client_counts: Sequence[int] = (1, 16, 64),
    n_keys: int = 5_000,
    window_us: float = 10_000.0,
    systems: Sequence[str] = SYSTEMS,
) -> Dict:
    results: Dict[str, Dict[str, Dict[int, Dict[str, float]]]] = {}
    for workload in workloads:
        results[workload] = {}
        for system in systems:
            per_count = {}
            for count in client_counts:
                cluster = _build(system, n_keys, count)
                measured = run_ycsb_workload(
                    cluster, cluster.clients, workload, n_keys, window_us=window_us
                )
                per_count[count] = {
                    "mops": measured.throughput_mops,
                    "p99_us": max(
                        measured.get_latency.p99(), measured.set_latency.p99()
                    ),
                }
            results[workload][system] = per_count
    return {"results": results, "client_counts": list(client_counts)}


def main() -> Dict:
    result = run(
        n_keys=scaled(5_000, 10_000_000),
        client_counts=scaled((1, 16, 64), (1, 8, 32, 64, 128, 256)),
        window_us=scaled(10_000.0, 100_000.0),
    )
    counts = result["client_counts"]
    for workload, by_system in result["results"].items():
        print_table(
            f"Figure 14: YCSB-{workload} throughput (Mops)",
            ["system"] + [str(c) for c in counts],
            [
                [system] + [by_system[system][c]["mops"] for c in counts]
                for system in by_system
            ],
        )
        print_table(
            f"Figure 14: YCSB-{workload} p99 (us)",
            ["system"] + [str(c) for c in counts],
            [
                [system] + [by_system[system][c]["p99_us"] for c in counts]
                for system in by_system
            ],
        )
    return result


if __name__ == "__main__":
    main()
