"""Figure 15: throughput vs MN-side CPU cores (Ditto, CliqueMap, Redis).

Ditto uses one-sided verbs only, so its throughput is flat in MN compute;
CliqueMap needs tens of extra server cores to approach it (and stays behind
on write-heavy YCSB-A); Redis — running *on* those MN cores — is bottlenecked
by the hottest shard under Zipfian skew.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ...baselines import RedisCluster
from ..format import print_table
from ..runner import Feed, Harness, make_value, pack_key
from ..scale import scaled
from ..systems import build_cliquemap, build_ditto, run_ycsb_workload
from ...workloads import make_ycsb


def _redis_mops(cores: int, workload: str, n_keys: int, clients: int, window_us: float) -> float:
    cluster = RedisCluster(initial_nodes=cores)
    cluster.load({pack_key(i): make_value(232) for i in range(n_keys)})
    cluster.add_clients(clients)
    harness = Harness(cluster.engine, value_size=232)
    feeds = [
        Feed.from_requests(
            make_ycsb(workload, n_keys=n_keys, seed=50 + i).requests(8_000)
        )
        for i in range(clients)
    ]
    harness.launch_all(cluster.clients, feeds)
    harness.warm(window_us)
    return harness.measure(window_us).throughput_mops


def run(
    workloads: Sequence[str] = ("A", "C"),
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
    n_keys: int = 5_000,
    clients: int = 64,
    window_us: float = 10_000.0,
) -> Dict:
    results: Dict[str, Dict[str, Dict[int, float]]] = {}
    for workload in workloads:
        per_system: Dict[str, Dict[int, float]] = {"ditto": {}, "cliquemap": {}, "redis": {}}
        ditto = build_ditto(2 * n_keys, clients)
        ditto_mops = run_ycsb_workload(
            ditto, ditto.clients, workload, n_keys, window_us=window_us
        ).throughput_mops
        for cores in core_counts:
            per_system["ditto"][cores] = ditto_mops  # one-sided: flat by design
            cm = build_cliquemap("lru", 2 * n_keys, clients, server_cores=cores)
            per_system["cliquemap"][cores] = run_ycsb_workload(
                cm, cm.clients, workload, n_keys, window_us=window_us
            ).throughput_mops
            per_system["redis"][cores] = _redis_mops(
                cores, workload, n_keys, clients, window_us
            )
        results[workload] = per_system
    return {"results": results, "core_counts": list(core_counts)}


def main() -> Dict:
    result = run(
        n_keys=scaled(5_000, 10_000_000),
        clients=scaled(64, 256),
        core_counts=scaled((1, 2, 4, 8, 16), (1, 4, 8, 16, 32, 64)),
        window_us=scaled(10_000.0, 100_000.0),
    )
    cores = result["core_counts"]
    for workload, by_system in result["results"].items():
        print_table(
            f"Figure 15: YCSB-{workload} throughput (Mops) vs MN cores",
            ["system"] + [str(c) for c in cores],
            [
                [system] + [by_system[system][c] for c in cores]
                for system in ("ditto", "cliquemap", "redis")
            ],
        )
    return result


if __name__ == "__main__":
    main()
