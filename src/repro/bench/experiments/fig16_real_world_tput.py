"""Figure 16: penalized throughput on real-world-like workloads.

Clients replay trace shards; each Get miss pays the 500 µs distributed-
storage penalty before the fill Set.  Ditto's throughput should approach the
better of Ditto-LRU/Ditto-LFU and beat CliqueMap (lower hit rate and an
MN-CPU-bound Set path).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ...workloads import WORKLOAD_CATALOG, footprint
from ..format import print_table
from ..scale import scaled
from ..systems import build_cliquemap, build_ditto, run_trace_workload

SYSTEMS = ("ditto", "ditto-lru", "ditto-lfu", "cm-lru", "cm-lfu")


def build_system(system: str, capacity: int, clients: int):
    if system == "ditto":
        return build_ditto(capacity, clients)
    if system == "ditto-lru":
        return build_ditto(capacity, clients, policies=("lru",))
    if system == "ditto-lfu":
        return build_ditto(capacity, clients, policies=("lfu",))
    if system == "cm-lru":
        return build_cliquemap("lru", capacity, clients)
    if system == "cm-lfu":
        return build_cliquemap("lfu", capacity, clients)
    raise ValueError(system)


def run(
    workload_names: Sequence[str] = (
        "webmail", "ibm", "cloudphysics", "twitter-transient", "twitter-storage",
    ),
    systems: Sequence[str] = SYSTEMS,
    n_requests: int = 60_000,
    clients: int = 16,
    capacity_frac: float = 0.1,
    miss_penalty_us: float = 500.0,
    window_us: float = 100_000.0,
    warm_us: float = 250_000.0,
    seed: int = 6,
) -> Dict:
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workload_names:
        spec = WORKLOAD_CATALOG[name]
        trace = spec.trace(n_requests, seed=seed)
        capacity = max(int(footprint(trace) * capacity_frac), 16)
        results[name] = {}
        for system in systems:
            cluster = build_system(system, capacity, clients)
            measured = run_trace_workload(
                cluster,
                cluster.clients,
                trace,
                miss_penalty_us=miss_penalty_us,
                warm_us=warm_us,
                window_us=window_us,
            )
            results[name][system] = {
                "mops": measured.throughput_mops,
                "hit_rate": measured.hit_rate,
            }
    return {"results": results}


def main() -> Dict:
    result = run(
        n_requests=scaled(60_000, 10_000_000),
        clients=scaled(16, 64),
        window_us=scaled(40_000.0, 20_000_000.0),
    )
    for workload, by_system in result["results"].items():
        print_table(
            f"Figure 16: {workload} penalized throughput",
            ["system", "Mops", "hit rate"],
            [
                (system, row["mops"], row["hit_rate"])
                for system, row in by_system.items()
            ],
        )
    return result


if __name__ == "__main__":
    main()
