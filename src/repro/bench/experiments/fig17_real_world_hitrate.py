"""Figure 17: hit rates on real-world-like workloads across cache sizes.

For every workload, Ditto's hit rate should track the better of
Ditto-LRU/Ditto-LFU at each cache size (sizes are fractions of the
workload's footprint, as in the paper).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ...workloads import WORKLOAD_CATALOG, footprint
from ..format import print_table
from ..hitrate import compare_systems
from ..scale import scaled

SYSTEMS = ("ditto", "ditto-lru", "ditto-lfu", "cm-lru", "cm-lfu")


def run(
    workload_names: Sequence[str] = (
        "webmail", "ibm", "cloudphysics", "twitter-transient", "twitter-storage",
    ),
    size_fracs: Sequence[float] = (0.05, 0.1, 0.2, 0.4),
    n_requests: int = 80_000,
    systems: Sequence[str] = SYSTEMS,
    seed: int = 6,
) -> Dict:
    results: Dict[str, Dict[float, Dict[str, float]]] = {}
    for name in workload_names:
        spec = WORKLOAD_CATALOG[name]
        trace = spec.trace(n_requests, seed=seed)
        total = footprint(trace)
        results[name] = {}
        for frac in size_fracs:
            capacity = max(int(total * frac), 8)
            results[name][frac] = compare_systems(systems, trace, capacity, seed=seed)
    return {"results": results, "size_fracs": list(size_fracs)}


def main() -> Dict:
    result = run(n_requests=scaled(80_000, 10_000_000))
    for workload, by_frac in result["results"].items():
        print_table(
            f"Figure 17: {workload} hit rates vs cache size",
            ["cache frac"] + list(next(iter(by_frac.values())).keys()),
            [[frac] + list(rates.values()) for frac, rates in by_frac.items()],
        )
    return result


if __name__ == "__main__":
    main()
