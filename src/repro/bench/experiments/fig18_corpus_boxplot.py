"""Figure 18: Ditto vs the best/worst fixed expert over a workload corpus.

Hit rates normalized over random eviction, reported as box-plot quartiles
across the corpus.  The paper's claim: Ditto's box clears
min(Ditto-LRU, Ditto-LFU) and approaches max(Ditto-LRU, Ditto-LFU).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ...workloads import corpus, footprint
from ..format import print_table
from ..hitrate import make_hit_cache, replay
from ..scale import scaled


def run(
    n_traces: int = 33,
    n_requests: int = 40_000,
    capacity_frac: float = 0.1,
    seed: int = 8,
) -> Dict:
    relative = {"ditto": [], "max_expert": [], "min_expert": []}
    for i, spec in enumerate(corpus(n_traces, seed=seed)):
        trace = spec.trace(n_requests, seed=seed + i)
        capacity = max(int(footprint(trace) * capacity_frac), 8)
        random_rate = replay(make_hit_cache("random", capacity, seed=seed), trace)
        random_rate = max(random_rate, 1e-6)
        lru = replay(make_hit_cache("ditto-lru", capacity, seed=seed), trace)
        lfu = replay(make_hit_cache("ditto-lfu", capacity, seed=seed), trace)
        ditto = replay(make_hit_cache("ditto", capacity, seed=seed), trace)
        relative["ditto"].append(ditto / random_rate)
        relative["max_expert"].append(max(lru, lfu) / random_rate)
        relative["min_expert"].append(min(lru, lfu) / random_rate)
    return {"relative": relative}


def quartiles(values: List[float]) -> Dict[str, float]:
    arr = np.asarray(values)
    return {
        "min": float(arr.min()),
        "q1": float(np.percentile(arr, 25)),
        "median": float(np.percentile(arr, 50)),
        "q3": float(np.percentile(arr, 75)),
        "max": float(arr.max()),
    }


def main() -> Dict:
    result = run(n_requests=scaled(40_000, 10_000_000))
    rows = []
    for name, values in result["relative"].items():
        q = quartiles(values)
        rows.append((name, q["min"], q["q1"], q["median"], q["q3"], q["max"]))
    print_table(
        "Figure 18: hit rate relative to random eviction (box plot quartiles)",
        ["series", "min", "q1", "median", "q3", "max"],
        rows,
    )
    return result


if __name__ == "__main__":
    main()
