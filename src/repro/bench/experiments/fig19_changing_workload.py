"""Figure 19: a changing workload that alternates LRU- and LFU-friendly
phases (synthesized as in LeCaR).

Only the adaptive system tracks the flips, so Ditto should beat *both*
fixed-policy variants on hit rate and penalized throughput over the whole
run.
"""

from __future__ import annotations

from typing import Dict

from ...workloads import footprint, phase_switch_trace
from ..format import print_table
from ..hitrate import make_hit_cache, replay_windowed
from ..scale import scaled
from ..systems import build_ditto, run_trace_workload
from .fig16_real_world_tput import build_system


def run(
    n_requests: int = 120_000,
    n_keys: int = 4096,
    phases: int = 4,
    capacity_frac: float = 0.1,
    clients: int = 16,
    miss_penalty_us: float = 500.0,
    window_us: float = 100_000.0,
    warm_us: float = 200_000.0,
    seed: int = 10,
) -> Dict:
    trace = phase_switch_trace(n_requests, n_keys, phases=phases, seed=seed)
    capacity = max(int(footprint(trace) * capacity_frac), 16)

    hit_rates = {}
    windowed = {}
    for system in ("ditto", "ditto-lru", "ditto-lfu"):
        cache = make_hit_cache(system, capacity, seed=seed)
        windowed[system] = replay_windowed(cache, trace, windows=2 * phases)
        hit_rates[system] = cache.hit_rate()

    throughput = {}
    for system in ("ditto", "ditto-lru", "ditto-lfu"):
        cluster = build_system(system, capacity, clients)
        measured = run_trace_workload(
            cluster,
            cluster.clients,
            trace,
            miss_penalty_us=miss_penalty_us,
            warm_us=warm_us,
            window_us=window_us,
        )
        throughput[system] = measured.throughput_mops
    return {
        "hit_rates": hit_rates,
        "windowed_hit_rates": windowed,
        "throughput_mops": throughput,
    }


def main() -> Dict:
    result = run(n_requests=scaled(120_000, 10_000_000))
    print_table(
        "Figure 19: changing workload (4 phases)",
        ["system", "hit rate", "penalized Mops"],
        [
            (system, result["hit_rates"][system], result["throughput_mops"][system])
            for system in result["hit_rates"]
        ],
    )
    print_table(
        "Figure 19: hit rate per half-phase window",
        ["system"] + [f"w{i}" for i in range(len(next(iter(result["windowed_hit_rates"].values()))))],
        [
            [system] + values
            for system, values in result["windowed_hit_rates"].items()
        ],
    )
    return result


if __name__ == "__main__":
    main()
