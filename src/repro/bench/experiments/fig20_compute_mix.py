"""Figure 20: relative hit rates as client threads shift between an
LRU-patterned and an LFU-patterned application (normalized to Ditto-LRU).

Ditto should match or beat Ditto-LRU at every mix: above it when the
LFU-friendly application dominates, converging to it as the LRU portion
grows.
"""

from __future__ import annotations

from typing import Dict

from ...workloads import (
    mix_traces,
    offset_keys,
    shifting_hotspot_trace,
    zipfian_trace,
)
from ..format import print_table
from ..hitrate import compare_systems
from ..scale import scaled


def run(
    n_requests: int = 100_000,
    n_keys: int = 4096,
    capacity_frac: float = 0.1,
    lru_portions=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    seed: int = 12,
) -> Dict:
    lru_app = shifting_hotspot_trace(
        n_requests, n_keys, working_set=max(n_keys // 12, 32),
        dwell=1500, shift=max(n_keys // 48, 8), seed=seed,
    )
    lfu_app = offset_keys(
        zipfian_trace(n_requests, n_keys, theta=1.05, seed=seed + 1), n_keys
    )
    capacity = max(int(2 * n_keys * capacity_frac), 8)
    rows = []
    for portion in lru_portions:
        weights = [max(portion, 1e-9), max(1.0 - portion, 1e-9)]
        mixed = mix_traces([lru_app, lfu_app], weights, n_requests, seed=seed + 3)
        rates = compare_systems(("ditto", "ditto-lru", "ditto-lfu"), mixed, capacity, seed=seed)
        base = max(rates["ditto-lru"], 1e-9)
        rows.append(
            {
                "lru_portion": portion,
                "ditto": rates["ditto"] / base,
                "ditto-lru": 1.0,
                "ditto-lfu": rates["ditto-lfu"] / base,
                "absolute": rates,
            }
        )
    return {"rows": rows}


def main() -> Dict:
    result = run(n_requests=scaled(100_000, 7_800_000))
    print_table(
        "Figure 20: relative hit rate vs LRU-application client portion",
        ["LRU portion", "Ditto", "Ditto-LRU", "Ditto-LFU"],
        [
            (r["lru_portion"], r["ditto"], r["ditto-lru"], r["ditto-lfu"])
            for r in result["rows"]
        ],
    )
    return result


if __name__ == "__main__":
    main()
