"""Figure 21: relative hit rates while the client count of one application
grows (webmail-like trace, normalized to Ditto-LRU).

Concurrent execution perturbs the access pattern; Ditto should stay at or
above both fixed experts across client counts.
"""

from __future__ import annotations

from typing import Dict

from ...workloads import concurrent_view, footprint, webmail_like_trace
from ..format import print_table
from ..hitrate import compare_systems
from ..scale import scaled


def run(
    n_requests: int = 100_000,
    n_keys: int = 4096,
    capacity_frac: float = 0.1,
    client_counts=(1, 2, 4, 8, 16, 32, 64),
    seed: int = 13,
) -> Dict:
    trace = webmail_like_trace(n_requests, n_keys, seed=seed)
    capacity = max(int(footprint(trace) * capacity_frac), 8)
    rows = []
    for count in client_counts:
        view = concurrent_view(trace, count, mode="random", seed=seed + count)
        rates = compare_systems(
            ("ditto", "ditto-lru", "ditto-lfu", "cm-lru", "cm-lfu"),
            view, capacity, seed=seed,
        )
        base = max(rates["ditto-lru"], 1e-9)
        rows.append(
            {
                "clients": count,
                "relative": {k: v / base for k, v in rates.items()},
                "absolute": rates,
            }
        )
    return {"rows": rows, "capacity": capacity}


def main() -> Dict:
    result = run(n_requests=scaled(100_000, 7_800_000))
    systems = list(result["rows"][0]["relative"].keys())
    print_table(
        "Figure 21: relative hit rate vs concurrent clients (vs Ditto-LRU)",
        ["clients"] + systems,
        [[r["clients"]] + [r["relative"][s] for s in systems] for r in result["rows"]],
    )
    return result


if __name__ == "__main__":
    main()
