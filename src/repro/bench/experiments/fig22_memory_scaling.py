"""Figure 22: hit rate while the cache's memory is grown at runtime.

The cache is resized mid-run through a schedule of footprint fractions
(elastic memory on DM: no migration, just a budget change).  Ditto should
track whichever expert the current size favours.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...workloads import footprint, webmail_like_trace
from ..format import print_table
from ..hitrate import make_hit_cache
from ..scale import scaled


def run(
    n_requests: int = 160_000,
    n_keys: int = 4096,
    size_schedule=(0.05, 0.1, 0.2, 0.3, 0.4),
    seed: int = 14,
) -> Dict:
    trace = webmail_like_trace(n_requests, n_keys, seed=seed)
    total = footprint(trace)
    segments = np.array_split(np.asarray(trace), len(size_schedule))
    rows = []
    caches = {
        system: make_hit_cache(system, max(int(total * size_schedule[0]), 8), seed=seed)
        for system in ("ditto", "ditto-lru", "ditto-lfu")
    }
    for frac, segment in zip(size_schedule, segments):
        capacity = max(int(total * frac), 8)
        row = {"cache_frac": frac, "capacity": capacity}
        for system, cache in caches.items():
            cache.resize(capacity)
            h0, m0 = cache.hits, cache.misses
            for key in segment:
                cache.access(int(key))
            seen = cache.hits + cache.misses - h0 - m0
            row[system] = (cache.hits - h0) / seen if seen else 0.0
        rows.append(row)
    return {"rows": rows, "footprint": total}


def main() -> Dict:
    result = run(n_requests=scaled(160_000, 7_800_000))
    print_table(
        "Figure 22: hit rate under dynamically growing cache sizes",
        ["cache frac", "objects", "Ditto", "Ditto-LRU", "Ditto-LFU"],
        [
            (r["cache_frac"], r["capacity"], r["ditto"], r["ditto-lru"], r["ditto-lfu"])
            for r in result["rows"]
        ],
    )
    return result


if __name__ == "__main__":
    main()
