"""Figure 23 + Table 3: all 12 caching algorithms running on Ditto.

For each integrated algorithm: DM throughput and hit rate on the
webmail-like workload, plus the integration effort (lines of code of its
update/priority functions) and the access information it consumes.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ...core import POLICY_REGISTRY, make_policy, policy_loc
from ...workloads import footprint, webmail_like_trace
from ..format import print_table
from ..hitrate import replay
from ...cachesim import SampledAdaptiveCache
from ..scale import scaled
from ..systems import build_ditto, run_trace_workload

TABLE3_ORDER = (
    "lru", "lfu", "mru", "gds", "lirs", "fifo",
    "size", "gdsf", "lrfu", "lruk", "lfuda", "hyperbolic",
)


def run(
    algorithms: Sequence[str] = TABLE3_ORDER,
    n_requests: int = 50_000,
    n_keys: int = 4096,
    capacity_frac: float = 0.1,
    clients: int = 8,
    window_us: float = 100_000.0,
    warm_us: float = 250_000.0,
    seed: int = 15,
) -> Dict:
    trace = webmail_like_trace(n_requests, n_keys, seed=seed)
    capacity = max(int(footprint(trace) * capacity_frac), 16)
    rows = []
    for name in algorithms:
        policy = make_policy(name)
        hit = replay(
            SampledAdaptiveCache(capacity, policies=(name,), seed=seed), trace
        )
        cluster = build_ditto(capacity, clients, policies=(name,))
        measured = run_trace_workload(
            cluster,
            cluster.clients,
            trace,
            miss_penalty_us=500.0,
            warm_us=warm_us,
            window_us=window_us,
        )
        rows.append(
            {
                "algorithm": name,
                "mops": measured.throughput_mops,
                "hit_rate": hit,
                "loc": policy_loc(policy),
                "info": "+".join(policy.info),
            }
        )
    return {"rows": rows, "capacity": capacity}


def main() -> Dict:
    result = run(n_requests=scaled(50_000, 7_800_000))
    print_table(
        "Figure 23 / Table 3: 12 caching algorithms on Ditto",
        ["algorithm", "Mops", "hit rate", "LOC", "access info"],
        [
            (r["algorithm"], r["mops"], r["hit_rate"], r["loc"], r["info"])
            for r in result["rows"]
        ],
    )
    average_loc = sum(r["loc"] for r in result["rows"]) / len(result["rows"])
    print(f"average integration effort: {average_loc:.1f} LOC")
    return result


if __name__ == "__main__":
    main()
