"""Figure 24: contribution of each technique (ablation on webmail, no miss
penalty).

Starting from full Ditto, disable one design at a time: the sample-friendly
hash table (SFHT), the lightweight history (LWH), the lazy weight update
(LWU), and the FC cache.  Each ablation should cost throughput — SFHT the
most (extra READs on sampling and update), then LWH (history RTTs), then
LWU + FC (saved NIC message rate).
"""

from __future__ import annotations

from typing import Dict

from ...workloads import footprint, webmail_like_trace
from ..format import print_table
from ..scale import scaled
from ..systems import build_ditto, run_trace_workload

VARIANTS = {
    "ditto (full)": {},
    "-sfht": {"use_sfht": False},
    "-lwh": {"use_lwh": False},
    "-lwu": {"use_lwu": False},
    "-fc": {"use_fc": False},
    "-all": {"use_sfht": False, "use_lwh": False, "use_lwu": False, "use_fc": False},
}


def run(
    n_requests: int = 60_000,
    n_keys: int = 4096,
    capacity_frac: float = 0.1,
    clients: int = 32,
    window_us: float = 20_000.0,
    seed: int = 16,
) -> Dict:
    trace = webmail_like_trace(n_requests, n_keys, seed=seed)
    capacity = max(int(footprint(trace) * capacity_frac), 16)
    rows = []
    for label, flags in VARIANTS.items():
        cluster = build_ditto(capacity, clients, **flags)
        measured = run_trace_workload(
            cluster,
            cluster.clients,
            trace,
            miss_penalty_us=0.0,
            warm_us=window_us / 2,
            window_us=window_us,
        )
        rows.append(
            {
                "variant": label,
                "mops": measured.throughput_mops,
                "hit_rate": measured.hit_rate,
            }
        )
    full = rows[0]["mops"]
    for row in rows:
        row["relative"] = row["mops"] / full if full else 0.0
    return {"rows": rows, "capacity": capacity}


def main() -> Dict:
    result = run(
        n_requests=scaled(60_000, 7_800_000),
        clients=scaled(32, 64),
        window_us=scaled(20_000.0, 10_000_000.0),
    )
    print_table(
        "Figure 24: technique contributions (webmail, no miss penalty)",
        ["variant", "Mops", "relative", "hit rate"],
        [(r["variant"], r["mops"], r["relative"], r["hit_rate"]) for r in result["rows"]],
    )
    return result


if __name__ == "__main__":
    main()
