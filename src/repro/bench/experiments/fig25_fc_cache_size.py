"""Figure 25: YCSB-C throughput and tail latency vs FC cache size.

Bigger client-side FC caches absorb more RDMA_FAAs, saving MN NIC message
rate: throughput climbs and p99 falls until the gains flatten at a few MB.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..format import print_table
from ..scale import scaled
from ..systems import build_ditto, run_ycsb_workload

MB = 1024 * 1024


def run(
    fc_sizes_bytes: Sequence[int] = (0, MB // 10, MB, 5 * MB, 10 * MB),
    n_keys: int = 5_000,
    clients: int = 64,
    window_us: float = 10_000.0,
) -> Dict:
    rows = []
    for size in fc_sizes_bytes:
        if size == 0:
            cluster = build_ditto(2 * n_keys, clients, use_fc=False)
        else:
            cluster = build_ditto(2 * n_keys, clients, fc_capacity_bytes=size)
        measured = run_ycsb_workload(
            cluster, cluster.clients, "C", n_keys, window_us=window_us
        )
        cluster.engine.run()  # drain async posts so FAA counts are final
        rows.append(
            {
                "fc_mb": size / MB,
                "mops": measured.throughput_mops,
                "p99_us": measured.get_latency.p99(),
                "faas": cluster.counters.get("rdma_faa"),
            }
        )
    return {"rows": rows}


def main() -> Dict:
    result = run(
        n_keys=scaled(5_000, 10_000_000),
        clients=scaled(64, 256),
        window_us=scaled(10_000.0, 100_000.0),
    )
    print_table(
        "Figure 25: YCSB-C vs FC cache size",
        ["FC size (MB)", "Mops", "p99 (us)", "total FAAs"],
        [(r["fc_mb"], r["mops"], r["p99_us"], r["faas"]) for r in result["rows"]],
    )
    return result


if __name__ == "__main__":
    main()
