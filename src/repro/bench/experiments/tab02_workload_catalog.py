"""Table 2: the real-world workload catalog (synthetic stand-ins)."""

from __future__ import annotations

from typing import Dict

from ...workloads import WORKLOAD_CATALOG, footprint
from ..format import print_table


def run(n_requests: int = 20_000, seed: int = 1) -> Dict:
    rows = []
    for name, spec in WORKLOAD_CATALOG.items():
        trace = spec.trace(n_requests, seed=seed)
        rows.append(
            {
                "workload": name,
                "mimics": spec.family,
                "type": spec.workload_type,
                "keys": spec.n_keys,
                "footprint": footprint(trace),
            }
        )
    return {"rows": rows}


def main() -> Dict:
    result = run()
    print_table(
        "Table 2: workload catalog",
        ["workload", "mimics", "type", "key space", "footprint@20k"],
        [
            (r["workload"], r["mimics"], r["type"], r["keys"], r["footprint"])
            for r in result["rows"]
        ],
    )
    return result


if __name__ == "__main__":
    main()
