"""Plain-text table output for experiment results (paper-figure rows)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Align columns; floats get 3 significant decimals."""

    def cell(v) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(t.ljust(w) for t, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
