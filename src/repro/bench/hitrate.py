"""Hit-rate experiment helpers (the fast cachesim tier)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cachesim import ExactLFUCache, ExactLRUCache, RandomCache, SampledAdaptiveCache


def make_hit_cache(system: str, capacity: int, seed: int = 0):
    """Hit-rate model by system name.

    ``ditto`` (adaptive LRU+LFU), ``ditto-lru`` / ``ditto-lfu`` (sampled
    single policy), ``cm-lru`` / ``cm-lfu`` (CliqueMap's precise server-side
    algorithms), ``random``.
    """
    system = system.lower()
    if system == "ditto":
        return SampledAdaptiveCache(capacity, policies=("lru", "lfu"), seed=seed)
    if system.startswith("ditto-"):
        return SampledAdaptiveCache(capacity, policies=(system[6:],), seed=seed)
    if system == "cm-lru":
        return ExactLRUCache(capacity)
    if system == "cm-lfu":
        return ExactLFUCache(capacity)
    if system == "random":
        return RandomCache(capacity, seed=seed)
    raise ValueError(f"unknown hit-rate system {system!r}")


def _replay_span(cache, span) -> None:
    """Feed one trace span through a cache, batched when it supports it.

    The single dispatch point for every replay helper: caches exposing
    ``access_many`` (the sampled/exact simulators) take the batched path —
    which itself picks the vectorized replay when eligible — and anything
    else falls back to per-key ``access`` calls.
    """
    access_many = getattr(cache, "access_many", None)
    if access_many is not None:
        access_many(np.asarray(span))
    else:
        access = cache.access
        for key in span:
            access(int(key))


def replay(cache, trace: Sequence[int]) -> float:
    """Replay a trace (miss inserts, as a miss-penalty Set would); returns
    the overall hit rate."""
    _replay_span(cache, trace)
    return cache.hit_rate()


def replay_windowed(cache, trace: Sequence[int], windows: int) -> List[float]:
    """Hit rate per consecutive trace window (for phase/timeline figures)."""
    spans = np.array_split(np.asarray(trace), windows)
    rates: List[float] = []
    for span in spans:
        h0, m0 = cache.hits, cache.misses
        _replay_span(cache, span)
        total = cache.hits + cache.misses - h0 - m0
        rates.append((cache.hits - h0) / total if total else 0.0)
    return rates


def compare_systems(
    systems: Sequence[str], trace: Sequence[int], capacity: int, seed: int = 0
) -> Dict[str, float]:
    """Hit rate of each named system on the same trace."""
    return {
        system: replay(make_hit_cache(system, capacity, seed=seed), trace)
        for system in systems
    }
