"""Self-benchmark of the simulation substrate (``BENCH_sim_speed.json``).

The benchmark suite's wall-clock is bounded by two hot loops: the
discrete-event engine (timed-tier experiments) and the trace-replay cache
simulator (hit-rate-tier experiments).  Both now have a batched fast path
next to the scalar one, so every micro-benchmark here reports **pairs**:

- **engine events/sec** — N processes ping-ponging Timeouts through one
  engine.  ``scalar`` pins the engine to the classic pop-dispatch loop;
  ``storm`` lets the uniform-delay storm mode engage.  The storm variant
  hoists one immutable ``Timeout`` out of the loop (``Timeout`` carries only
  its delay, so reuse is safe) — that is the idiomatic shape for pure
  delay loops and what the fast path is built for.
- **rdma verbs/sec** — READs through the full verb layer (endpoint → NIC
  booking → memory node).  ``scalar`` awaits each verb; ``burst`` issues
  doorbell-batched ``read_burst`` trains of 64.
- **cachesim accesses/sec** — Zipfian traces replayed through
  ``SampledAdaptiveCache`` with the adaptive (lru, lfu) configuration, over
  a basket of regimes (``churn``: cap ≪ keys, mostly misses; ``balanced``:
  cap = keys/2; ``hot``: θ=1.1 skew).  Each runs the scalar loop and the
  numpy-vectorized replay — byte-identical results, different speed.

The report (schema 2) keeps a bounded history of past headline rows so the
substrate's performance trajectory is tracked from PR to PR.  Two gates turn
a run into a pass/fail check:

- ``--check`` compares against the committed headline file: a fresh run must
  stay within ``REPRO_PERF_THRESHOLD`` (default 0.30 = 30%).  Meaningful on
  the machine the committed numbers came from (a dev box tracking drift) —
  a shared CI runner can legitimately be several times slower, so absolute
  rates are not comparable there.
- ``--check-ratio`` is machine-independent: it gates on fast-vs-scalar
  *speedups measured entirely within this run* (storm vs scalar engine,
  burst vs scalar rdma, vectorized vs scalar cachesim).  A fast path that
  silently disengages collapses its ratio to ~1x no matter how fast or slow
  the machine is, which is exactly what CI needs to catch.

Usage::

    python -m repro.bench.meta                 # writes BENCH_sim_speed.json
    python -m repro.bench.meta out.json        # custom output path
    python -m repro.bench.meta --check         # compare vs committed file
    REPRO_PERF_THRESHOLD=0.5 python -m repro.bench.meta --check
    python -m repro.bench.meta --check-ratio   # within-run speedup floors
    REPRO_PERF_RATIO_FLOORS="engine=1.5,cachesim=1.1" \
        python -m repro.bench.meta --check-ratio
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

from ..cachesim import SampledAdaptiveCache
from ..memory import MemoryNode, MemoryPool
from ..rdma import RdmaEndpoint
from ..sim import Engine, Timeout
from ..workloads import ZipfianGenerator

DEFAULT_OUTPUT = "BENCH_sim_speed.json"

#: Past headline rows retained in the report (newest first).
HISTORY_LIMIT = 20

#: Allowed fractional slowdown vs the committed headline before ``--check``
#: fails; override with ``REPRO_PERF_THRESHOLD`` (CI runners are noisy —
#: set it generously there).
DEFAULT_THRESHOLD = 0.30

#: Headline metrics ``--check`` gates on.
CHECKED_METRICS = (
    "engine_events_per_sec",
    "rdma_verbs_per_sec",
    "cachesim_accesses_per_sec",
)

#: Fast-vs-scalar speedup floors ``--check-ratio`` gates on, measured within
#: one run on one machine.  Committed dev-box speedups are ~6.8x (engine
#: storm), ~56x (rdma burst), and ~2.6x (cachesim vectorized); the floors sit
#: far below those so only a fast path silently disengaging (ratio ~1x)
#: trips them, never runner speed or noise.  Override per-pair with
#: ``REPRO_PERF_RATIO_FLOORS="engine=1.5,rdma=2,cachesim=1.1"``.
DEFAULT_RATIO_FLOORS = {
    "engine": 2.0,
    "rdma": 4.0,
    "cachesim": 1.3,
}

#: fast/scalar headline-key pairs behind each ``--check-ratio`` gate.
RATIO_PAIRS = {
    "engine": ("engine_events_per_sec", "engine_scalar_events_per_sec"),
    "rdma": ("rdma_verbs_per_sec", "rdma_scalar_verbs_per_sec"),
    "cachesim": ("cachesim_accesses_per_sec",
                 "cachesim_scalar_accesses_per_sec"),
}

#: The cachesim basket: regime name → trace/cache parameters.
CACHESIM_CONFIGS: Dict[str, Dict[str, Any]] = {
    "churn": {"n_accesses": 400_000, "n_keys": 16384, "capacity": 2048,
              "theta": 0.99},
    "balanced": {"n_accesses": 400_000, "n_keys": 16384, "capacity": 8192,
                 "theta": 0.99},
    "hot": {"n_accesses": 400_000, "n_keys": 16384, "capacity": 8192,
            "theta": 1.1},
}


def bench_engine(
    processes: int = 100, events_per_process: int = 2000, batch: bool = True
) -> Dict:
    """Pure event-loop throughput: Timeout-only processes.

    ``batch=False`` pins the engine to the scalar pop-dispatch loop;
    ``batch=True`` measures the uniform-delay storm fast path.
    """
    engine = Engine()
    if not batch:
        engine.disable_batch("benchmark-scalar")
    pause = Timeout(1.0)  # immutable; hoisting it keeps the loop allocation-free

    def ping(n):
        for _ in range(n):
            yield pause

    for _ in range(processes):
        engine.spawn(ping(events_per_process))
    # spawn() schedules one extra step per process (the first resume).
    events = processes * events_per_process + processes
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return {
        "events": events,
        "elapsed_s": elapsed,
        "events_per_sec": events / elapsed,
    }


def bench_rdma(
    clients: int = 32, verbs_per_client: int = 5000, burst: int = 0
) -> Dict:
    """The timed tier's per-op path: READ verbs through NIC booking.

    ``burst=N`` (N > 1) issues doorbell-batched trains of N via
    ``read_burst`` instead of awaiting each verb individually.
    """
    engine = Engine()
    node = MemoryNode(engine, size=1 << 20)
    pool = MemoryPool([node])

    def client(endpoint, n):
        for i in range(n):
            yield from endpoint.read((i * 64) % 65536, 64)

    def burst_client(endpoint, n, train):
        for i in range(0, n, train):
            yield from endpoint.read_burst((i * 64) % 65536, 64,
                                           min(train, n - i))

    for _ in range(clients):
        endpoint = RdmaEndpoint(engine, pool)
        if burst > 1:
            engine.spawn(burst_client(endpoint, verbs_per_client, burst))
        else:
            engine.spawn(client(endpoint, verbs_per_client))
    verbs = clients * verbs_per_client
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return {
        "verbs": verbs,
        "elapsed_s": elapsed,
        "verbs_per_sec": verbs / elapsed,
    }


def bench_cachesim(
    n_accesses: int = 400_000,
    n_keys: int = 16384,
    capacity: int = 2048,
    theta: float = 0.99,
    vectorized: bool = True,
) -> Dict:
    """Trace-replay throughput of the adaptive cache simulator.

    ``vectorized=False`` forces the scalar per-access loop (via
    ``REPRO_VECTORIZE=0``, the same switch users have); the default lets
    ``access_many`` pick the numpy replay.  Results are byte-identical
    either way — that identity is what ``tests/cachesim/test_vectorized.py``
    enforces.
    """
    trace = ZipfianGenerator(n_keys, theta=theta, seed=11).sample(n_accesses)
    cache = SampledAdaptiveCache(capacity, policies=("lru", "lfu"), seed=0)
    previous = os.environ.get("REPRO_VECTORIZE")
    if not vectorized:
        os.environ["REPRO_VECTORIZE"] = "0"
    try:
        started = time.perf_counter()
        cache.access_many(trace)
        elapsed = time.perf_counter() - started
    finally:
        if not vectorized:
            if previous is None:
                os.environ.pop("REPRO_VECTORIZE", None)
            else:
                os.environ["REPRO_VECTORIZE"] = previous
    return {
        "accesses": n_accesses,
        "elapsed_s": elapsed,
        "accesses_per_sec": n_accesses / elapsed,
        "hit_rate": cache.hit_rate(),
        "evictions": cache.evictions,
    }


def _best(rounds: List[Dict], rate_key: str) -> Dict:
    return max(rounds, key=lambda r: r[rate_key])


def _round_rates(record: Dict) -> Dict:
    out = {}
    for k, v in record.items():
        if k in ("elapsed_s", "hit_rate"):
            out[k] = round(v, 4)
        elif isinstance(v, float):
            out[k] = round(v, 1)
        else:
            out[k] = v
    return out


def run(repeats: int = 3) -> Dict:
    """Run every micro-benchmark pair; keep the best of ``repeats`` rounds."""
    engine_scalar = _best(
        [bench_engine(batch=False) for _ in range(repeats)], "events_per_sec")
    engine_storm = _best(
        [bench_engine(batch=True) for _ in range(repeats)], "events_per_sec")
    rdma_scalar = _best(
        [bench_rdma() for _ in range(repeats)], "verbs_per_sec")
    rdma_burst = _best(
        [bench_rdma(burst=64) for _ in range(repeats)], "verbs_per_sec")

    cachesim: Dict[str, Dict] = {}
    for name, config in CACHESIM_CONFIGS.items():
        cachesim[name] = {
            "config": dict(config),
            "scalar": _round_rates(_best(
                [bench_cachesim(vectorized=False, **config)
                 for _ in range(repeats)],
                "accesses_per_sec")),
            "vectorized": _round_rates(_best(
                [bench_cachesim(vectorized=True, **config)
                 for _ in range(repeats)],
                "accesses_per_sec")),
        }

    # Headline cachesim number: the fastest vectorized regime (the substrate's
    # peak replay rate); its scalar counterpart rides along for the speedup.
    peak_name = max(
        cachesim, key=lambda n: cachesim[n]["vectorized"]["accesses_per_sec"])
    peak = cachesim[peak_name]

    return {
        "schema": 2,
        "generated_utc": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "engine": {
            "scalar": _round_rates(engine_scalar),
            "storm": _round_rates(engine_storm),
        },
        "rdma": {
            "scalar": _round_rates(rdma_scalar),
            "burst": _round_rates(rdma_burst),
        },
        "cachesim": cachesim,
        "headline": {
            "engine_events_per_sec": round(engine_storm["events_per_sec"], 1),
            "engine_scalar_events_per_sec": round(
                engine_scalar["events_per_sec"], 1),
            "rdma_verbs_per_sec": round(rdma_burst["verbs_per_sec"], 1),
            "rdma_scalar_verbs_per_sec": round(
                rdma_scalar["verbs_per_sec"], 1),
            "cachesim_accesses_per_sec":
                peak["vectorized"]["accesses_per_sec"],
            "cachesim_scalar_accesses_per_sec":
                peak["scalar"]["accesses_per_sec"],
            "cachesim_peak_config": peak_name,
        },
    }


def _load_report(path: str) -> Optional[Dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def _carry_history(fresh: Dict, previous: Optional[Dict]) -> Dict:
    """Attach the bounded run history: prior headline rows, newest first."""
    history: List[Dict] = []
    if previous is not None:
        if previous.get("schema", 1) >= 2:
            if "headline" in previous:
                history.append({
                    "generated_utc": previous.get("generated_utc"),
                    "headline": previous["headline"],
                })
            history.extend(previous.get("history", []))
        elif "headline" in previous:  # schema-1 file: keep its one row
            history.append({
                "generated_utc": previous.get("generated_utc"),
                "headline": previous["headline"],
            })
    fresh["history"] = history[:HISTORY_LIMIT]
    return fresh


def check(baseline: Dict, fresh: Dict, threshold: float) -> List[str]:
    """Headline metrics of ``fresh`` that regressed > ``threshold`` vs
    ``baseline``; empty list means the gate passes."""
    failures = []
    base_head = baseline.get("headline", {})
    fresh_head = fresh.get("headline", {})
    for metric in CHECKED_METRICS:
        base = base_head.get(metric)
        now = fresh_head.get(metric)
        if not base or now is None:
            continue  # metric absent (older schema) — nothing to gate on
        if now < base * (1.0 - threshold):
            failures.append(
                f"{metric}: {now:,.0f}/s is {1 - now / base:.0%} below the "
                f"committed {base:,.0f}/s (threshold {threshold:.0%})"
            )
    return failures


def ratio_floors_from_env() -> Dict[str, float]:
    """``DEFAULT_RATIO_FLOORS`` overlaid with ``REPRO_PERF_RATIO_FLOORS``."""
    floors = dict(DEFAULT_RATIO_FLOORS)
    setting = os.environ.get("REPRO_PERF_RATIO_FLOORS", "")
    for part in filter(None, (p.strip() for p in setting.split(","))):
        name, sep, value = part.partition("=")
        if not sep or name not in floors:
            raise ValueError(
                f"bad REPRO_PERF_RATIO_FLOORS entry {part!r}; expected "
                f"name=floor with name in {sorted(floors)}"
            )
        floors[name] = float(value)
    return floors


def check_ratios(report: Dict, floors: Dict[str, float]) -> List[str]:
    """Fast-path speedups of ``report`` that fall below their floor; empty
    list means every fast path is genuinely engaged."""
    failures = []
    headline = report.get("headline", {})
    for name, (fast_key, scalar_key) in RATIO_PAIRS.items():
        fast = headline.get(fast_key)
        scalar = headline.get(scalar_key)
        if not fast or not scalar:
            continue  # pair absent (older schema) — nothing to gate on
        ratio = fast / scalar
        if ratio < floors[name]:
            failures.append(
                f"{name}: fast path is only {ratio:.2f}x its scalar twin "
                f"in this run (floor {floors[name]:.1f}x) — is the fast "
                f"path silently disengaging?"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.meta",
        description="Benchmark the simulation substrate itself.",
    )
    parser.add_argument("output", nargs="?", default=DEFAULT_OUTPUT,
                        help=f"report path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="rounds per benchmark, best kept (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="don't rewrite the report; fail if this run "
                             "regresses the committed headline by more than "
                             "REPRO_PERF_THRESHOLD (default "
                             f"{DEFAULT_THRESHOLD:.0%})")
    parser.add_argument("--check-ratio", action="store_true",
                        help="don't rewrite the report; fail if a fast path's "
                             "within-run speedup over its scalar twin falls "
                             "below its floor (machine-independent; override "
                             "floors via REPRO_PERF_RATIO_FLOORS)")
    args = parser.parse_args(argv)

    previous = _load_report(args.output)
    report = run(repeats=args.repeats)

    h = report["headline"]
    print(
        f"engine: {h['engine_events_per_sec']:,.0f} events/s storm "
        f"({h['engine_scalar_events_per_sec']:,.0f} scalar) | "
        f"rdma: {h['rdma_verbs_per_sec']:,.0f} verbs/s burst "
        f"({h['rdma_scalar_verbs_per_sec']:,.0f} scalar) | "
        f"cachesim[{h['cachesim_peak_config']}]: "
        f"{h['cachesim_accesses_per_sec']:,.0f} accesses/s vectorized "
        f"({h['cachesim_scalar_accesses_per_sec']:,.0f} scalar)"
    )

    if args.check or args.check_ratio:
        failures: List[str] = []
        if args.check_ratio:
            floors = ratio_floors_from_env()
            failures += check_ratios(report, floors)
        if args.check:
            if previous is None:
                print(f"no committed report at {args.output}; "
                      "nothing to check")
            else:
                threshold = float(
                    os.environ.get("REPRO_PERF_THRESHOLD", DEFAULT_THRESHOLD))
                failures += check(previous, report, threshold)
        for failure in failures:
            print(f"PERF REGRESSION: {failure}")
        if failures:
            return 1
        print("perf check passed")
        return 0

    report = _carry_history(report, previous)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
