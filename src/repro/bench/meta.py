"""Self-benchmark of the simulation substrate (``BENCH_sim_speed.json``).

The benchmark suite's wall-clock is bounded by two hot loops: the
discrete-event engine (timed-tier experiments) and the trace-replay cache
simulator (hit-rate-tier experiments).  This module measures both in
isolation —

- **engine events/sec**: N processes ping-ponging Timeouts through one
  engine, the pop-dispatch loop and Process._step and nothing else;
- **rdma verbs/sec**: clients issuing READs through the full verb layer
  (endpoint → NIC booking → memory node), the timed tier's actual per-op
  path;
- **cachesim accesses/sec**: a Zipfian trace replayed through
  ``SampledAdaptiveCache`` with the adaptive (lru, lfu) configuration —

and writes the rates to ``BENCH_sim_speed.json`` so the performance
trajectory of the substrate is tracked from PR to PR.

Usage::

    python -m repro.bench.meta              # writes BENCH_sim_speed.json
    python -m repro.bench.meta out.json     # custom output path
"""

from __future__ import annotations

import json
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Dict

from ..cachesim import SampledAdaptiveCache
from ..memory import MemoryNode, MemoryPool
from ..rdma import RdmaEndpoint
from ..sim import Engine, Timeout
from ..workloads import ZipfianGenerator

DEFAULT_OUTPUT = "BENCH_sim_speed.json"


def bench_engine(processes: int = 100, events_per_process: int = 2000) -> Dict:
    """Pure event-loop throughput: Timeout-only processes."""
    engine = Engine()

    def ping(n):
        for _ in range(n):
            yield Timeout(1.0)

    for _ in range(processes):
        engine.spawn(ping(events_per_process))
    # spawn() schedules one extra step per process (the first resume).
    events = processes * events_per_process + processes
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return {
        "events": events,
        "elapsed_s": elapsed,
        "events_per_sec": events / elapsed,
    }


def bench_rdma(clients: int = 32, verbs_per_client: int = 5000) -> Dict:
    """The timed tier's per-op path: READ verbs through NIC booking."""
    engine = Engine()
    node = MemoryNode(engine, size=1 << 20)
    pool = MemoryPool([node])

    def client(endpoint, n):
        for i in range(n):
            yield from endpoint.read((i * 64) % 65536, 64)

    for _ in range(clients):
        engine.spawn(client(RdmaEndpoint(engine, pool), verbs_per_client))
    verbs = clients * verbs_per_client
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return {
        "verbs": verbs,
        "elapsed_s": elapsed,
        "verbs_per_sec": verbs / elapsed,
    }


def bench_cachesim(
    n_accesses: int = 400_000, n_keys: int = 16384, capacity: int = 2048
) -> Dict:
    """Trace-replay throughput of the adaptive cache simulator."""
    trace = ZipfianGenerator(n_keys, seed=11).sample(n_accesses)
    cache = SampledAdaptiveCache(capacity, policies=("lru", "lfu"), seed=0)
    started = time.perf_counter()
    cache.access_many(trace)
    elapsed = time.perf_counter() - started
    return {
        "accesses": n_accesses,
        "elapsed_s": elapsed,
        "accesses_per_sec": n_accesses / elapsed,
        "hit_rate": cache.hit_rate(),
        "evictions": cache.evictions,
    }


def run(repeats: int = 3) -> Dict:
    """Run every micro-benchmark; keep the best of ``repeats`` rounds."""
    engine = max((bench_engine() for _ in range(repeats)), key=lambda r: r["events_per_sec"])
    rdma = max((bench_rdma() for _ in range(repeats)), key=lambda r: r["verbs_per_sec"])
    cachesim = max(
        (bench_cachesim() for _ in range(repeats)),
        key=lambda r: r["accesses_per_sec"],
    )
    return {
        "schema": 1,
        "generated_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "engine": {k: round(v, 1) if isinstance(v, float) else v for k, v in engine.items()},
        "rdma": {k: round(v, 1) if isinstance(v, float) else v for k, v in rdma.items()},
        "cachesim": {
            k: round(v, 4) if k in ("elapsed_s", "hit_rate") else
            (round(v, 1) if isinstance(v, float) else v)
            for k, v in cachesim.items()
        },
        "headline": {
            "engine_events_per_sec": round(engine["events_per_sec"], 1),
            "rdma_verbs_per_sec": round(rdma["verbs_per_sec"], 1),
            "cachesim_accesses_per_sec": round(cachesim["accesses_per_sec"], 1),
        },
    }


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    output = args[0] if args else DEFAULT_OUTPUT
    report = run()
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    h = report["headline"]
    print(
        f"engine: {h['engine_events_per_sec']:,.0f} events/s | "
        f"rdma: {h['rdma_verbs_per_sec']:,.0f} verbs/s | "
        f"cachesim: {h['cachesim_accesses_per_sec']:,.0f} accesses/s"
    )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
