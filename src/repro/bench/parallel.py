"""Parallel experiment fan-out with an on-disk result cache.

Every (experiment, grid-point, seed) simulation in this repository is
deterministic and independent — the same structure rack-scale simulators
(DRackSim, CXL-ClusterSim) exploit for parallel per-node simulation and
cached sweep results.  This module applies it to the benchmark suite:

- :class:`ExperimentJob` — one unit of work: a spawn-safe reference to a
  module-level callable (``"pkg.module:attr"``) plus keyword params and an
  optional seed.
- :class:`ResultCache` — a JSON file per completed job, keyed by the SHA-256
  of ``(experiment, params, seed, REPRO_SCALE)``.  Re-running an unchanged
  grid simulates nothing.
- :class:`ParallelRunner` — serves cache hits, hands the misses to a
  pluggable dispatcher (``repro.bench.dispatch``; the default is a
  spawn-context ``ProcessPoolExecutor``, so workers never inherit
  interpreter state, and ``REPRO_DISPATCHER=file:<dir>`` swaps in the
  multi-host file queue), and merges results **in submission order**, making
  parallel output byte-identical to a serial run of the same jobs.

Jobs run with stdout captured, so experiment tables print exactly once, in
order, from the parent process.  The runner counts how many jobs were
actually simulated vs served from cache; ``summary()`` exposes both.

Usage::

    from repro.bench.parallel import ExperimentJob, ParallelRunner

    jobs = [ExperimentJob("fig04", "repro.bench.experiments.fig04_cache_size:run",
                          params={"n_requests": 150_000}, seed=3)]
    runner = ParallelRunner(workers=4)
    outcomes = runner.run(jobs)          # [JobOutcome, ...] in submission order
    print(runner.summary())              # {'jobs': 1, 'simulated': 1, 'cached': 0, ...}

or from the CLI: ``python -m repro.bench.run_all -j 4``.
"""

from __future__ import annotations

import hashlib
import importlib
import io
import json
import os
import time
from contextlib import redirect_stdout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..obs.observer import Observability, activate, deactivate
from . import dispatch as _dispatch
from .scale import scale_name

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".bench_cache"

#: Cache file schema version; bump to invalidate every cached result.
CACHE_SCHEMA = 1


def jsonify(value: Any) -> Any:
    """Convert an experiment result into plain JSON types.

    numpy scalars/arrays become Python numbers/lists, tuples become lists,
    dict keys become strings.  Deterministic: equal inputs always serialize
    to equal bytes, which is what makes cached results comparable across
    serial and parallel runs.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    # numpy scalars expose item(); arrays expose tolist().
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return jsonify(value.item())
    if hasattr(value, "tolist"):
        return jsonify(value.tolist())
    raise TypeError(f"result of type {type(value).__name__} is not cacheable")


@dataclass(frozen=True)
class ExperimentJob:
    """One deterministic unit of benchmark work."""

    #: Experiment name (cache-key component and display label).
    experiment: str
    #: Spawn-safe callable reference, ``"package.module:attr"``.  The worker
    #: re-imports the module, so the callable must be module-level.
    fn: str
    #: Keyword arguments for the callable (must be JSON-serializable).
    params: Dict[str, Any] = field(default_factory=dict)
    #: Optional seed, passed as the ``seed=`` keyword when not None.
    seed: Optional[int] = None

    def key(self, scale: Optional[str] = None) -> str:
        """Cache key: SHA-256 over (experiment, fn, params, seed, scale)."""
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "experiment": self.experiment,
                "fn": self.fn,
                "params": jsonify(self.params),
                "seed": self.seed,
                "scale": scale if scale is not None else scale_name(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class JobOutcome:
    """What one job produced (simulated or replayed from cache)."""

    job: ExperimentJob
    result: Any
    stdout: str
    cached: bool
    elapsed_s: float
    #: Observability snapshot (``repro.obs``) when the job ran traced;
    #: replayed from the cache entry for cached outcomes.
    metrics: Optional[Dict[str, Any]] = None
    #: Chrome trace path written by a traced run (None otherwise).
    trace_file: Optional[str] = None


class ResultCache:
    """One JSON file per completed job under ``directory``."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = Path(
            directory
            or os.environ.get("REPRO_CACHE_DIR")
            or DEFAULT_CACHE_DIR
        )

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, entry: Dict[str, Any]) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)  # atomic: concurrent runners never see torn files

    def clear(self) -> int:
        """Delete every cached result; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink()
                removed += 1
        return removed


def execute_job(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job in the current process; module-level for spawn safety.

    ``spec`` is the job as a plain dict (picklable); returns
    ``{"result": <jsonified>, "stdout": <captured text>}`` plus, when
    enabled, ``metrics``/``trace_file`` (observability) and
    ``profile_file`` (``REPRO_PROFILE=1``).

    Profiling composes with the process pool: the profiler runs inside the
    worker around this one job, and the dump file is keyed by the job's
    cache key, so concurrent workers (and repeated grid points of the same
    experiment) never clobber each other's profiles.  ``REPRO_PROFILE_DIR``
    overrides the default ``.profiles/`` output directory.
    """
    module_name, _, attr = spec["fn"].partition(":")
    if not attr:
        raise ValueError(f"job fn must look like 'module:attr', got {spec['fn']!r}")
    fn = getattr(importlib.import_module(module_name), attr)
    kwargs = dict(spec.get("params") or {})
    if spec.get("seed") is not None:
        kwargs["seed"] = spec["seed"]

    obs: Optional[Observability] = None
    trace_dir = spec.get("trace_dir")
    if trace_dir:
        obs = activate(Observability())

    profiler = None
    if os.environ.get("REPRO_PROFILE") == "1":
        import cProfile

        profiler = cProfile.Profile()

    buffer = io.StringIO()
    try:
        with redirect_stdout(buffer):
            if profiler is not None:
                profiler.enable()
            try:
                result = fn(**kwargs)
            finally:
                if profiler is not None:
                    profiler.disable()
    finally:
        if obs is not None:
            deactivate()

    raw: Dict[str, Any] = {"result": jsonify(result), "stdout": buffer.getvalue()}

    if profiler is not None:
        profile_dir = Path(os.environ.get("REPRO_PROFILE_DIR") or ".profiles")
        profile_dir.mkdir(parents=True, exist_ok=True)
        label = spec.get("experiment") or attr
        stem = spec.get("key") or hashlib.sha256(
            json.dumps(spec, sort_keys=True, default=str).encode()
        ).hexdigest()
        profile_path = profile_dir / f"bench_{label}_{stem[:12]}.prof"
        profiler.dump_stats(str(profile_path))
        raw["profile_file"] = str(profile_path)

    if obs is not None:
        os.makedirs(trace_dir, exist_ok=True)
        name = spec.get("trace_name") or spec.get("experiment") or attr
        trace_path = os.path.join(trace_dir, f"{name}.trace.json")
        obs.export_chrome(trace_path)
        raw["metrics"] = obs.snapshot()
        raw["trace_file"] = trace_path

    return raw


class ParallelRunner:
    """Shard jobs across worker processes; merge in submission order.

    ``workers=None`` uses ``os.cpu_count()``; ``workers=1`` (or a single
    job) runs inline in this process, which keeps small runs free of pool
    startup cost.  Either way results are identical — workers are pure
    functions of the job spec.

    ``dispatcher`` overrides *where* misses execute: any object with a
    ``dispatch(specs) -> [(raw, elapsed_s), ...]`` method
    (``repro.bench.dispatch``).  When None, ``REPRO_DISPATCHER`` picks the
    backend: ``local`` (default process pool) or ``file:<dir>`` (shared-
    directory queue served by ``python -m repro.bench.worker``).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        trace_dir: Optional[str] = None,
        dispatcher: Optional[Any] = None,
    ):
        """``trace_dir`` turns on per-job observability: each simulated job
        activates a fresh hub in its worker, writes
        ``<trace_dir>/<experiment>[_<key>].trace.json``, and returns its
        metrics snapshot (persisted into the result cache alongside the
        result)."""
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.cache = ResultCache(cache_dir) if use_cache else None
        self.trace_dir = trace_dir
        self.dispatcher = (
            dispatcher if dispatcher is not None
            else _dispatch.from_env(self.workers)
        )
        self.simulated = 0
        self.cached = 0
        self.elapsed_s = 0.0

    def run(self, jobs: Sequence[ExperimentJob]) -> List[JobOutcome]:
        started = time.perf_counter()
        scale = scale_name()
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

        # Serve cache hits first; only misses travel to the pool.
        pending: List[int] = []
        for i, job in enumerate(jobs):
            entry = self.cache.get(job.key(scale)) if self.cache else None
            if entry is not None:
                self.cached += 1
                outcomes[i] = JobOutcome(
                    job=job,
                    result=entry["result"],
                    stdout=entry.get("stdout", ""),
                    cached=True,
                    elapsed_s=0.0,
                    metrics=entry.get("metrics"),
                    trace_file=entry.get("trace_file"),
                )
            else:
                pending.append(i)

        if pending:
            # Trace filenames: the experiment name alone when unique in this
            # batch, suffixed with the cache key otherwise (grid sweeps).
            name_counts: Dict[str, int] = {}
            for i in pending:
                name = jobs[i].experiment
                name_counts[name] = name_counts.get(name, 0) + 1
            specs = [
                {
                    "fn": jobs[i].fn,
                    "params": jobs[i].params,
                    "seed": jobs[i].seed,
                    "experiment": jobs[i].experiment,
                    "key": jobs[i].key(scale),
                    "trace_dir": self.trace_dir,
                    "trace_name": (
                        jobs[i].experiment
                        if name_counts[jobs[i].experiment] == 1
                        else f"{jobs[i].experiment}_{jobs[i].key(scale)[:10]}"
                    ),
                }
                for i in pending
            ]
            raws = self.dispatcher.dispatch(specs)
            for i, (raw, elapsed) in zip(pending, raws):
                self.simulated += 1
                job = jobs[i]
                if self.cache is not None:
                    entry = {
                        "experiment": job.experiment,
                        "fn": job.fn,
                        "params": jsonify(job.params),
                        "seed": job.seed,
                        "scale": scale,
                        "result": raw["result"],
                        "stdout": raw["stdout"],
                    }
                    if "metrics" in raw:
                        entry["metrics"] = raw["metrics"]
                        entry["trace_file"] = raw.get("trace_file")
                    self.cache.put(job.key(scale), entry)
                outcomes[i] = JobOutcome(
                    job=job,
                    result=raw["result"],
                    stdout=raw["stdout"],
                    cached=False,
                    elapsed_s=elapsed,
                    metrics=raw.get("metrics"),
                    trace_file=raw.get("trace_file"),
                )

        self.elapsed_s += time.perf_counter() - started
        return [o for o in outcomes if o is not None]

    def summary(self) -> Dict[str, Any]:
        """Counters for the run: how much was simulated vs replayed."""
        return {
            "jobs": self.simulated + self.cached,
            "simulated": self.simulated,
            "cached": self.cached,
            "workers": self.workers,
            "elapsed_s": round(self.elapsed_s, 3),
        }


def run_grid(
    experiment: str,
    fn: str,
    grid: Sequence[Dict[str, Any]],
    seeds: Sequence[Optional[int]] = (None,),
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    trace_dir: Optional[str] = None,
    dispatcher: Optional[Any] = None,
) -> List[JobOutcome]:
    """Fan a parameter grid × seeds out across workers.

    Returns outcomes in ``(grid-point, seed)`` submission order — the same
    order a serial double loop would produce.
    """
    jobs = [
        ExperimentJob(experiment=experiment, fn=fn, params=dict(point), seed=seed)
        for point in grid
        for seed in seeds
    ]
    runner = ParallelRunner(
        workers=workers, cache_dir=cache_dir, use_cache=use_cache,
        trace_dir=trace_dir, dispatcher=dispatcher,
    )
    return runner.run(jobs)
