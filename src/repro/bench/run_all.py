"""Run every paper experiment and print all tables.

Usage::

    python -m repro.bench.run_all              # quick scale
    REPRO_SCALE=full python -m repro.bench.run_all
    python -m repro.bench.run_all fig14 fig24  # a subset
"""

from __future__ import annotations

import sys
import time

from .experiments import (
    extra_history_size,
    extra_sample_size,
    fig01_redis_elasticity,
    fig02_caching_structure_cost,
    fig03_client_mix,
    fig04_cache_size,
    fig05_concurrency_effects,
    fig13_ditto_elasticity,
    fig14_ycsb_scaling,
    fig15_mn_cpu_cores,
    fig16_real_world_tput,
    fig17_real_world_hitrate,
    fig18_corpus_boxplot,
    fig19_changing_workload,
    fig20_compute_mix,
    fig21_client_scaling,
    fig22_memory_scaling,
    fig23_twelve_algorithms,
    fig24_ablation,
    fig25_fc_cache_size,
    tab02_workload_catalog,
)
from .scale import scale_name

EXPERIMENTS = {
    "fig01": fig01_redis_elasticity,
    "fig02": fig02_caching_structure_cost,
    "fig03": fig03_client_mix,
    "fig04": fig04_cache_size,
    "fig05": fig05_concurrency_effects,
    "fig13": fig13_ditto_elasticity,
    "fig14": fig14_ycsb_scaling,
    "fig15": fig15_mn_cpu_cores,
    "fig16": fig16_real_world_tput,
    "fig17": fig17_real_world_hitrate,
    "fig18": fig18_corpus_boxplot,
    "fig19": fig19_changing_workload,
    "fig20": fig20_compute_mix,
    "fig21": fig21_client_scaling,
    "fig22": fig22_memory_scaling,
    "fig23": fig23_twelve_algorithms,
    "fig24": fig24_ablation,
    "fig25": fig25_fc_cache_size,
    "tab02": tab02_workload_catalog,
    "extra-samples": extra_sample_size,
    "extra-history": extra_history_size,
}


def main(argv=None) -> int:
    names = (argv if argv is not None else sys.argv[1:]) or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(EXPERIMENTS)}")
        return 2
    print(f"scale: {scale_name()}")
    for name in names:
        started = time.time()
        print(f"\n########## {name} ##########")
        EXPERIMENTS[name].main()
        print(f"[{name} done in {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
