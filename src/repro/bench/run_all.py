"""Run every paper experiment and print all tables.

Usage::

    python -m repro.bench.run_all                   # serial, quick scale
    python -m repro.bench.run_all -j 4              # 4 worker processes + cache
    python -m repro.bench.run_all -j 4 --no-cache   # parallel, always simulate
    python -m repro.bench.run_all --clear-cache     # drop cached results
    REPRO_SCALE=full python -m repro.bench.run_all
    python -m repro.bench.run_all fig14 fig24       # a subset

With ``-j`` the experiments fan out over a process pool and completed runs
are memoized in an on-disk result cache (``.bench_cache/`` by default, or
``REPRO_CACHE_DIR``), so a re-run of an unchanged grid replays instantly.
Output is merged in submission order — byte-identical to a serial run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from ..obs.observer import Observability, activate, deactivate
from .experiments import (
    extra_controller_failover,
    extra_elasticity_churn,
    extra_failover_timeline,
    extra_fault_recovery,
    extra_history_size,
    extra_sample_size,
    fig01_redis_elasticity,
    fig02_caching_structure_cost,
    fig03_client_mix,
    fig04_cache_size,
    fig05_concurrency_effects,
    fig13_ditto_elasticity,
    fig14_ycsb_scaling,
    fig15_mn_cpu_cores,
    fig16_real_world_tput,
    fig17_real_world_hitrate,
    fig18_corpus_boxplot,
    fig19_changing_workload,
    fig20_compute_mix,
    fig21_client_scaling,
    fig22_memory_scaling,
    fig23_twelve_algorithms,
    fig24_ablation,
    fig25_fc_cache_size,
    tab02_workload_catalog,
)
from .parallel import ExperimentJob, ParallelRunner, ResultCache
from .scale import scale_name

EXPERIMENTS = {
    "fig01": fig01_redis_elasticity,
    "fig02": fig02_caching_structure_cost,
    "fig03": fig03_client_mix,
    "fig04": fig04_cache_size,
    "fig05": fig05_concurrency_effects,
    "fig13": fig13_ditto_elasticity,
    "fig14": fig14_ycsb_scaling,
    "fig15": fig15_mn_cpu_cores,
    "fig16": fig16_real_world_tput,
    "fig17": fig17_real_world_hitrate,
    "fig18": fig18_corpus_boxplot,
    "fig19": fig19_changing_workload,
    "fig20": fig20_compute_mix,
    "fig21": fig21_client_scaling,
    "fig22": fig22_memory_scaling,
    "fig23": fig23_twelve_algorithms,
    "fig24": fig24_ablation,
    "fig25": fig25_fc_cache_size,
    "tab02": tab02_workload_catalog,
    "extra-samples": extra_sample_size,
    "extra-history": extra_history_size,
    "extra-faults": extra_fault_recovery,
    "extra-elasticity-churn": extra_elasticity_churn,
    "extra-controller-failover": extra_controller_failover,
    "extra-failover-timeline": extra_failover_timeline,
}


def _parse(argv):
    parser = argparse.ArgumentParser(
        prog="repro.bench.run_all", add_help=True, allow_abbrev=False
    )
    parser.add_argument("names", nargs="*", help="experiments to run (default: all)")
    parser.add_argument(
        "-j",
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="fan experiments out over N worker processes (with result cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="with -j: always simulate, never read or write cached results",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default .bench_cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete all cached results and exit",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const=".traces",
        default=None,
        metavar="DIR",
        help="capture a Chrome trace + metrics snapshot per experiment "
        "into DIR (default .traces); open *.trace.json in chrome://tracing",
    )
    return parser.parse_args(argv)


def _run_serial(names, trace_dir=None) -> None:
    for name in names:
        started = time.time()
        print(f"\n########## {name} ##########")
        if trace_dir is None:
            EXPERIMENTS[name].main()
        else:
            obs = activate(Observability())
            try:
                EXPERIMENTS[name].main()
            finally:
                deactivate()
            os.makedirs(trace_dir, exist_ok=True)
            trace_path = os.path.join(trace_dir, f"{name}.trace.json")
            obs.export_chrome(trace_path)
            with open(
                os.path.join(trace_dir, f"{name}.metrics.json"),
                "w", encoding="utf-8",
            ) as fh:
                json.dump(obs.snapshot(), fh, indent=2, sort_keys=True)
            print(f"[trace: {trace_path}]")
        print(f"[{name} done in {time.time() - started:.1f}s]")


def _run_parallel(names, workers, use_cache, cache_dir, trace_dir=None) -> None:
    jobs = [
        ExperimentJob(
            experiment=name,
            fn=f"{EXPERIMENTS[name].__name__}:main",
        )
        for name in names
    ]
    runner = ParallelRunner(
        workers=workers, cache_dir=cache_dir, use_cache=use_cache,
        trace_dir=trace_dir,
    )
    outcomes = runner.run(jobs)
    for outcome in outcomes:
        print(f"\n########## {outcome.job.experiment} ##########")
        # The experiment's own table output, replayed in submission order.
        sys.stdout.write(outcome.stdout)
        if outcome.trace_file:
            print(f"[trace: {outcome.trace_file}]")
        if outcome.cached:
            print(f"[{outcome.job.experiment}: cached]")
        else:
            print(
                f"[{outcome.job.experiment}: simulated in {outcome.elapsed_s:.1f}s]"
            )
    s = runner.summary()
    print(
        f"\nparallel runner: {s['jobs']} jobs "
        f"({s['simulated']} simulated, {s['cached']} cached) "
        f"on {s['workers']} workers in {s['elapsed_s']}s"
    )


def main(argv=None) -> int:
    args = _parse(argv if argv is not None else sys.argv[1:])
    if args.clear_cache:
        removed = ResultCache(args.cache_dir).clear()
        print(f"cleared {removed} cached results")
        return 0
    if args.parallel is not None and args.parallel < 1:
        print("error: -j/--parallel requires a positive worker count")
        return 2
    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(EXPERIMENTS)}")
        return 2
    print(f"scale: {scale_name()}")
    if args.parallel is not None:
        _run_parallel(
            names,
            workers=args.parallel,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            trace_dir=args.trace,
        )
    else:
        _run_serial(names, trace_dir=args.trace)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
