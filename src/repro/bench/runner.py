"""Timed-workload harness shared by every throughput/latency experiment.

All systems expose the same client surface (``get``/``set`` generators), so a
single closed-loop driver measures them all:

- :class:`Feed` — a cyclic per-client request source (YCSB stream or a trace
  shard; the paper has clients iteratively replay their shard).
- :class:`Harness` — spawns one driver process per client, applies the
  configurable miss penalty (500 µs in the paper: the cost of fetching a
  missed object from distributed storage before Set-ing it back), and
  measures throughput and latency over explicit windows so warmup is
  excluded and elasticity timelines can be sampled phase by phase.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.client import CacheOperationError
from ..obs.observer import Observability
from ..obs.observer import current as obs_current
from ..sim import Engine, LatencyStats, ThroughputSeries, Timeout

_KEY = struct.Struct("<Q")

READ, UPDATE, INSERT = 0, 1, 2
_OP_CODES = {"read": READ, "update": UPDATE, "insert": INSERT}


def pack_key(key_id: int) -> bytes:
    """8-byte wire key for an integer key id."""
    return _KEY.pack(key_id & 0xFFFFFFFFFFFFFFFF)


def make_value(size: int) -> bytes:
    return b"v" * size


class Feed:
    """Cyclic (op, key) source for one client."""

    def __init__(self, ops: np.ndarray, keys: np.ndarray):
        if len(ops) != len(keys) or len(ops) == 0:
            raise ValueError("ops and keys must be equal-length and non-empty")
        self._ops = np.asarray(ops, dtype=np.int8)
        self._keys = np.asarray(keys, dtype=np.int64)
        self._pos = 0

    @classmethod
    def from_requests(cls, requests: Iterable[Tuple[str, int]]) -> "Feed":
        pairs = list(requests)
        ops = np.fromiter((_OP_CODES[op] for op, _ in pairs), dtype=np.int8)
        keys = np.fromiter((key for _, key in pairs), dtype=np.int64)
        return cls(ops, keys)

    @classmethod
    def reads(cls, keys: Sequence[int]) -> "Feed":
        """A read-only feed (trace replay; misses are filled by the driver)."""
        arr = np.asarray(keys, dtype=np.int64)
        return cls(np.zeros(len(arr), dtype=np.int8), arr)

    def next(self) -> Tuple[int, int]:
        op = self._ops[self._pos]
        key = self._keys[self._pos]
        self._pos += 1
        if self._pos == len(self._ops):
            self._pos = 0
        return int(op), int(key)


@dataclass
class MeasureResult:
    """Metrics from one measurement window."""

    ops: int
    duration_us: float
    get_latency: LatencyStats
    set_latency: LatencyStats
    hits: int = 0
    misses: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_mops(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return self.ops / self.duration_us

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class Harness:
    """Closed-loop driver for any set of clients on one engine."""

    def __init__(
        self,
        engine: Engine,
        value_size: int = 232,
        miss_penalty_us: float = 0.0,
        series_bucket_us: float = 100_000.0,
        tolerate_failures: bool = False,
        obs: Optional[Observability] = None,
    ):
        """``tolerate_failures`` keeps a driver alive when an operation
        fails permanently (:class:`CacheOperationError`) — required for
        chaos runs, where a retry-exhausted Set is a data point, not a
        reason to unwind the engine."""
        self.engine = engine
        self.value = make_value(value_size)
        self.miss_penalty_us = miss_penalty_us
        self.series = ThroughputSeries(series_bucket_us)
        self.tolerate_failures = tolerate_failures
        # Observability (repro.obs): picked up from the runtime so existing
        # experiments need no signature changes; None stays fully inert.
        self.obs = obs if obs is not None else obs_current()
        self.failed_ops = 0
        self._flags: List[dict] = []
        self._measuring = False
        self._ops = 0
        self._get_lat = LatencyStats()
        self._set_lat = LatencyStats()
        self._hits0 = 0
        self._miss0 = 0
        self._clients: List[object] = []

    # -- client management ------------------------------------------------

    def launch(self, client, feed: Feed) -> dict:
        """Start a closed-loop driver for ``client``; returns a stop handle.

        The handle records the driver process and the client so fault
        injection can kill a specific client's loop mid-operation.
        """
        flag = {"stop": False, "client": client}
        self._flags.append(flag)
        self._clients.append(client)
        flag["process"] = self.engine.spawn(
            self._loop(client, feed, flag), name="driver"
        )
        return flag

    def launch_all(self, clients: Sequence, feeds: Sequence[Feed]) -> List[dict]:
        return [self.launch(c, f) for c, f in zip(clients, feeds)]

    @staticmethod
    def stop(flag: dict) -> None:
        flag["stop"] = True

    def stop_all(self) -> None:
        for flag in self._flags:
            flag["stop"] = True
        self._flags.clear()
        self._clients.clear()

    # -- the driver loop ------------------------------------------------------

    def _loop(self, client, feed: Feed, flag: dict):
        engine = self.engine
        value = self.value
        while not flag["stop"]:
            op, key_id = feed.next()
            key = pack_key(key_id)
            start = engine.now
            try:
                if op == READ:
                    result = yield from client.get(key)
                    if result is None:
                        if self.miss_penalty_us:
                            # Fetch from the backing store, then fill the cache.
                            yield Timeout(self.miss_penalty_us)
                        yield from client.set(key, value)
                    if self._measuring:
                        self._get_lat.record(engine.now - start)
                else:
                    yield from client.set(key, value)
                    if self._measuring:
                        self._set_lat.record(engine.now - start)
            except CacheOperationError:
                if not self.tolerate_failures:
                    raise
                self.failed_ops += 1
                continue
            if self._measuring:
                self._ops += 1
                self.series.record(engine.now)

    # -- fault injection ---------------------------------------------------

    def schedule_crashes(self, cluster, crashes, offset_us: float = 0.0) -> None:
        """Arm :class:`~repro.sim.faults.ClientCrash` events.

        Each crash kills the victim's driver process at the given simulated
        instant — mid-operation, at whatever yield boundary it happens to be
        parked on — and then notifies the cluster so recovery can run.
        ``offset_us`` shifts the (plan-relative) crash times, typically by
        ``engine.now`` after warmup.
        """
        for crash in crashes:
            self.engine.spawn(
                self._crash_watcher(cluster, crash, offset_us),
                name=f"crash_watcher_{crash.client_index}",
            )

    def _crash_watcher(self, cluster, crash, offset_us: float):
        at = offset_us + crash.at_us
        delay = at - self.engine.now
        if delay > 0:
            yield Timeout(delay)
        victim = cluster.clients[crash.client_index]
        for flag in self._flags:
            if flag.get("client") is victim:
                flag["stop"] = True
                process = flag.get("process")
                if process is not None:
                    process.kill()
        cluster.crash_client(crash.client_index)

    # -- measurement windows -----------------------------------------------------

    def _hit_totals(self) -> Tuple[int, int]:
        hits = sum(getattr(c, "hits", 0) for c in self._clients)
        misses = sum(getattr(c, "misses", 0) for c in self._clients)
        return hits, misses

    def _annotate_window(self, name: str, start: float) -> None:
        """Mark a completed run window as a lane-0 span on the trace."""
        tracer = self.obs.tracer_for(self.engine)
        if tracer is not None:
            tracer.complete_at(
                name, "harness", start, self.engine.now - start, tid=0
            )

    def warm(self, duration_us: float) -> None:
        """Run without recording (cache warmup)."""
        start = self.engine.now
        if self.obs is not None:
            self.obs.schedule_window_samples(
                self.engine, start, start + duration_us
            )
        self.engine.run(until=start + duration_us)
        if self.obs is not None:
            self._annotate_window("warm", start)

    def measure(self, duration_us: float) -> MeasureResult:
        """Record one window and return its metrics."""
        self._ops = 0
        self._get_lat = LatencyStats()
        self._set_lat = LatencyStats()
        self._hits0, self._miss0 = self._hit_totals()
        self._measuring = True
        start = self.engine.now
        if self.obs is not None:
            self.obs.schedule_window_samples(
                self.engine, start, start + duration_us
            )
        self.engine.run(until=start + duration_us)
        self._measuring = False
        if self.obs is not None:
            self._annotate_window("measure", start)
        hits, misses = self._hit_totals()
        return MeasureResult(
            ops=self._ops,
            duration_us=self.engine.now - start,
            get_latency=self._get_lat,
            set_latency=self._set_lat,
            hits=hits - self._hits0,
            misses=misses - self._miss0,
        )


def preload(engine: Engine, clients: Sequence, keys: Sequence[int], value_size: int = 232) -> None:
    """Load ``keys`` into the cache, sharded across clients (untimed setup)."""
    value = make_value(value_size)
    shards = np.array_split(np.asarray(list(keys), dtype=np.int64), len(clients))

    def loader(client, shard):
        for key_id in shard:
            yield from client.set(pack_key(int(key_id)), value)

    processes = [
        engine.spawn(loader(c, s), name="preload")
        for c, s in zip(clients, shards)
        if len(s)
    ]
    engine.run()
    unfinished = [p for p in processes if not p.finished]
    if unfinished:
        raise RuntimeError("preload did not complete")
