"""Experiment sizing: quick (default) vs full paper-scale runs.

Set ``REPRO_SCALE=full`` to run paper-sized request counts; the default
``quick`` scale preserves every figure's *shape* in seconds, not hours.
"""

from __future__ import annotations

import os


def scale_name() -> str:
    name = os.environ.get("REPRO_SCALE", "quick").lower()
    if name not in ("quick", "full"):
        raise ValueError(f"REPRO_SCALE must be 'quick' or 'full', got {name!r}")
    return name


def scaled(quick, full):
    """Pick the parameter for the active scale."""
    return full if scale_name() == "full" else quick
