"""Uniform builders + trace-run helpers for the per-figure experiments."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..baselines import CliqueMapCluster, ShardLruCluster
from ..core import DittoCluster, DittoConfig
from ..workloads import shard_trace
from .runner import Feed, Harness, MeasureResult, preload


def build_ditto(
    capacity_objects: int,
    num_clients: int,
    policies: Sequence[str] = ("lru", "lfu"),
    object_bytes: int = 256,
    seed: int = 7,
    max_capacity_objects: Optional[int] = None,
    num_memory_nodes: int = 1,
    faults=None,
    segment_bytes: int = 256 * 1024,
    controller_replicas: int = 0,
    **config_kwargs,
) -> DittoCluster:
    config = DittoConfig(policies=tuple(policies), **config_kwargs)
    return DittoCluster(
        capacity_objects=capacity_objects,
        object_bytes=object_bytes,
        num_clients=num_clients,
        config=config,
        seed=seed,
        segment_bytes=segment_bytes,
        max_capacity_objects=max_capacity_objects,
        num_memory_nodes=num_memory_nodes,
        faults=faults,
        controller_replicas=controller_replicas,
    )


def build_cliquemap(
    policy: str,
    capacity_objects: int,
    num_clients: int,
    object_bytes: int = 256,
    server_cores: int = 1,
) -> CliqueMapCluster:
    return CliqueMapCluster(
        policy=policy,
        capacity_objects=capacity_objects,
        object_bytes=object_bytes,
        num_clients=num_clients,
        server_cores=server_cores,
    )


def build_shard_lru(
    capacity_objects: int,
    num_clients: int,
    shards: int = 32,
    backoff_us: float = 5.0,
    object_bytes: int = 256,
) -> ShardLruCluster:
    return ShardLruCluster(
        capacity_objects=capacity_objects,
        object_bytes=object_bytes,
        num_clients=num_clients,
        shards=shards,
        backoff_us=backoff_us,
        seed=7,
    )


def trace_feeds(trace: np.ndarray, n_clients: int) -> list:
    """Per-client read feeds: each client iteratively replays its shard."""
    return [Feed.reads(shard) for shard in shard_trace(trace, n_clients)]


def run_trace_workload(
    cluster,
    clients,
    trace: np.ndarray,
    value_size: int = 232,
    miss_penalty_us: float = 0.0,
    warm_us: float = 20_000.0,
    window_us: float = 60_000.0,
) -> MeasureResult:
    """The §5.4 protocol: warm the cache, then measure clients replaying
    their trace shards with the configured miss penalty."""
    harness = Harness(
        cluster.engine, value_size=value_size, miss_penalty_us=miss_penalty_us
    )
    harness.launch_all(clients, trace_feeds(trace, len(clients)))
    harness.warm(warm_us)
    result = harness.measure(window_us)
    harness.stop_all()
    return result


def run_ycsb_workload(
    cluster,
    clients,
    workload: str,
    n_keys: int,
    value_size: int = 232,
    requests_per_client: int = 20_000,
    warm_us: float = 5_000.0,
    window_us: float = 20_000.0,
    load: bool = True,
    seed: int = 100,
) -> MeasureResult:
    """The §5.3 protocol: preload all keys, then measure YCSB request mixes
    (no cache misses; Sets are updates)."""
    from ..workloads import make_ycsb

    if load:
        preload(cluster.engine, clients, range(n_keys), value_size=value_size)
    harness = Harness(cluster.engine, value_size=value_size)
    feeds = [
        Feed.from_requests(
            make_ycsb(
                workload, n_keys=n_keys, seed=seed + i, client_id=i
            ).requests(requests_per_client)
        )
        for i in range(len(clients))
    ]
    harness.launch_all(clients, feeds)
    harness.warm(warm_us)
    result = harness.measure(window_us)
    harness.stop_all()
    return result
