"""File-queue worker: claim jobs from a shared directory and execute them.

Run one (or many, on any host that can see the queue directory) against the
root a :class:`~repro.bench.dispatch.FileQueueDispatcher` is enqueuing into::

    python -m repro.bench.worker /mnt/shared/queue
    ssh host2 python -m repro.bench.worker /mnt/shared/queue

A worker loops: pick a file from ``<root>/jobs/``, claim it by renaming it
into ``<root>/claims/`` (rename is atomic — exactly one worker wins a given
job), run :func:`repro.bench.parallel.execute_job` on the spec, and write the
raw result into ``<root>/results/``.  Failures are reported as result files
carrying an ``error`` key so the dispatcher can surface them instead of
timing out.  ``--idle-exit`` makes the worker quit after a quiet period,
which is how tests and one-shot SSH invocations avoid a daemon.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import time
import traceback
import uuid
from pathlib import Path
from typing import List, Optional


def _worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _write_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(f".tmp-{uuid.uuid4().hex[:8]}")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
    os.replace(tmp, path)


def run_one(root: Path, worker: str) -> bool:
    """Claim and execute a single job; False when the queue is empty."""
    from .parallel import execute_job

    jobs_dir = root / "jobs"
    claims_dir = root / "claims"
    results_dir = root / "results"
    try:
        candidates: List[str] = sorted(
            name for name in os.listdir(jobs_dir)
            if name.endswith(".json")
        )
    except FileNotFoundError:
        return False
    for name in candidates:
        claim = claims_dir / f"{name[:-5]}.{worker}.json"
        try:
            os.rename(jobs_dir / name, claim)
        except (FileNotFoundError, OSError):
            continue  # another worker won the rename; try the next job
        job_id = name[:-5]
        result_path = results_dir / f"{job_id}.json"
        try:
            with open(claim, "r", encoding="utf-8") as fh:
                spec = json.load(fh)
            started = time.perf_counter()
            raw = execute_job(spec)
            _write_atomic(result_path, {
                "raw": raw,
                "elapsed_s": time.perf_counter() - started,
                "worker": worker,
            })
        except Exception as exc:  # report, don't crash the worker loop
            _write_atomic(result_path, {
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
                "worker": worker,
            })
        finally:
            claim.unlink(missing_ok=True)
        return True
    return False


def serve(
    root: Path,
    poll_s: float = 0.2,
    idle_exit_s: Optional[float] = None,
    max_jobs: Optional[int] = None,
) -> int:
    """Worker main loop; returns the number of jobs executed."""
    worker = _worker_id()
    for d in ("jobs", "claims", "results"):
        (root / d).mkdir(parents=True, exist_ok=True)
    done = 0
    last_work = time.monotonic()
    while max_jobs is None or done < max_jobs:
        if run_one(root, worker):
            done += 1
            last_work = time.monotonic()
            continue
        if idle_exit_s is not None and time.monotonic() - last_work > idle_exit_s:
            break
        time.sleep(poll_s)
    return done


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.worker",
        description="Execute jobs from a shared-directory benchmark queue.",
    )
    parser.add_argument("root", help="queue directory (same root as the dispatcher)")
    parser.add_argument("--poll", type=float, default=0.2,
                        help="seconds between empty-queue checks (default 0.2)")
    parser.add_argument("--idle-exit", type=float, default=None, metavar="S",
                        help="exit after S seconds with no work (default: run forever)")
    parser.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="exit after executing N jobs")
    args = parser.parse_args(argv)
    done = serve(
        Path(args.root),
        poll_s=args.poll,
        idle_exit_s=args.idle_exit,
        max_jobs=args.max_jobs,
    )
    print(f"worker {_worker_id()} executed {done} job(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
