"""Fast hit-rate simulators sharing policy semantics with the DM client."""

from .exact import (
    BeladyCache,
    ExactCacheBase,
    ExactLFUCache,
    ExactLRUCache,
    RandomCache,
)
from .simulator import SampledAdaptiveCache

__all__ = [
    "BeladyCache",
    "ExactCacheBase",
    "ExactLFUCache",
    "ExactLRUCache",
    "RandomCache",
    "SampledAdaptiveCache",
]
