"""Exact (non-sampled) cache models: precise LRU, O(1) LFU, and random.

CM-LRU and CM-LFU — the CliqueMap baselines — execute *precise* caching
algorithms with server-side data structures; these classes are their hit-rate
models.  ``RandomCache`` is the normalization baseline of Figure 18.
"""

from __future__ import annotations

import random
from collections import OrderedDict, defaultdict
from typing import Dict, List, Optional


class ExactCacheBase:
    """Shared counters + interface of the exact cache models."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def resize(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity

    def access(self, key, size: int = 1, cost: float = 1.0) -> bool:
        raise NotImplementedError


class ExactLRUCache(ExactCacheBase):
    """Textbook LRU with a doubly linked list (an OrderedDict)."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._store: "OrderedDict[object, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key) -> bool:
        return key in self._store

    def access(self, key, size: int = 1, cost: float = 1.0) -> bool:
        if key in self._store:
            self._store.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self.insert(key)
        return False

    def touch(self, key) -> bool:
        """Bump recency without hit/miss accounting (CliqueMap merge path)."""
        if key in self._store:
            self._store.move_to_end(key)
            return True
        return False

    def insert(self, key) -> list:
        """Admit ``key`` (no counters); returns the evicted keys."""
        evicted = []
        if key in self._store:
            self._store.move_to_end(key)
            return evicted
        while len(self._store) >= self.capacity:
            victim, _ = self._store.popitem(last=False)
            evicted.append(victim)
            self.evictions += 1
        self._store[key] = None
        return evicted


class ExactLFUCache(ExactCacheBase):
    """O(1) LFU: per-frequency recency buckets with a min-frequency cursor.

    Ties within a frequency break LRU-first, the common implementation.
    """

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._freq: Dict[object, int] = {}
        self._buckets: Dict[int, "OrderedDict[object, None]"] = defaultdict(
            OrderedDict
        )
        self._min_freq = 0

    def __len__(self) -> int:
        return len(self._freq)

    def __contains__(self, key) -> bool:
        return key in self._freq

    def _bump(self, key) -> None:
        freq = self._freq[key]
        del self._buckets[freq][key]
        if not self._buckets[freq]:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[key] = freq + 1
        self._buckets[freq + 1][key] = None

    def access(self, key, size: int = 1, cost: float = 1.0) -> bool:
        if key in self._freq:
            self._bump(key)
            self.hits += 1
            return True
        self.misses += 1
        self.insert(key)
        return False

    def touch(self, key) -> bool:
        """Bump frequency without hit/miss accounting (CliqueMap merge path)."""
        if key in self._freq:
            self._bump(key)
            return True
        return False

    def insert(self, key) -> list:
        """Admit ``key`` (no counters); returns the evicted keys."""
        evicted = []
        if key in self._freq:
            self._bump(key)
            return evicted
        while len(self._freq) >= self.capacity:
            victim, _ = self._buckets[self._min_freq].popitem(last=False)
            if not self._buckets[self._min_freq]:
                del self._buckets[self._min_freq]
            del self._freq[victim]
            evicted.append(victim)
            self.evictions += 1
        self._freq[key] = 1
        self._buckets[1][key] = None
        self._min_freq = 1
        return evicted


class RandomCache(ExactCacheBase):
    """Random eviction: the hit-rate normalization baseline of Figure 18."""

    def __init__(self, capacity: int, seed: int = 0):
        super().__init__(capacity)
        self._present: Dict[object, int] = {}
        self._keys: List[object] = []
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return len(self._present)

    def __contains__(self, key) -> bool:
        return key in self._present

    def access(self, key, size: int = 1, cost: float = 1.0) -> bool:
        if key in self._present:
            self.hits += 1
            return True
        self.misses += 1
        while len(self._keys) >= self.capacity:
            pos = self._rng.randrange(len(self._keys))
            victim = self._keys[pos]
            last = self._keys.pop()
            if last is not victim:
                self._keys[pos] = last
                self._present[last] = pos
            del self._present[victim]
            self.evictions += 1
        self._present[key] = len(self._keys)
        self._keys.append(key)
        return False


class BeladyCache(ExactCacheBase):
    """Belady's MIN (clairvoyant) — the upper bound, for analysis examples.

    Requires the full trace up front to precompute next-use times.
    """

    def __init__(self, capacity: int, trace):
        super().__init__(capacity)
        self._trace = list(trace)
        self._next_use: List[int] = [0] * len(self._trace)
        last_seen: Dict[object, int] = {}
        infinity = len(self._trace) + 1
        for i in range(len(self._trace) - 1, -1, -1):
            key = self._trace[i]
            self._next_use[i] = last_seen.get(key, infinity)
            last_seen[key] = i
        self._pos = 0
        self._store: Dict[object, int] = {}  # key -> next use index

    def run(self) -> float:
        """Replay the whole trace; returns the hit rate."""
        for pos, key in enumerate(self._trace):
            next_use = self._next_use[pos]
            if key in self._store:
                self.hits += 1
            else:
                self.misses += 1
                if len(self._store) >= self.capacity:
                    victim = max(self._store, key=self._store.get)
                    del self._store[victim]
                    self.evictions += 1
            self._store[key] = next_use
        return self.hit_rate()

    def access(self, key, size: int = 1, cost: float = 1.0) -> bool:
        raise NotImplementedError("BeladyCache replays via run()")
