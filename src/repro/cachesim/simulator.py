"""Fast functional simulator of Ditto's caching semantics.

Hit-rate experiments (paper Figs. 3-5, 17-22) replay millions of requests;
running them through the byte-level DM machinery would be needlessly slow.
This simulator reproduces exactly the *algorithmic* behaviour — sampled
eviction with priority functions, the embedded eviction history with logical
FIFO expiry, and regret-minimization over expert weights — while skipping the
network.  It reuses the very same policy classes as the DM client, so the two
tiers cannot drift apart semantically.

Time is a logical access counter, matching how trace-driven cache analysis is
usually done.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.adaptive import ExpertWeights, bitmap_of
from ..core.history import HISTORY_WRAP, history_age, is_expired
from ..core.policies import CachePolicy, Metadata, make_policy


class SampledAdaptiveCache:
    """Ditto's cache semantics at trace-replay speed.

    With one policy this is Ditto-LRU/Ditto-LFU/...: sampled eviction under a
    fixed priority function.  With several policies the adaptive machinery
    (history + regret minimization) selects among them, as in the full
    system.
    """

    def __init__(
        self,
        capacity: int,
        policies: Sequence[str] = ("lru", "lfu"),
        sample_size: int = 5,
        history_size: Optional[int] = None,
        learning_rate: float = 0.1,
        seed: int = 0,
        policy_objects: Optional[Sequence[CachePolicy]] = None,
        selection: str = "proportional",
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.sample_size = sample_size
        self.history_size = history_size if history_size is not None else capacity
        self.rng = random.Random(seed)
        if policy_objects is not None:
            self.policies: List[CachePolicy] = list(policy_objects)
        else:
            self.policies = [make_policy(name) for name in policies]
        self.adaptive = len(self.policies) > 1
        self.weights = ExpertWeights(
            num_experts=len(self.policies),
            history_size=self.history_size,
            learning_rate=learning_rate,
            batch_size=1 << 30,  # local-only updates; no RPC in this tier
            rng=self.rng,
            selection=selection,
        )
        self._store: Dict[object, Metadata] = {}
        self._keys: List[object] = []
        self._key_pos: Dict[object, int] = {}
        # Eviction history: key -> (history_id, expert_bitmap), plus a FIFO
        # of (history_id, key) for lazy pruning of expired entries.
        self._history: Dict[object, Tuple[int, int]] = {}
        self._history_fifo: deque = deque()
        self._history_counter = 0
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.regrets = 0
        self.evictions = 0

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key) -> bool:
        return key in self._store

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _add_key(self, key) -> None:
        self._key_pos[key] = len(self._keys)
        self._keys.append(key)

    def _remove_key(self, key) -> None:
        pos = self._key_pos.pop(key)
        last = self._keys.pop()
        if last is not key:
            self._keys[pos] = last
            self._key_pos[last] = pos

    def resize(self, capacity: int) -> None:
        """Elastic memory change; over-full caches shrink on later inserts."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity

    @property
    def expert_weights(self) -> List[float]:
        return list(self.weights.weights)

    # -- the access path -----------------------------------------------------

    def access(self, key, size: int = 1, cost: float = 1.0) -> bool:
        """Process one request; inserts on miss.  Returns True on a hit."""
        self._tick += 1
        now = self._tick
        meta = self._store.get(key)
        if meta is not None:
            meta.freq += 1
            for policy in self.policies:
                policy.update(meta, now)
            meta.last_ts = now
            self.hits += 1
            return True
        self.misses += 1
        self._collect_regret(key)
        self._insert(key, size, cost, now)
        return False

    def lookup(self, key) -> bool:
        """A Get that does *not* insert on miss (for read-only probes)."""
        self._tick += 1
        meta = self._store.get(key)
        if meta is None:
            self.misses += 1
            self._collect_regret(key)
            return False
        meta.freq += 1
        for policy in self.policies:
            policy.update(meta, self._tick)
        meta.last_ts = self._tick
        self.hits += 1
        return True

    def insert(self, key, size: int = 1, cost: float = 1.0) -> None:
        """Explicit insert (the Set after a miss-penalty fetch)."""
        self._tick += 1
        if key not in self._store:
            self._insert(key, size, cost, self._tick)

    def _insert(self, key, size: int, cost: float, now: int) -> None:
        while len(self._store) >= self.capacity:
            self._evict(now)
        meta = Metadata(
            size=size, insert_ts=now, last_ts=now, freq=1, cost=cost
        )
        for policy in self.policies:
            policy.on_insert(meta, now)
        self._store[key] = meta
        self._add_key(key)

    # -- eviction + history ---------------------------------------------------

    def _sample(self) -> List[object]:
        n = len(self._keys)
        k = min(self.sample_size, n)
        if k == n:
            return list(self._keys)
        picks = self.rng.sample(range(n), k)
        return [self._keys[i] for i in picks]

    def _evict(self, now: int) -> None:
        sampled = self._sample()
        candidates = []
        for policy in self.policies:
            best = min(
                sampled, key=lambda k: policy.priority(self._store[k], now)
            )
            candidates.append(best)
        choice = self.weights.choose() if self.adaptive else 0
        victim = candidates[choice]
        bitmap = bitmap_of(candidates, victim)
        meta = self._store.pop(victim)
        self._remove_key(victim)
        for policy in self.policies:
            policy.on_evict(meta, now)
        self._record_history(victim, bitmap)
        self.evictions += 1

    def _record_history(self, key, bitmap: int) -> None:
        history_id = self._history_counter % HISTORY_WRAP
        self._history_counter += 1
        self._history[key] = (history_id, bitmap)
        self._history_fifo.append((history_id, key))
        # Lazy pruning keeps the dict bounded at ~history_size entries.
        while self._history_fifo and is_expired(
            self._history_counter % HISTORY_WRAP,
            self._history_fifo[0][0],
            self.history_size,
        ):
            old_id, old_key = self._history_fifo.popleft()
            if self._history.get(old_key, (None, None))[0] == old_id:
                del self._history[old_key]

    def _collect_regret(self, key) -> None:
        if not self.adaptive:
            return
        entry = self._history.get(key)
        if entry is None:
            return
        history_id, bitmap = entry
        counter = self._history_counter % HISTORY_WRAP
        if is_expired(counter, history_id, self.history_size):
            return
        self.regrets += 1
        self.weights.apply_regret(bitmap, history_age(counter, history_id))
