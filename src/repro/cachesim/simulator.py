"""Fast functional simulator of Ditto's caching semantics.

Hit-rate experiments (paper Figs. 3-5, 17-22) replay millions of requests;
running them through the byte-level DM machinery would be needlessly slow.
This simulator reproduces exactly the *algorithmic* behaviour — sampled
eviction with priority functions, the embedded eviction history with logical
FIFO expiry, and regret-minimization over expert weights — while skipping the
network.  It reuses the very same policy classes as the DM client, so the two
tiers cannot drift apart semantically.

Time is a logical access counter, matching how trace-driven cache analysis is
usually done.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.adaptive import ExpertWeights, bitmap_of
from ..core.policies import CachePolicy, Metadata, make_policy
from . import vectorized


class SampledAdaptiveCache:
    """Ditto's cache semantics at trace-replay speed.

    With one policy this is Ditto-LRU/Ditto-LFU/...: sampled eviction under a
    fixed priority function.  With several policies the adaptive machinery
    (history + regret minimization) selects among them, as in the full
    system.
    """

    def __init__(
        self,
        capacity: int,
        policies: Sequence[str] = ("lru", "lfu"),
        sample_size: int = 5,
        history_size: Optional[int] = None,
        learning_rate: float = 0.1,
        seed: int = 0,
        policy_objects: Optional[Sequence[CachePolicy]] = None,
        selection: str = "proportional",
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.sample_size = sample_size
        self.history_size = history_size if history_size is not None else capacity
        self.rng = random.Random(seed)
        if policy_objects is not None:
            self.policies: List[CachePolicy] = list(policy_objects)
        else:
            self.policies = [make_policy(name) for name in policies]
        self.adaptive = len(self.policies) > 1
        self.weights = ExpertWeights(
            num_experts=len(self.policies),
            history_size=self.history_size,
            learning_rate=learning_rate,
            batch_size=1 << 30,  # local-only updates; no RPC in this tier
            rng=self.rng,
            selection=selection,
        )
        self._store: Dict[object, Metadata] = {}
        self._keys: List[object] = []
        self._key_pos: Dict[object, int] = {}
        # Hit-path fast list: bound methods of policies whose ``update`` is
        # overridden.  LRU/LFU/MRU/FIFO/SIZE/HYPERBOLIC inherit the no-op
        # base update, so the common adaptive (lru, lfu) configuration does
        # zero policy calls per hit.
        self._live_updates: Tuple = tuple(
            p.update
            for p in self.policies
            if type(p).update is not CachePolicy.update
        )
        # Same idea for the insert path.  The base on_insert just delegates
        # to update, so a policy overriding neither contributes nothing.
        self._live_on_inserts: Tuple = tuple(
            p.on_insert
            for p in self.policies
            if type(p).on_insert is not CachePolicy.on_insert
            or type(p).update is not CachePolicy.update
        )
        self._live_on_evicts: Tuple = tuple(
            p.on_evict
            for p in self.policies
            if type(p).on_evict is not CachePolicy.on_evict
        )
        # Eviction history: key -> (history_id << num_experts) | expert_bitmap
        # packed into one int (no tuple allocation per eviction), plus a FIFO
        # of keys for lazy pruning.  FIFO entries carry consecutive history
        # ids by construction, so the id of the oldest entry is a single
        # counter (``_history_base``) rather than stored per entry.  Unlike
        # the DM tier's 48-bit on-wire counters, ids here are plain Python
        # ints and never wrap.
        self._history: Dict[object, int] = {}
        self._history_fifo: deque = deque()
        self._history_counter = 0
        self._history_base = 0
        self._hist_shift = len(self.policies)
        self._hist_mask = (1 << self._hist_shift) - 1
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.regrets = 0
        self.evictions = 0

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key) -> bool:
        return key in self._store

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _add_key(self, key) -> None:
        self._key_pos[key] = len(self._keys)
        self._keys.append(key)

    def _remove_key(self, key) -> None:
        pos = self._key_pos.pop(key)
        last = self._keys.pop()
        if last is not key:
            self._keys[pos] = last
            self._key_pos[last] = pos

    def resize(self, capacity: int) -> None:
        """Elastic memory change; over-full caches shrink on later inserts."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity

    @property
    def expert_weights(self) -> List[float]:
        return list(self.weights.weights)

    # -- the access path -----------------------------------------------------

    def access(self, key, size: int = 1, cost: float = 1.0) -> bool:
        """Process one request; inserts on miss.  Returns True on a hit."""
        self._tick += 1
        now = self._tick
        meta = self._store.get(key)
        if meta is not None:
            meta.freq += 1
            for update in self._live_updates:
                update(meta, now)
            meta.last_ts = now
            self.hits += 1
            return True
        self.misses += 1
        self._collect_regret(key)
        self._insert(key, size, cost, now)
        return False

    def access_many(self, keys) -> int:
        """Batched :meth:`access` over a request array; returns hits added.

        Large integer numpy traces take the vectorized replay
        (:mod:`repro.cachesim.vectorized`) when this cache's configuration
        is eligible — columnar metadata, block-drawn rng, inlined regret
        math — which is byte-identical to the scalar loop below: same rng
        draws, same eviction/history/regret sequence, bit-for-bit equal
        metrics and metadata.  ``REPRO_VECTORIZE=0`` forces the scalar loop.

        The scalar path decodes the key array once (``tolist`` — no
        per-element ``int()`` boxing) and keeps the hit path free of
        instance-attribute churn by binding everything hot into locals.
        State transitions are identical to calling ``access`` in a loop.
        """
        if isinstance(keys, np.ndarray):
            if keys.size >= vectorized.MIN_BATCH and vectorized.eligible(self, keys):
                return vectorized.replay(self, keys)
            seq = keys.tolist()
        else:
            seq = [int(k) for k in keys]
        store_get = self._store.get
        updates = self._live_updates
        tick = self._tick
        hits = 0
        for key in seq:
            tick += 1
            meta = store_get(key)
            if meta is not None:
                meta.freq += 1
                if updates:
                    for update in updates:
                        update(meta, tick)
                meta.last_ts = tick
                hits += 1
            else:
                self._tick = tick
                self.misses += 1
                self._collect_regret(key)
                self._insert(key, 1, 1.0, tick)
        self._tick = tick
        self.hits += hits
        return hits

    def lookup(self, key) -> bool:
        """A Get that does *not* insert on miss (for read-only probes)."""
        self._tick += 1
        meta = self._store.get(key)
        if meta is None:
            self.misses += 1
            self._collect_regret(key)
            return False
        meta.freq += 1
        for update in self._live_updates:
            update(meta, self._tick)
        meta.last_ts = self._tick
        self.hits += 1
        return True

    def insert(self, key, size: int = 1, cost: float = 1.0) -> None:
        """Explicit insert (the Set after a miss-penalty fetch)."""
        self._tick += 1
        if key not in self._store:
            self._insert(key, size, cost, self._tick)

    def _insert(self, key, size: int, cost: float, now: int) -> None:
        while len(self._store) >= self.capacity:
            self._evict(now)
        meta = Metadata(
            size=size, insert_ts=now, last_ts=now, freq=1, cost=cost
        )
        for on_insert in self._live_on_inserts:
            on_insert(meta, now)
        self._store[key] = meta
        self._add_key(key)

    # -- eviction + history ---------------------------------------------------

    def _sample(self) -> List[object]:
        keys = self._keys
        n = len(keys)
        if n <= self.sample_size:
            return list(keys)
        # With-replacement float sampling, matching how a DM client samples
        # slots (independent draws; collisions are possible and harmless).
        # Exactly ``sample_size`` uniform draws per eviction — a *fixed*
        # draw count — which is what lets the vectorized replay pre-draw
        # random blocks and stay on the identical rng stream.
        rnd = self.rng.random
        return [keys[min(int(rnd() * n), n - 1)] for _ in range(self.sample_size)]

    def _evict(self, now: int) -> None:
        sampled = self._sample()
        store = self._store
        metas = [store[k] for k in sampled]
        candidates = []
        for policy in self.policies:
            priority = policy.priority
            # Equivalent to min(...) over the sample but with the store
            # lookups hoisted; strict < keeps the first minimum, like min().
            best_key = sampled[0]
            best_p = priority(metas[0], now)
            for i in range(1, len(metas)):
                p = priority(metas[i], now)
                if p < best_p:
                    best_p = p
                    best_key = sampled[i]
            candidates.append(best_key)
        choice = self.weights.choose() if self.adaptive else 0
        victim = candidates[choice]
        bitmap = bitmap_of(candidates, victim)
        meta = self._store.pop(victim)
        self._remove_key(victim)
        for on_evict in self._live_on_evicts:
            on_evict(meta, now)
        self._record_history(victim, bitmap)
        self.evictions += 1

    def _record_history(self, key, bitmap: int) -> None:
        # The age arithmetic of history.is_expired is inlined here (and in
        # _collect_regret): this runs once per eviction, and the trace-replay
        # tier does hundreds of thousands of evictions/sec.
        history_id = self._history_counter
        self._history_counter = counter = history_id + 1
        history = self._history
        history[key] = (history_id << self._hist_shift) | bitmap
        fifo = self._history_fifo
        fifo.append(key)
        # Lazy pruning keeps the dict bounded at ~history_size entries.
        # ``_history_base`` is the id of fifo[0]; ids are consecutive.
        size = self.history_size
        base = self._history_base
        if counter - base > size:
            shift = self._hist_shift
            while counter - base > size:
                old_key = fifo.popleft()
                entry = history.get(old_key)
                if entry is not None and entry >> shift == base:
                    del history[old_key]
                base += 1
            self._history_base = base

    def _collect_regret(self, key) -> None:
        if not self.adaptive:
            return
        entry = self._history.get(key)
        if entry is None:
            return
        age = self._history_counter - (entry >> self._hist_shift)
        if age > self.history_size:
            return
        self.regrets += 1
        self.weights.apply_regret(entry & self._hist_mask, age)
