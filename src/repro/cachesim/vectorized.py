"""Vectorized trace replay for :class:`SampledAdaptiveCache` (the "brawn").

The cachesim tier splits along the brain/brawn line (DESIGN §3.5): policy
semantics, adaptivity, and history live in readable scalar Python
(``simulator.py`` — the brain), while this module re-implements the replay
loop itself with columnar metadata and block-drawn randomness (the brawn).
The split is only sound because the two paths are **byte-identical**: same
rng draws in the same order, same eviction victims, same history/regret
sequence, same final metadata.  Identity is regression-tested (property
tests over random traces plus full-experiment comparisons), and
``REPRO_VECTORIZE=0`` forces the scalar path everywhere.

How the speed happens:

- **Columnar metadata.**  ``Metadata`` objects are exploded once into
  parallel lists (key, freq, last_ts, insert_ts) indexed by store slot, with
  a dense ``pos_of`` table mapping key → slot (-1 when absent).  The hit
  path is then two list writes; no dict hashing, no attribute access.
- **Block-drawn rng.**  The scalar path draws uniforms one at a time from
  ``random.Random`` (MT19937).  numpy's ``RandomState`` is the *same*
  generator, so the replay transplants the MT19937 state into numpy, draws
  uniforms in blocks of :data:`BLOCK` (bit-identical to sequential
  ``rng.random()`` calls), precomputes the slot index each draw would select
  at full capacity, and transplants the advanced state back at exit (the
  scalar path sees nothing).
- **Inlined adaptivity.**  For the dominant two-expert configuration the
  regret update (penalize → clip → normalize) and the proportional expert
  choice are inlined float math, verified identical to
  ``ExpertWeights.apply_regret``/``choose``.

Eligibility is conservative: integer keys in a bounded range, supported
priority functions (LRU/LFU/FIFO/MRU — priorities that are a signed
metadata column), no live policy hooks, and one expert or two experts under
proportional selection.  Anything else silently replays scalar.
"""

from __future__ import annotations

import math
import os

import numpy as np

from ..core.adaptive import WEIGHT_FLOOR
from ..core.policies import FIFO, LFU, LRU, MRU, Metadata

#: Batches below this size replay scalar: the fixed setup cost (columnar
#: encode, rng mirror, store rebuild) dominates under ~1k accesses.
MIN_BATCH = 1024

#: Keys (trace and resident) must be non-negative ints below this bound so
#: the dense key → slot table stays small.
MAX_KEY = 1 << 22

#: Uniform draws are pre-drawn in blocks of this many.
BLOCK = 8192

#: Supported priority functions as (column, sign): column 0 = freq,
#: 1 = last_ts, 2 = insert_ts; priority == sign * column, minimized.
_SUPPORTED = {LRU: (1, 1), LFU: (0, 1), FIFO: (2, 1), MRU: (1, -1)}


def eligible(cache, keys: np.ndarray) -> bool:
    """Whether ``replay`` can run this batch byte-identically."""
    if os.environ.get("REPRO_VECTORIZE") == "0":
        return False
    if keys.ndim != 1 or keys.dtype.kind not in "iu" or keys.size == 0:
        return False
    policies = cache.policies
    for policy in policies:
        if type(policy) not in _SUPPORTED:
            return False
    if cache._live_updates or cache._live_on_inserts or cache._live_on_evicts:
        return False
    if not 1 <= cache.sample_size <= 1024:
        return False
    weights = cache.weights
    if len(policies) == 2:
        # Two experts: proportional choice + regret math are inlined, and
        # the choice draws must come from the cache's own rng stream.
        if weights.selection != "proportional" or weights.num_experts != 2:
            return False
        if weights._rng is not cache.rng:
            return False
    elif len(policies) != 1:
        return False
    if cache.rng.getstate()[0] != 3:  # not MT19937 internal version 3
        return False
    if int(keys.min()) < 0 or int(keys.max()) >= MAX_KEY:
        return False
    for key in cache._keys:
        if type(key) is not int or key < 0 or key >= MAX_KEY:
            return False
    return True


def replay(cache, keys: np.ndarray) -> int:
    """Replay ``keys`` through ``cache``; returns hits added.

    Byte-identical to the scalar ``access_many`` loop (callers dispatch here
    only after :func:`eligible`).
    """
    ss = cache.sample_size
    cap = cache.capacity
    hsize = cache.history_size
    weights = cache.weights
    two = cache.adaptive
    lr = weights.learning_rate
    disc = weights.discount
    exp = math.exp
    shift = cache._hist_shift
    floor = WEIGHT_FLOOR

    col0, sign0 = _SUPPORTED[type(cache.policies[0])]
    if two:
        col1, sign1 = _SUPPORTED[type(cache.policies[1])]
    else:
        col1, sign1 = col0, sign0
    # The dominant configuration — adaptive (lru, lfu) with the default
    # sample size — gets an unrolled candidate scan below.
    hot = two and ss == 5 and (col0, sign0) == (1, 1) and (col1, sign1) == (0, 1)

    # -- columnar encode ---------------------------------------------------
    orig = cache._store
    kmax = int(keys.max())
    top = max([kmax] + cache._keys) + 1 if orig else kmax + 1
    pos_of = [-1] * top
    keyid_col: list = []
    freq_col: list = []
    last_col: list = []
    ins_col: list = []
    for key in cache._keys:  # slot order must mirror the scalar _keys list
        meta = orig[key]
        pos_of[key] = len(keyid_col)
        keyid_col.append(key)
        freq_col.append(meta.freq)
        last_col.append(meta.last_ts)
        ins_col.append(meta.insert_ts)
    cols = (freq_col, last_col, ins_col)
    pri0 = cols[col0]
    pri1 = cols[col1]

    # -- rng mirror --------------------------------------------------------
    entry_state = cache.rng.getstate()
    internal = entry_state[1]
    mirror = np.random.RandomState()
    mirror.set_state(
        ("MT19937", np.array(internal[:-1], dtype=np.uint32), internal[-1])
    )
    fl_block: list = []  # raw uniforms (scalar fallback + choose draws)
    idx_block: list = []  # min(int(u * cap), cap - 1), precomputed per block
    cur = 0
    blk_len = 0
    drawn = 0
    reserve = ss + 1  # max draws one eviction can consume

    hist = cache._history
    fifo = cache._history_fifo
    hctr = cache._history_counter
    base = cache._history_base
    w = weights.weights
    pend = weights._pending
    tick0 = cache._tick
    misses = 0
    evictions = 0
    regrets = 0
    ids = keys.tolist()

    hist_get = hist.get
    fifo_append = fifo.append
    fifo_popleft = fifo.popleft
    key_append = keyid_col.append
    freq_append = freq_col.append
    last_append = last_col.append
    ins_append = ins_col.append
    key_pop = keyid_col.pop
    freq_pop = freq_col.pop
    last_pop = last_col.pop
    ins_pop = ins_col.pop
    n = len(keyid_col)
    tick = tick0

    for tick, key in enumerate(ids, tick0 + 1):
        p = pos_of[key]
        if p >= 0:
            freq_col[p] += 1
            last_col[p] = tick
            continue
        misses += 1
        if two:
            entry = hist_get(key)
            if entry is not None:
                age = hctr - (entry >> shift)
                if age <= hsize:
                    regrets += 1
                    pen = disc ** age
                    w0 = w[0]
                    w1 = w[1]
                    if entry & 1:
                        w0 *= exp(-lr * pen)
                        pend[0] += pen
                    if entry & 2:
                        w1 *= exp(-lr * pen)
                        pend[1] += pen
                    if w0 < floor:
                        w0 = floor
                    if w1 < floor:
                        w1 = floor
                    total = w0 + w1
                    w[0] = w0 / total
                    w[1] = w1 / total
                    weights._pending_count += 1
        while n >= cap:
            if cur >= blk_len:
                raw = mirror.random_sample(BLOCK)
                drawn += BLOCK
                idx = (raw * cap).astype(np.int64)
                np.minimum(idx, cap - 1, out=idx)
                # Carry the unconsumed tail: the replay must stay on the
                # exact draw sequence across block refills.
                fl_block = fl_block[cur:] + raw.tolist()
                idx_block = idx_block[cur:] + idx.tolist()
                blk_len = len(fl_block) - reserve
                cur = 0
            if n > ss:
                if hot and n == cap:
                    # Unrolled dual argmin (LRU candidate c1, LFU candidate
                    # c2) over 5 precomputed slot draws; strict < keeps the
                    # first minimum, like the scalar scan.
                    c1 = idx_block[cur]
                    b_l = last_col[c1]
                    c2 = c1
                    b_f = freq_col[c1]
                    s = idx_block[cur + 1]
                    l = last_col[s]
                    if l < b_l:
                        b_l = l
                        c1 = s
                    f = freq_col[s]
                    if f < b_f:
                        b_f = f
                        c2 = s
                    s = idx_block[cur + 2]
                    l = last_col[s]
                    if l < b_l:
                        b_l = l
                        c1 = s
                    f = freq_col[s]
                    if f < b_f:
                        b_f = f
                        c2 = s
                    s = idx_block[cur + 3]
                    l = last_col[s]
                    if l < b_l:
                        b_l = l
                        c1 = s
                    f = freq_col[s]
                    if f < b_f:
                        b_f = f
                        c2 = s
                    s = idx_block[cur + 4]
                    l = last_col[s]
                    if l < b_l:
                        b_l = l
                        c1 = s
                    f = freq_col[s]
                    if f < b_f:
                        b_f = f
                        c2 = s
                    cur += 5
                elif n == cap:
                    sampled = idx_block[cur : cur + ss]
                    cur += ss
                    c1 = _argbest(sampled, pri0, sign0)
                    c2 = _argbest(sampled, pri1, sign1) if two else c1
                else:
                    sampled = [
                        min(int(fl_block[j] * n), n - 1)
                        for j in range(cur, cur + ss)
                    ]
                    cur += ss
                    c1 = _argbest(sampled, pri0, sign0)
                    c2 = _argbest(sampled, pri1, sign1) if two else c1
            else:
                # Tiny store: the scalar path samples every key (no draws).
                sampled = range(n)
                c1 = _argbest(sampled, pri0, sign0)
                c2 = _argbest(sampled, pri1, sign1) if two else c1
            if two:
                # choose() draws even when both candidates coincide.
                x = fl_block[cur]
                cur += 1
                if c1 == c2:
                    vic = c1
                    bm = 3
                elif x * (w[0] + w[1]) < w[0]:
                    vic = c1
                    bm = 1
                else:
                    vic = c2
                    bm = 2
            else:
                vic = c1
                bm = 1
            vkey = keyid_col[vic]
            pos_of[vkey] = -1
            n -= 1
            lk = key_pop()
            lf = freq_pop()
            ll = last_pop()
            li = ins_pop()
            if vic != n:
                keyid_col[vic] = lk
                freq_col[vic] = lf
                last_col[vic] = ll
                ins_col[vic] = li
                pos_of[lk] = vic
            hist[vkey] = (hctr << shift) | bm
            fifo_append(vkey)
            hctr += 1
            while hctr - base > hsize:
                okey = fifo_popleft()
                e = hist_get(okey)
                if e is not None and e >> shift == base:
                    del hist[okey]
                base += 1
            evictions += 1
        pos_of[key] = n
        key_append(key)
        freq_append(1)
        last_append(tick)
        ins_append(tick)
        n += 1

    # -- restore scalar state ----------------------------------------------
    # Rebuild the store dict in the exact order the scalar loop would leave
    # it: original insertion order minus evictions, then new inserts in
    # insert-tick order (a re-inserted key moves to its new position).
    store = {}
    for key, meta in orig.items():
        p = pos_of[key]
        if p >= 0 and ins_col[p] <= tick0:
            meta.freq = freq_col[p]
            meta.last_ts = last_col[p]
            store[key] = meta
    fresh = sorted(
        (ins_col[p], p) for p in range(n) if ins_col[p] > tick0
    )
    for insert_ts, p in fresh:
        store[keyid_col[p]] = Metadata(
            size=1,
            insert_ts=insert_ts,
            last_ts=last_col[p],
            freq=freq_col[p],
            cost=1.0,
        )
    cache._store = store
    cache._keys = keyid_col
    cache._key_pos = {key: i for i, key in enumerate(keyid_col)}
    cache._tick = tick
    total = len(ids)
    hits = total - misses
    cache.hits += hits
    cache.misses += misses
    cache.evictions += evictions
    cache.regrets += regrets
    cache._history_counter = hctr
    cache._history_base = base

    consumed = drawn - (len(fl_block) - cur)
    if consumed:
        # Advance the scalar rng to exactly where a scalar replay would have
        # left it: re-draw the consumed count from the entry state and
        # transplant the resulting MT19937 state back (gauss cache intact —
        # random() never touches it).
        resync = np.random.RandomState()
        resync.set_state(
            ("MT19937", np.array(internal[:-1], dtype=np.uint32), internal[-1])
        )
        resync.random_sample(consumed)
        _, words, pos, _, _ = resync.get_state()
        cache.rng.setstate(
            (3, tuple(int(v) for v in words) + (int(pos),), entry_state[2])
        )
    return hits


def _argbest(sampled, column, sign):
    """First index among ``sampled`` minimizing ``sign * column[slot]``."""
    it = iter(sampled)
    best = next(it)
    best_p = sign * column[best]
    for s in it:
        p = sign * column[s]
        if p < best_p:
            best_p = p
            best = s
    return best
