"""Ditto's core: the client-centric caching framework and adaptive caching."""

from .adaptive import ExpertWeights, GlobalWeights, bitmap_of
from .cache import DittoCache, DittoCluster
from .client import CacheOperationError, DittoClient
from .config import DittoConfig
from .consensus import (
    ConsensusUnavailable,
    ControllerGroup,
    GroupClient,
    MetadataState,
    NotLeader,
    RaftParams,
    RaftReplica,
)
from .elasticity import (
    EpochFence,
    MembershipTable,
    MigrationError,
    MigrationRecord,
    Migrator,
    StaleEpoch,
)
from .fc_cache import FrequencyCounterCache
from .invariants import InvariantViolation, sweep as invariant_sweep
from .history import (
    HISTORY_WRAP,
    RemoteFifoHistory,
    history_age,
    is_expired,
)
from .layout import DittoLayout, Slot, stable_hash64
from .policies import (
    POLICY_REGISTRY,
    CachePolicy,
    Metadata,
    make_policy,
    policy_loc,
)
from .retry import backoff_us

__all__ = [
    "CacheOperationError",
    "CachePolicy",
    "ConsensusUnavailable",
    "ControllerGroup",
    "GroupClient",
    "MetadataState",
    "NotLeader",
    "RaftParams",
    "RaftReplica",
    "backoff_us",
    "DittoCache",
    "DittoClient",
    "DittoCluster",
    "DittoConfig",
    "DittoLayout",
    "EpochFence",
    "ExpertWeights",
    "FrequencyCounterCache",
    "GlobalWeights",
    "HISTORY_WRAP",
    "InvariantViolation",
    "invariant_sweep",
    "MembershipTable",
    "Metadata",
    "MigrationError",
    "MigrationRecord",
    "Migrator",
    "StaleEpoch",
    "POLICY_REGISTRY",
    "RemoteFifoHistory",
    "Slot",
    "bitmap_of",
    "history_age",
    "is_expired",
    "make_policy",
    "policy_loc",
    "stable_hash64",
]
