"""Distributed adaptive caching: regret minimization over expert policies
(paper §4.3.2).

Each client keeps a *local* copy of the expert weights and uses it for every
eviction decision.  When a regret is found (a missed key hits the eviction
history), the client penalizes the experts named in the history entry's
bitmap.  Penalties are discounted by the entry's age ``t`` in the logical
FIFO queue: ``penalty = d ** t`` with ``d = 0.005 ** (1 / history_size)``
(LeCaR's discount), and a penalized expert's weight is multiplied by
``exp(-learning_rate * penalty)``.

Because penalties compose multiplicatively through the exponential, a client
can *compress* a batch of regrets into one per-expert penalty **sum** — the
lazy weight update: after ``batch_size`` local regrets, the sums travel to the
memory-node controller in a single RPC, the controller folds them into the
global weights, and the reply resynchronizes the client's local copy.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

#: Weights never decay below this floor, so a long losing streak cannot
#: permanently disable an expert (it must be able to win again after a
#: workload change).
WEIGHT_FLOOR = 1e-4


def _normalized(weights: Sequence[float]) -> List[float]:
    clipped = [max(w, WEIGHT_FLOOR) for w in weights]
    total = sum(clipped)
    return [w / total for w in clipped]


class ExpertWeights:
    """Client-local expert weights with a compressed penalty buffer."""

    #: Supported eviction-decision strategies.  ``proportional`` is the
    #: paper's scheme (candidates of higher-weight experts are more likely to
    #: be evicted); ``greedy`` is an extension that follows the top-weight
    #: expert except for an ε exploration, which converges harder toward the
    #: best expert on strongly one-sided workloads (CACHEUS-style).
    SELECTION_MODES = ("proportional", "greedy")

    def __init__(
        self,
        num_experts: int,
        history_size: int,
        learning_rate: float = 0.1,
        batch_size: int = 100,
        rng: random.Random = None,
        selection: str = "proportional",
        epsilon: float = 0.05,
    ):
        if num_experts < 1:
            raise ValueError("need at least one expert")
        if selection not in self.SELECTION_MODES:
            raise ValueError(f"unknown selection mode {selection!r}")
        self.num_experts = num_experts
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.selection = selection
        self.epsilon = epsilon
        self.discount = 0.005 ** (1.0 / max(history_size, 1))
        self.weights = [1.0 / num_experts] * num_experts
        self._pending = [0.0] * num_experts
        self._pending_count = 0
        self._rng = rng or random.Random(0)

    def choose(self) -> int:
        """Pick the expert whose candidate gets evicted."""
        if self.num_experts == 1:
            return 0
        if self.selection == "greedy":
            if self._rng.random() < self.epsilon:
                return self._rng.randrange(self.num_experts)
            return max(range(self.num_experts), key=self.weights.__getitem__)
        x = self._rng.random() * sum(self.weights)
        acc = 0.0
        for i, w in enumerate(self.weights):
            acc += w
            if x < acc:
                return i
        return self.num_experts - 1

    def apply_regret(self, expert_bitmap: int, age: int) -> bool:
        """Penalize the experts in ``expert_bitmap`` for a regret of ``age``.

        Returns True once the penalty buffer is full and should be flushed to
        the controller with :meth:`take_pending`.
        """
        penalty = self.discount ** age
        for i in range(self.num_experts):
            if expert_bitmap & (1 << i):
                self.weights[i] *= math.exp(-self.learning_rate * penalty)
                self._pending[i] += penalty
        self.weights = _normalized(self.weights)
        self._pending_count += 1
        return self._pending_count >= self.batch_size

    def take_pending(self) -> List[float]:
        """Drain the compressed penalty sums for the lazy-update RPC."""
        pending, self._pending = self._pending, [0.0] * self.num_experts
        self._pending_count = 0
        return pending

    @property
    def pending_count(self) -> int:
        return self._pending_count

    def set_weights(self, weights: Sequence[float]) -> None:
        """Adopt the global weights returned by the controller."""
        if len(weights) != self.num_experts:
            raise ValueError("weight vector length mismatch")
        self.weights = _normalized(weights)


class GlobalWeights:
    """Controller-side global expert weights (one per memory pool)."""

    def __init__(self, num_experts: int, learning_rate: float = 0.1,
                 on_update=None):
        self.num_experts = num_experts
        self.learning_rate = learning_rate
        self.weights = [1.0 / num_experts] * num_experts
        #: Observability hook ``on_update(weights)``, called after each fold;
        #: None (the default) keeps updates hook-free.
        self.on_update = on_update

    def handle_update(self, penalty_sums: Sequence[float]) -> List[float]:
        """RPC handler: fold a client's penalty sums in, return new globals."""
        if len(penalty_sums) != self.num_experts:
            raise ValueError("penalty vector length mismatch")
        for i, penalty in enumerate(penalty_sums):
            if penalty:
                self.weights[i] *= math.exp(-self.learning_rate * penalty)
        self.weights = _normalized(self.weights)
        if self.on_update is not None:
            self.on_update(self.weights)
        return list(self.weights)


def bitmap_of(candidates: Sequence[int], victim_index: int) -> int:
    """Expert bitmap: which experts picked ``victim_index`` as their candidate."""
    bitmap = 0
    for expert, candidate in enumerate(candidates):
        if candidate == victim_index:
            bitmap |= 1 << expert
    return bitmap
