"""Deployment wiring (:class:`DittoCluster`) and the user-facing synchronous
cache façade (:class:`DittoCache`).

``DittoCluster`` assembles a complete Ditto deployment on simulated
disaggregated memory: one memory node with a weak controller, the
sample-friendly hash table and global history counter at its base, a shared
memory budget (the elastic "memory resource"), and any number of client
threads in the compute pool.  Experiments drive clusters in *timed* mode
(clients as concurrent processes under a contended NIC); applications use
``DittoCache``, which drives one operation at a time to completion (*instant*
mode) and exposes an ordinary ``get``/``set``/``delete`` API.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..memory import (
    BLOCK_SIZE,
    ClientAllocator,
    Controller,
    MemoryBudget,
    MemoryNode,
    MemoryPool,
    StripedAllocator,
)
from ..obs.observer import Observability
from ..obs.observer import current as obs_current
from ..rdma.params import NetworkParams
from ..rdma.verbs import RdmaFaultError
from ..sim import CounterSet, Engine, Timeout
from ..sim.faults import FaultInjector, FaultPlan
from .adaptive import GlobalWeights
from .client import DittoClient
from .config import DittoConfig
from .history import HISTORY_ENTRY_BYTES, RemoteFifoHistory
from .layout import DittoLayout, object_span
from .policies import make_policy


class DittoCluster:
    """A Ditto deployment: memory pool + compute-pool clients."""

    def __init__(
        self,
        capacity_objects: int = 4096,
        object_bytes: int = 256,
        num_clients: int = 1,
        config: Optional[DittoConfig] = None,
        params: Optional[NetworkParams] = None,
        seed: int = 0,
        segment_bytes: int = 256 * 1024,
        engine: Optional[Engine] = None,
        max_capacity_objects: Optional[int] = None,
        num_memory_nodes: int = 1,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
        obs: Optional[Observability] = None,
    ):
        """``max_capacity_objects`` provisions the memory pool for future
        elastic growth (default: the initial capacity); ``resize_memory``
        may grow the budget up to that bound without reprovisioning.

        With ``num_memory_nodes > 1`` the pool spans several MNs: the hash
        table, history counter, and expert weights live on node 0 and the
        object heap stripes across all nodes, spreading data-path verbs over
        every node's NIC (the paper's multi-MN compatibility, §5.1)."""
        if num_memory_nodes < 1:
            raise ValueError("need at least one memory node")
        if capacity_objects < 1:
            raise ValueError("capacity must be at least one object")
        self.engine = engine or Engine()
        self.config = config or DittoConfig()
        self.params = params or NetworkParams()
        # Fault injection: ``None`` (the default) keeps every path — verbs,
        # clients, recovery — on the zero-overhead healthy fast path and the
        # outputs byte-identical to a build without this subsystem.
        if faults is None:
            self.fault_injector: Optional[FaultInjector] = None
        elif isinstance(faults, FaultInjector):
            self.fault_injector = faults
        else:
            self.fault_injector = FaultInjector(self.engine, faults)
        # Observability (repro.obs): the hub comes from the ``obs`` argument
        # or the process-wide runtime; with neither, ``tracer`` stays None
        # and every instrumented path is inert.
        if obs is None:
            obs = obs_current()
        self.obs = obs
        self.tracer = obs.bind(self.engine, label="ditto") if obs is not None else None
        if self.fault_injector is not None and self.tracer is not None:
            self.fault_injector.tracer = self.tracer
            if not self.fault_injector.plan.empty:
                # A plan passed at construction armed before the tracer
                # existed; annotate its windows retroactively.
                self.fault_injector._annotate_plan(self.fault_injector.plan)
        self.seed = seed
        self.segment_bytes = segment_bytes
        self.capacity_objects = capacity_objects
        self.object_bytes = object_bytes

        # Extension metadata schema: union of the experts' ext fields.
        self.ext_fields: Tuple[str, ...] = self._ext_schema(self.config.policies)

        # Cache budget: capacity in bytes at the configured object size.
        est_span = object_span(0, object_bytes, 8 * len(self.ext_fields))
        self.block_bytes_per_object = (
            ClientAllocator.blocks_for(est_span) * BLOCK_SIZE
        )
        self.budget = MemoryBudget(capacity_objects * self.block_bytes_per_object)

        self.max_capacity_objects = max_capacity_objects or capacity_objects
        if self.max_capacity_objects < capacity_objects:
            raise ValueError("max_capacity_objects below initial capacity")

        # Hash-table geometry: slot_factor slots per cached object so live
        # objects plus unexpired history entries fit comfortably, sized for
        # the provisioned maximum so memory can grow without re-hashing.
        total_slots = max(
            int(self.max_capacity_objects * self.config.slot_factor),
            2 * DittoLayout.SLOTS_PER_BUCKET,
        )
        num_buckets = -(-total_slots // DittoLayout.SLOTS_PER_BUCKET)
        self.layout = DittoLayout(base=0, num_buckets=num_buckets)
        self.history_size = self.config.history_size or capacity_objects

        reserve = self.layout.reserved_bytes
        self.remote_history: Optional[RemoteFifoHistory] = None
        if not self.config.use_lwh:
            self.remote_history = RemoteFifoHistory(reserve, self.history_size)
            reserve += 8 + self.history_size * HISTORY_ENTRY_BYTES

        # Heap: provisioned-maximum bytes plus slack for in-flight segments
        # and size-class fragmentation, split across the memory nodes.
        heap_bytes = (
            2 * self.max_capacity_objects * self.block_bytes_per_object
            + 2 * max(num_clients, 1) * segment_bytes
            + (1 << 20)
        )
        heap_per_node = -(-heap_bytes // num_memory_nodes)
        self.nodes = []
        base = 0
        for node_id in range(num_memory_nodes):
            size = heap_per_node + (reserve if node_id == 0 else 0)
            node = MemoryNode(
                self.engine, size=size, base=base, node_id=node_id,
                params=self.params,
            )
            Controller(node, cores=1, reserve=reserve if node_id == 0 else 0)
            self.nodes.append(node)
            base += size
        self.node = self.nodes[0]
        self.pool = MemoryPool(self.nodes)
        self.controller = self.node.controller

        if self.obs is not None:
            obs_id = str(self.tracer.pid) if self.tracer is not None else "0"
            prefix = f"c{obs_id}." if obs_id != "0" else ""
            for node in self.nodes:
                if self.tracer is not None:
                    node.controller.tracer = self.tracer
                self.obs.watch(
                    f"{prefix}mn{node.node_id}.nic", node.nic, self.engine
                )
                self.obs.watch(
                    f"{prefix}mn{node.node_id}.cpu", node.controller.cpu,
                    self.engine,
                )
            self.obs.watch(f"{prefix}budget", self.budget, self.engine)

        self.global_weights = GlobalWeights(
            num_experts=self.config.num_experts,
            learning_rate=self.config.learning_rate,
        )
        self.controller.register(
            "update_weights", self.global_weights.handle_update, cpu_us=0.5
        )
        if self.obs is not None:
            self._wire_weight_metrics(obs_id)

        self.counters = CounterSet()
        if self.obs is not None:
            self.obs.bridge_counters(self.counters, component="cluster",
                                     cluster=obs_id)
        self.object_count = 0
        self.clients: List[DittoClient] = []
        self.add_clients(num_clients)

    def _wire_weight_metrics(self, obs_id: str) -> None:
        """Publish global expert-weight updates to the metrics/trace layer."""
        registry = self.obs.registry
        updates = registry.counter(
            "adaptive.updates", component="controller", cluster=obs_id
        )
        gauges = [
            registry.gauge("adaptive.weight", policy=policy, cluster=obs_id)
            for policy in self.config.policies
        ]
        tracer = self.tracer

        def on_update(weights):
            updates.add(1)
            for gauge, weight in zip(gauges, weights):
                gauge.set(weight)
            if tracer is not None:
                tracer.instant(
                    "adaptive.update", "controller",
                    {"weights": [round(w, 4) for w in weights]},
                )

        self.global_weights.on_update = on_update

    @staticmethod
    def _ext_schema(policy_names) -> Tuple[str, ...]:
        fields: List[str] = []
        for name in policy_names:
            for field in make_policy(name).ext_fields:
                if field not in fields:
                    fields.append(field)
        return tuple(fields)

    # -- elasticity knobs --------------------------------------------------

    def add_clients(self, n: int) -> List[DittoClient]:
        """Scale compute: new client threads join with no data movement."""
        new = [
            DittoClient(self, client_id=len(self.clients) + i, seed=self.seed)
            for i in range(n)
        ]
        self.clients.extend(new)
        return new

    def remove_clients(self, n: int) -> None:
        if n > len(self.clients) - 1:
            raise ValueError("cannot remove all clients")
        del self.clients[len(self.clients) - n :]

    def resize_memory(self, capacity_objects: int) -> None:
        """Scale memory: adjust the budget; no data migration is needed.

        Shrinking leaves the cache temporarily over budget; subsequent
        inserts evict until usage fits the new limit.  Growth is bounded by
        the provisioned pool (``max_capacity_objects``).
        """
        if capacity_objects > self.max_capacity_objects:
            raise ValueError(
                f"cannot grow to {capacity_objects} objects: pool provisioned "
                f"for {self.max_capacity_objects} (set max_capacity_objects)"
            )
        self.capacity_objects = capacity_objects
        self.budget.resize(capacity_objects * self.block_bytes_per_object)

    # -- crash recovery (fault injection only) ------------------------------

    def crash_client(self, index: int) -> None:
        """Record that client ``index`` died and schedule its recovery.

        The caller (normally :meth:`repro.bench.runner.Harness` acting on a
        :class:`~repro.sim.faults.ClientCrash` event) kills the client's
        driver process at a yield boundary; this method handles the cluster
        side: mark the client dead and, after ``crash_detect_us`` (the
        liveness-lease expiry of the out-of-band quota service), have a
        surviving client reclaim whatever the dead one leaked.
        """
        client = self.clients[index]
        if client.dead:
            return
        client.dead = True
        self.counters.add("client_crash")
        self.engine.spawn(
            self._recovery_process(client), name=f"recover_client_{index}"
        )

    def _recovery_process(self, dead):
        yield Timeout(self.config.crash_detect_us)
        survivor = next((c for c in self.clients if not c.dead), None)
        if survivor is None:
            return  # nobody left to recover; the sweep will flag leaks
        try:
            yield from self.recover_client(dead, survivor)
        except RdmaFaultError:
            # Recovery gave up after exhausting its generous retry budget
            # (counter ``crash_recovery_failed``); don't unwind the engine.
            pass

    def recover_client(self, dead, survivor):
        """Reclaim everything a crashed client leaked, as ``survivor``.

        Three steps, mirroring what a real deployment's lease-based
        metadata service enables:

        1. *Undo log*: the dead client's in-flight op markers
           (``_pending_block``/``_pending_budget``) name the block and
           budget it held but had not committed; return both.
        2. *Grant reconciliation*: ask every controller for the dead
           client's segment grants (``list_segments`` RPC) and diff against
           its client-side records — a grant the client never learned about
           (killed mid-RPC) is returned via ``free_segment``.
        3. *Adoption*: the survivor absorbs the dead allocator's free
           lists, bump remainder, and spare regions so the memory stays
           usable.
        """
        if dead._pending_block is not None:
            addr, span = dead._pending_block
            dead._pending_block = None
            survivor.alloc.free(addr, span)
            self.counters.add("crash_block_reclaimed")
        if dead._pending_budget:
            self.budget.release(dead._pending_budget)
            dead._pending_budget = 0
        for node in self.nodes:
            granted = yield from self._recovery_rpc(
                survivor, node, "list_segments", dead.client_id
            )
            dead_alloc = dead.alloc.allocator_for_node(node)
            recorded = set(dead_alloc.segments)
            for addr, size in granted:
                if (addr, size) in recorded:
                    continue
                # In-flight grant: the controller handed it out but the
                # client died before the response landed.
                yield from self._recovery_rpc(
                    survivor, node, "free_segment", (addr, size)
                )
                self.counters.add("crash_segment_returned")
        survivor.alloc.adopt(dead.alloc)
        self.counters.add("crash_recovery")

    def _recovery_rpc(self, survivor, node, op, payload):
        """A recovery RPC with (generous) fault retries: recovery itself can
        run inside the fault window that caused the crash."""
        attempt = 0
        while True:
            try:
                result = yield from survivor.ep.rpc(node, op, payload)
                return result
            except RdmaFaultError:
                attempt += 1
                if attempt > 1000:
                    # Persistently unreachable; give up rather than spin the
                    # engine forever.  The invariant sweep will report the
                    # unreconciled state.
                    self.counters.add("crash_recovery_failed")
                    raise
                self.counters.add("fault_retry")
                delay = survivor._backoff_us(min(attempt, 8))
                if delay > 0.0:
                    yield Timeout(delay)

    # -- aggregated statistics ----------------------------------------------

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.clients)

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.clients)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
            "objects": self.object_count,
            "evictions": sum(c.evictions for c in self.clients),
            "regrets": sum(c.regrets for c in self.clients),
            "used_bytes": self.budget.used_bytes,
            "limit_bytes": self.budget.limit_bytes,
            "sim_time_us": self.engine.now,
            **{k: float(v) for k, v in self.counters.as_dict().items()},
        }


def _to_bytes(data: Union[str, bytes]) -> bytes:
    if isinstance(data, str):
        return data.encode("utf-8")
    if isinstance(data, (bytes, bytearray, memoryview)):
        return bytes(data)
    raise TypeError(f"keys/values must be str or bytes, got {type(data).__name__}")


class DittoCache:
    """Synchronous cache API over a Ditto deployment (instant mode).

    >>> cache = DittoCache(capacity_objects=1024)
    >>> cache.set("user:1", b"alice")
    >>> cache.get("user:1")
    b'alice'

    Keys and values are ``str`` or ``bytes``.  Operations round-robin across
    the configured client threads so metadata updates and adaptive weights
    behave as in a multi-client deployment.
    """

    def __init__(
        self,
        capacity_objects: int = 4096,
        object_bytes: int = 256,
        policies: Tuple[str, ...] = ("lru", "lfu"),
        num_clients: int = 1,
        seed: int = 0,
        params: Optional[NetworkParams] = None,
        max_capacity_objects: Optional[int] = None,
        num_memory_nodes: int = 1,
        **config_kwargs,
    ):
        config = DittoConfig(policies=tuple(policies), **config_kwargs)
        self.cluster = DittoCluster(
            capacity_objects=capacity_objects,
            object_bytes=object_bytes,
            num_clients=num_clients,
            config=config,
            params=params,
            seed=seed,
            max_capacity_objects=max_capacity_objects,
            num_memory_nodes=num_memory_nodes,
        )
        self._next_client = 0

    def _client(self) -> DittoClient:
        client = self.cluster.clients[self._next_client]
        self._next_client = (self._next_client + 1) % len(self.cluster.clients)
        return client

    def _run(self, gen):
        return self.cluster.engine.run_process(gen)

    # -- cache operations ---------------------------------------------------

    def set(self, key: Union[str, bytes], value: Union[str, bytes]) -> None:
        self._run(self._client().set(_to_bytes(key), _to_bytes(value)))

    def get(self, key: Union[str, bytes]) -> Optional[bytes]:
        return self._run(self._client().get(_to_bytes(key)))

    def delete(self, key: Union[str, bytes]) -> bool:
        return self._run(self._client().delete(_to_bytes(key)))

    def get_or_load(self, key: Union[str, bytes], loader) -> bytes:
        """Cache-aside helper: on a miss, call ``loader()`` and cache it."""
        value = self.get(key)
        if value is None:
            value = _to_bytes(loader())
            self.set(key, value)
        return value

    def __contains__(self, key: Union[str, bytes]) -> bool:
        # Peek without perturbing hotness: check then compensate is not
        # possible remotely, so __contains__ is an ordinary Get.
        return self.get(key) is not None

    def __len__(self) -> int:
        return self.cluster.object_count

    # -- elasticity ----------------------------------------------------------

    def scale_clients(self, num_clients: int) -> None:
        current = len(self.cluster.clients)
        if num_clients > current:
            self.cluster.add_clients(num_clients - current)
        elif num_clients < current:
            self.cluster.remove_clients(current - num_clients)
        self._next_client = 0

    def resize(self, capacity_objects: int) -> None:
        self.cluster.resize_memory(capacity_objects)

    # -- introspection --------------------------------------------------------

    def hit_rate(self) -> float:
        return self.cluster.hit_rate()

    def stats(self) -> Dict[str, float]:
        return self.cluster.stats()

    @property
    def expert_weights(self) -> Dict[str, float]:
        """Current global expert weights (adaptive caching state)."""
        return dict(
            zip(self.cluster.config.policies, self.cluster.global_weights.weights)
        )
