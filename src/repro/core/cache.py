"""Deployment wiring (:class:`DittoCluster`) and the user-facing synchronous
cache façade (:class:`DittoCache`).

``DittoCluster`` assembles a complete Ditto deployment on simulated
disaggregated memory: one memory node with a weak controller, the
sample-friendly hash table and global history counter at its base, a shared
memory budget (the elastic "memory resource"), and any number of client
threads in the compute pool.  Experiments drive clusters in *timed* mode
(clients as concurrent processes under a contended NIC); applications use
``DittoCache``, which drives one operation at a time to completion (*instant*
mode) and exposes an ordinary ``get``/``set``/``delete`` API.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..memory import (
    Controller,
    MemoryBudget,
    MemoryNode,
    MemoryPool,
    StripedAllocator,
)
from ..obs.observer import Observability
from ..obs.observer import current as obs_current
from ..rdma.params import NetworkParams
from ..rdma.verbs import RdmaEndpoint, RdmaFaultError
from ..sim import CounterSet, Engine, Timeout
from ..sim.faults import FaultInjector, FaultPlan
from .adaptive import GlobalWeights
from .client import DittoClient
from .config import DittoConfig
from .consensus import ControllerGroup, MetadataState, RaftParams
from .elasticity import (
    ACTIVE,
    DRAINING,
    RETIRED,
    EpochFence,
    MembershipTable,
    MigrationError,
    MigrationRecord,
    Migrator,
)
from .geometry import ext_schema, plan_cluster
from .history import RemoteFifoHistory


class DittoCluster:
    """A Ditto deployment: memory pool + compute-pool clients."""

    def __init__(
        self,
        capacity_objects: int = 4096,
        object_bytes: int = 256,
        num_clients: int = 1,
        config: Optional[DittoConfig] = None,
        params: Optional[NetworkParams] = None,
        seed: int = 0,
        segment_bytes: int = 256 * 1024,
        engine: Optional[Engine] = None,
        max_capacity_objects: Optional[int] = None,
        num_memory_nodes: int = 1,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
        obs: Optional[Observability] = None,
        controller_replicas: int = 0,
        raft_params: Optional[RaftParams] = None,
    ):
        """``max_capacity_objects`` provisions the memory pool for future
        elastic growth (default: the initial capacity); ``resize_memory``
        may grow the budget up to that bound without reprovisioning.

        With ``num_memory_nodes > 1`` the pool spans several MNs: the hash
        table, history counter, and expert weights live on node 0 and the
        object heap stripes across all nodes, spreading data-path verbs over
        every node's NIC (the paper's multi-MN compatibility, §5.1)."""
        self.engine = engine or Engine()
        self.config = config or DittoConfig()
        self.params = params or NetworkParams()
        # Fault injection: ``None`` (the default) keeps every path — verbs,
        # clients, recovery — on the zero-overhead healthy fast path and the
        # outputs byte-identical to a build without this subsystem.
        if faults is None:
            self.fault_injector: Optional[FaultInjector] = None
        elif isinstance(faults, FaultInjector):
            self.fault_injector = faults
        else:
            self.fault_injector = FaultInjector(self.engine, faults)
        # Observability (repro.obs): the hub comes from the ``obs`` argument
        # or the process-wide runtime; with neither, ``tracer`` stays None
        # and every instrumented path is inert.
        if obs is None:
            obs = obs_current()
        self.obs = obs
        self.tracer = obs.bind(self.engine, label="ditto") if obs is not None else None
        if self.fault_injector is not None and self.tracer is not None:
            self.fault_injector.tracer = self.tracer
            if not self.fault_injector.plan.empty:
                # A plan passed at construction armed before the tracer
                # existed; annotate its windows retroactively.
                self.fault_injector._annotate_plan(self.fault_injector.plan)
        self.seed = seed
        self.segment_bytes = segment_bytes
        self.capacity_objects = capacity_objects
        self.object_bytes = object_bytes

        # Memory geometry: the plan is the single source of truth shared
        # with the real-process substrate (repro.core.geometry) — both
        # substrates must resolve addresses identically.
        plan = plan_cluster(
            capacity_objects, object_bytes, num_clients,
            config=self.config, num_memory_nodes=num_memory_nodes,
            segment_bytes=segment_bytes,
            max_capacity_objects=max_capacity_objects,
        )
        self.ext_fields: Tuple[str, ...] = plan.ext_fields
        self.block_bytes_per_object = plan.block_bytes_per_object
        self.budget = MemoryBudget(plan.budget_bytes)
        self.max_capacity_objects = plan.max_capacity_objects
        self.layout = plan.layout
        self.history_size = plan.history_size

        reserve = plan.reserve
        self.remote_history: Optional[RemoteFifoHistory] = None
        if not self.config.use_lwh:
            self.remote_history = RemoteFifoHistory(
                plan.layout.reserved_bytes, self.history_size
            )

        self._heap_per_node = plan.heap_per_node
        self.nodes = []
        for node_id, node_base, size in plan.node_ranges:
            node = MemoryNode(
                self.engine, size=size, base=node_base, node_id=node_id,
                params=self.params,
            )
            Controller(node, cores=1, reserve=reserve if node_id == 0 else 0)
            self.nodes.append(node)
        self.node = self.nodes[0]
        self.pool = MemoryPool(self.nodes)
        self.controller = self.node.controller
        # -- elastic memory-node membership --------------------------------
        #: High-water mark of the global address space: a node added later
        #: gets a fresh range above everything ever provisioned, so retired
        #: ranges are never reused and a stale pointer stays detectable.
        self._addr_high = self.nodes[-1].end
        self._next_node_id = num_memory_nodes
        #: Membership table + epoch fence, created by the first membership
        #: change (``_ensure_elastic``).  Until then both stay None and all
        #: verbs take the unfenced fast path — default runs are byte-
        #: identical to a build without the elasticity subsystem.
        self.membership: Optional[MembershipTable] = None
        self.fence: Optional[EpochFence] = None
        self._epoch_gauge = None
        #: Records of node drains, oldest first (``MigrationRecord``).
        self.migrations: List[MigrationRecord] = []
        #: Drains currently in flight (their allocators are part of the
        #: memory-accounting sweep until adoption).
        self._active_migrators: List[Migrator] = []
        self._shrink_proc = None

        if self.obs is not None:
            obs_id = str(self.tracer.pid) if self.tracer is not None else "0"
            prefix = f"c{obs_id}." if obs_id != "0" else ""
            for node in self.nodes:
                if self.tracer is not None:
                    node.controller.tracer = self.tracer
                self.obs.watch(
                    f"{prefix}mn{node.node_id}.nic", node.nic, self.engine
                )
                self.obs.watch(
                    f"{prefix}mn{node.node_id}.cpu", node.controller.cpu,
                    self.engine,
                )
            self.obs.watch(f"{prefix}budget", self.budget, self.engine)

        self.global_weights = GlobalWeights(
            num_experts=self.config.num_experts,
            learning_rate=self.config.learning_rate,
        )
        self.controller.register(
            "update_weights", self.global_weights.handle_update, cpu_us=0.5
        )
        if self.obs is not None:
            self._wire_weight_metrics(obs_id)

        self.counters = CounterSet()
        if self.obs is not None:
            self.obs.bridge_counters(self.counters, component="cluster",
                                     cluster=obs_id)
        self.object_count = 0
        self.clients: List[DittoClient] = []
        # Client ids are monotonic so a departed client's id (and its grant
        # log at the controllers) is never silently reused by a newcomer.
        self._next_client_id = 0
        #: Replicated controller group (``repro.core.consensus``); stays
        #: None — with zero overhead and byte-identical outputs — unless
        #: ``controller_replicas`` > 0 or :meth:`enable_controller_ha` runs.
        self.consensus: Optional[ControllerGroup] = None
        self._cluster_consensus = None
        self._metadata: Optional[MetadataState] = None
        self._raft_params = raft_params
        if controller_replicas:
            self.enable_controller_ha(controller_replicas, params=raft_params)
        self.add_clients(num_clients)

    def _wire_weight_metrics(self, obs_id: str) -> None:
        """Publish global expert-weight updates to the metrics/trace layer."""
        registry = self.obs.registry
        updates = registry.counter(
            "adaptive.updates", component="controller", cluster=obs_id
        )
        gauges = [
            registry.gauge("adaptive.weight", policy=policy, cluster=obs_id)
            for policy in self.config.policies
        ]
        tracer = self.tracer

        def on_update(weights):
            updates.add(1)
            for gauge, weight in zip(gauges, weights):
                gauge.set(weight)
            if tracer is not None:
                tracer.instant(
                    "adaptive.update", "controller",
                    {"weights": [round(w, 4) for w in weights]},
                )

        self.global_weights.on_update = on_update

    #: Back-compat alias; the schema lives in :mod:`repro.core.geometry`.
    _ext_schema = staticmethod(ext_schema)

    def make_endpoint(self, client) -> "RdmaEndpoint":
        """Build the verb transport for one client — the substrate seam.

        The sim cluster hands out :class:`~repro.rdma.verbs.RdmaEndpoint`s
        over its memory pool; :class:`repro.runtime.cluster.RealCluster`
        overrides this same hook with socket/shared-memory endpoints, and
        :class:`~repro.core.client.DittoClient` never knows the difference
        (DESIGN §3.7).
        """
        return RdmaEndpoint(
            self.engine,
            self.pool,
            self.params,
            counters=self.counters,
            faults=self.fault_injector,
            tracer=client.tracer,
        )

    # -- elasticity knobs --------------------------------------------------

    def add_clients(self, n: int) -> List[DittoClient]:
        """Scale compute: new client threads join with no data movement."""
        new = []
        for _ in range(n):
            client = DittoClient(
                self, client_id=self._next_client_id, seed=self.seed
            )
            self._next_client_id += 1
            new.append(client)
        self.clients.extend(new)
        return new

    def remove_clients(self, n: int) -> None:
        """Scale compute down: departing clients release their grants.

        A graceful leave runs the same reconciliation as crash recovery —
        undo markers, grant diff, allocator adoption — then reassigns the
        leaver's grant-log entries to the survivor, so nothing stays parked
        under an id that no longer exists.  (The old implementation just
        dropped the client objects, leaking their segments forever.)
        """
        if n > len(self.clients) - 1:
            raise ValueError("cannot remove all clients")
        departing = self.clients[len(self.clients) - n :]
        del self.clients[len(self.clients) - n :]
        survivor = next((c for c in self.clients if not c.dead), None)
        for client in departing:
            if client.dead:
                continue  # crashed earlier; recovery already owns its state
            client.dead = True
            if survivor is None:
                continue  # nobody left to absorb; the sweep will flag leaks
            self.engine.run_process(self._release_client(client, survivor))

    def _release_client(self, leaving, survivor):
        """Graceful client departure: crash reconciliation without the
        detection delay, plus grant-log reassignment to the survivor."""
        try:
            yield from self.recover_client(leaving, survivor)
            for node in list(self.nodes):
                if node not in self.nodes:
                    continue  # removed by a concurrent drain
                yield from self._recovery_rpc(
                    survivor, node, "reassign_grants",
                    (leaving.client_id, survivor.client_id),
                )
            self.counters.add("client_leave")
        except RdmaFaultError:
            pass  # counted as crash_recovery_failed; sweep reports leftovers

    def resize_memory(self, capacity_objects: int) -> None:
        """Scale the memory *budget* (no node set change, so no migration).

        Growth is bounded by the provisioned pool
        (``max_capacity_objects``).  Shrinking starts a background eviction
        process that actively converges usage to the new limit instead of
        waiting for future inserts to squeeze it down, bounding the
        over-budget window (counter ``shrink_evicted_bytes``).
        """
        if capacity_objects > self.max_capacity_objects:
            raise ValueError(
                f"cannot grow to {capacity_objects} objects: pool provisioned "
                f"for {self.max_capacity_objects} (set max_capacity_objects)"
            )
        self.capacity_objects = capacity_objects
        self.budget.resize(capacity_objects * self.block_bytes_per_object)
        if self.budget.over_limit:
            self._start_shrink()

    def _start_shrink(self) -> None:
        if self._shrink_proc is not None and not self._shrink_proc.finished:
            return  # an earlier shrink is still converging
        self._shrink_proc = self.engine.spawn(
            self._shrink_process(), name="shrink_evictor"
        )

    def _shrink_process(self):
        """Evict until the cache fits the reduced budget.

        Runs the normal sampled-eviction path through a live client, so the
        adaptive policy chooses the victims; bails out after repeated
        failures (everything pinned by faults) rather than spinning."""
        failures = 0
        t0 = self.engine.now
        while self.budget.over_limit:
            client = next((c for c in self.clients if not c.dead), None)
            if client is None:
                break
            before = self.budget.used_bytes
            try:
                evicted = yield from client._evict_once()
            except RdmaFaultError:
                evicted = False
            if evicted:
                failures = 0
                self.counters.add("shrink_evictions")
                self.counters.add(
                    "shrink_evicted_bytes",
                    max(0, before - self.budget.used_bytes),
                )
            else:
                failures += 1
                if failures > self.config.max_retries:
                    break
                backoff = self.config.retry_backoff_us or 20.0
                yield Timeout(backoff)
        if self.tracer is not None:
            self.tracer.complete_at(
                "memory.shrink", "cluster", t0, self.engine.now - t0,
                args={"limit_bytes": self.budget.limit_bytes,
                      "used_bytes": self.budget.used_bytes},
            )

    # -- elastic memory nodes (epoch-fenced membership) ---------------------

    def _ensure_elastic(self) -> None:
        """Arm the membership table and epoch fence (first scale event).

        Lazy on purpose: until the node set actually changes, the fence
        stays None and every verb takes the unfenced fast path, keeping
        default runs byte-identical to the pre-elasticity build.
        """
        if self.membership is not None:
            return
        self.membership = MembershipTable(n.node_id for n in self.nodes)
        self.fence = EpochFence()
        # Fenced verbs are checked at issue time per verb; once elasticity
        # arms, the engine stays on the scalar event loop.
        self.engine.disable_batch("epoch-fence")
        # Clients learn the table from the metadata service on node 0; a
        # fenced verb NACKs with StaleEpoch and the client refreshes.
        self.controller.register(
            "get_membership", lambda _payload: self.membership.snapshot(),
            cpu_us=0.5,
        )
        for client in self.clients:
            client.ep.fence = self.fence
        if self.obs is not None:
            obs_id = str(self.tracer.pid) if self.tracer is not None else "0"
            self._epoch_gauge = self.obs.registry.gauge(
                "elastic.epoch", cluster=obs_id
            )

    def enable_controller_ha(
        self, replicas: int = 3, params: Optional[RaftParams] = None
    ) -> ControllerGroup:
        """Arm replicated controller metadata (DESIGN §3.6).

        Builds a :class:`~repro.core.consensus.ControllerGroup` of
        ``replicas`` raft-style state machines over the cluster's *physical*
        metadata — the live :class:`MembershipTable` and every controller's
        :class:`~repro.memory.controller.SegmentState`, shared by reference.
        From here on, segment-management and membership RPCs from clients
        and migrators route through the group (majority commit, leader
        redirects, session dedup) instead of the single controller on node
        0, so any minority of controller replicas can crash or partition —
        even mid-drain — without losing metadata or blocking the cluster.
        """
        if self.consensus is not None:
            raise RuntimeError("controller HA is already enabled")
        if replicas < 1:
            raise ValueError("need at least one controller replica")
        self._ensure_elastic()
        metadata = MetadataState(self.membership)
        for node in self.nodes:
            metadata.adopt_node(node.controller.state)
        # The adaptive expert weights are metadata too: adopting the live
        # GlobalWeights by reference makes the physical state machine fold
        # committed "update_weights" entries into the same object the
        # node-0 RPC handler serves, while replicas carry their own copies
        # — a leader crash no longer loses the learned weights.
        metadata.adopt_weights(self.global_weights)
        self._metadata = metadata
        self.consensus = ControllerGroup(
            self.engine, metadata, replicas, self.seed,
            params=params if params is not None else self._raft_params,
            faults=self.fault_injector, counters=self.counters,
            tracer=self.tracer,
        )
        for client in self.clients:
            if client.ep.consensus is None:
                client.ep.consensus = self.consensus.make_client()
        #: The cluster's own submission handle (add_memory_node etc.).
        self._cluster_consensus = self.consensus.make_client()
        return self.consensus

    def _publish_epoch(self, epoch: int) -> None:
        """Make a new membership epoch visible to fences and controllers."""
        self.fence.advance(epoch)
        for node in self.nodes:
            node.controller.epoch = epoch
        self.counters.add("epoch_bump")
        if self._epoch_gauge is not None:
            self._epoch_gauge.set(epoch)
        if self.tracer is not None:
            self.tracer.instant("membership.epoch", "migrate", {"epoch": epoch})

    def add_memory_node(self, size_bytes: Optional[int] = None) -> MemoryNode:
        """Grow the pool by one memory node (paper §7: elastic MN scaling).

        The node gets a fresh address range above everything ever
        provisioned, joins the membership table at a new epoch, and is
        announced to every client's striped allocator out of band (growth
        needs no fencing: a stale client that hasn't heard simply doesn't
        place data there yet).  Returns the new node.
        """
        self._ensure_elastic()
        node_id = self._next_node_id
        self._next_node_id += 1
        size = size_bytes if size_bytes is not None else self._heap_per_node
        node = MemoryNode(
            self.engine, size=size, base=self._addr_high, node_id=node_id,
            params=self.params,
        )
        Controller(node, cores=1)
        self._addr_high = node.end
        self.nodes.append(node)
        self.pool.add(node)
        for client in self.clients:
            client.alloc.add_node(node)
        if self.consensus is not None:
            # Pre-bind the new controller's state into the physical
            # metadata, then commit the join through the replicated log
            # (replicas build their own copies from the command's range).
            self._metadata.adopt_node(node.controller.state)
            epoch = self.engine.run_process(
                self._cluster_consensus.submit(
                    ("add_node", node_id, node.base, node.end)
                )
            )
        else:
            epoch = self.membership.add(node_id)
        self._publish_epoch(epoch)
        if self.obs is not None:
            obs_id = str(self.tracer.pid) if self.tracer is not None else "0"
            prefix = f"c{obs_id}." if obs_id != "0" else ""
            if self.tracer is not None:
                node.controller.tracer = self.tracer
            self.obs.watch(f"{prefix}mn{node_id}.nic", node.nic, self.engine)
            self.obs.watch(
                f"{prefix}mn{node_id}.cpu", node.controller.cpu, self.engine
            )
        self.counters.add("mn_added")
        return node

    def remove_memory_node(self, node_id: int, on_phase=None):
        """Shrink the pool: drain ``node_id`` live, then retire it.

        Two-phase, epoch-fenced (DESIGN §3.4):

        * **Copy** — the node is marked DRAINING (epoch bump), its heap
          range write-fenced, and its controller stops granting segments.
          A migrator copies objects out hot-data-first (sampled freq /
          recency), installing each move with a CAS on the object's hash
          slot — concurrent client updates win the CAS and cost nothing.
          Reads keep hitting the source copy throughout (degraded mode:
          stale clients read from source until handoff; their writes are
          fenced onto the new owner).
        * **Handoff** — once a full scan moves nothing, a verify pass
          re-scans; when it too is clean, the node flips to RETIRED
          (second epoch bump), its range is fully fenced, and it leaves
          the pool atomically at a single simulated instant.

        Returns the drain :class:`~repro.sim.Process`; timed experiments
        run it concurrently with traffic, ``DittoCache`` runs it to
        completion.  ``on_phase(phase)`` fires at "copy", "handoff", and
        "done"/"aborted" (fault-injection hooks).
        """
        self._ensure_elastic()
        node = next((n for n in self.nodes if n.node_id == node_id), None)
        if node is None:
            raise ValueError(f"no memory node with id {node_id}")
        if node is self.node:
            raise ValueError(
                "node 0 hosts the hash table and global metadata; it cannot "
                "be removed"
            )
        if len(self.nodes) < 2:
            raise ValueError("cannot remove the last memory node")
        if self.membership.state(node_id) != ACTIVE:
            raise ValueError(f"node {node_id} is already draining or retired")
        if any(m.node.node_id == node_id for m in self._active_migrators):
            raise ValueError(f"node {node_id} already has a drain in flight")
        # Capacity precheck (best effort): the drain must place the node's
        # *live* data on fresh segments from the survivors.  Live bytes on
        # one node are unknown without a scan but cannot exceed either the
        # node's granted bytes or the cluster-wide budget usage; a shortfall
        # against that bound would wedge the copy mid-way, so refuse up
        # front.  (A mid-drain shortfall still aborts safely — the node
        # reverts to ACTIVE.)
        granted = sum(
            size
            for segs in node.controller.granted_segments().values()
            for _addr, size in segs
        )
        need = min(granted, self.budget.used_bytes)
        have = sum(
            n.controller.bytes_remaining for n in self.nodes if n is not node
        )
        if have < need:
            raise MigrationError(
                f"cannot drain node {node_id}: survivors have {have} bytes "
                f"free but up to {need} live bytes may need relocation"
            )
        if self.consensus is None:
            epoch = self.membership.set_state(node_id, DRAINING)
            self.fence.fence_writes(node.base, node.end, node_id)
            self._publish_epoch(epoch)
            node.controller.draining = True
        else:
            # Controller HA: the DRAINING flip must replicate before the
            # drain proceeds, and commits need sim time — the migrator
            # commits it as its first step (epoch_start is provisional
            # until then).
            epoch = self.membership.epoch
        record = MigrationRecord(
            node_id=node_id, epoch_start=epoch, started_us=self.engine.now
        )
        self.migrations.append(record)
        migrator = Migrator(self, node, record, on_phase=on_phase)
        self._active_migrators.append(migrator)
        self.counters.add("mn_remove_started")
        return self.engine.spawn(migrator.drain(), name=f"drain_mn{node_id}")

    def _finish_drain(self, migrator, epoch=None) -> Optional[DittoClient]:
        """Atomic handoff: retire the drained node and purge references.

        Called by the migrator after two consecutive clean scans, with no
        yields — membership flip, fence, pool removal, and allocator purge
        all land at one simulated instant, so no verb can observe a
        half-retired node.  Returns the survivor that adopts the migrator's
        allocator (grant-log reassignment follows via RPC in the drain
        process), or None if every client is dead.
        """
        node = migrator.node
        if epoch is None:
            epoch = self.membership.set_state(node.node_id, RETIRED)
        # (Under controller HA the flip already committed through the log,
        # which mutated this same membership table; ``epoch`` carries it.)
        self.fence.retire(node.base, node.end, node.node_id)
        self._publish_epoch(epoch)
        migrator.record.epoch_end = epoch
        for client in self.clients:
            client.alloc.drop_node(node)
        migrator.alloc.drop_node(node)
        self.pool.remove(node)
        self.nodes.remove(node)
        self._active_migrators.remove(migrator)
        self.counters.add("mn_removed")
        survivor = next((c for c in self.clients if not c.dead), None)
        if survivor is not None:
            survivor.alloc.adopt(migrator.alloc)
        return survivor

    def _abort_drain(self, migrator, epoch=None) -> Optional[DittoClient]:
        """Back out of a drain that cannot complete: the node returns to
        ACTIVE at a new epoch and the write fence lifts.  Objects already
        copied off stay where they landed (moving them back would be wasted
        work); the migrator's allocator state goes to a survivor so every
        byte stays accounted.  Synchronous, like :meth:`_finish_drain`."""
        node = migrator.node
        if epoch is None:
            epoch = self.membership.set_state(node.node_id, ACTIVE)
        self.fence.lift_writes(node.node_id)
        self._publish_epoch(epoch)
        node.controller.draining = False
        migrator.record.epoch_end = epoch
        migrator.record.phase = "aborted"
        self._active_migrators.remove(migrator)
        self.counters.add("mn_remove_aborted")
        survivor = next((c for c in self.clients if not c.dead), None)
        if survivor is not None:
            survivor.alloc.adopt(migrator.alloc)
        return survivor

    # -- crash recovery (fault injection only) ------------------------------

    def crash_client(self, index: int) -> None:
        """Record that client ``index`` died and schedule its recovery.

        The caller (normally :meth:`repro.bench.runner.Harness` acting on a
        :class:`~repro.sim.faults.ClientCrash` event) kills the client's
        driver process at a yield boundary; this method handles the cluster
        side: mark the client dead and, after ``crash_detect_us`` (the
        liveness-lease expiry of the out-of-band quota service), have a
        surviving client reclaim whatever the dead one leaked.
        """
        client = self.clients[index]
        if client.dead:
            return
        client.dead = True
        self.counters.add("client_crash")
        self.engine.spawn(
            self._recovery_process(client), name=f"recover_client_{index}"
        )

    def _recovery_process(self, dead):
        yield Timeout(self.config.crash_detect_us)
        survivor = next((c for c in self.clients if not c.dead), None)
        if survivor is None:
            return  # nobody left to recover; the sweep will flag leaks
        try:
            yield from self.recover_client(dead, survivor)
        except RdmaFaultError:
            # Recovery gave up after exhausting its generous retry budget
            # (counter ``crash_recovery_failed``); don't unwind the engine.
            pass

    def recover_client(self, dead, survivor):
        """Reclaim everything a crashed client leaked, as ``survivor``.

        Three steps, mirroring what a real deployment's lease-based
        metadata service enables:

        1. *Undo log*: the dead client's in-flight op markers
           (``_pending_block``/``_pending_budget``) name the block and
           budget it held but had not committed; return both.
        2. *Grant reconciliation*: ask every controller for the dead
           client's segment grants (``list_segments`` RPC) and diff against
           its client-side records — a grant the client never learned about
           (killed mid-RPC) is returned via ``free_segment``.
        3. *Adoption*: the survivor absorbs the dead allocator's free
           lists, bump remainder, and spare regions so the memory stays
           usable.
        """
        if dead._pending_block is not None:
            addr, span = dead._pending_block
            dead._pending_block = None
            survivor.alloc.free(addr, span)
            self.counters.add("crash_block_reclaimed")
        if dead._pending_budget:
            self.budget.release(dead._pending_budget)
            dead._pending_budget = 0
        for node in self.nodes:
            granted = yield from self._recovery_rpc(
                survivor, node, "list_segments", dead.client_id
            )
            dead_alloc = dead.alloc.allocator_for_node(node)
            recorded = set(dead_alloc.segments)
            for addr, size in granted:
                if (addr, size) in recorded:
                    continue
                # In-flight grant: the controller handed it out but the
                # client died before the response landed.
                yield from self._recovery_rpc(
                    survivor, node, "free_segment", (addr, size)
                )
                self.counters.add("crash_segment_returned")
        survivor.alloc.adopt(dead.alloc)
        self.counters.add("crash_recovery")

    def _recovery_rpc(self, survivor, node, op, payload):
        """A recovery RPC with (generous) fault retries: recovery itself can
        run inside the fault window that caused the crash."""
        attempt = 0
        while True:
            try:
                if survivor.ep.consensus is not None:
                    command = (op, node.node_id) + (
                        payload if isinstance(payload, tuple) else (payload,)
                    )
                    result = yield from survivor.ep.consensus.submit(command)
                else:
                    result = yield from survivor.ep.rpc(node, op, payload)
                return result
            except RdmaFaultError:
                attempt += 1
                if attempt > 1000:
                    # Persistently unreachable; give up rather than spin the
                    # engine forever.  The invariant sweep will report the
                    # unreconciled state.
                    self.counters.add("crash_recovery_failed")
                    raise
                self.counters.add("fault_retry")
                delay = survivor._backoff_us(min(attempt, 8))
                if delay > 0.0:
                    yield Timeout(delay)

    # -- aggregated statistics ----------------------------------------------

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.clients)

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.clients)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
            "objects": self.object_count,
            "evictions": sum(c.evictions for c in self.clients),
            "regrets": sum(c.regrets for c in self.clients),
            "used_bytes": self.budget.used_bytes,
            "limit_bytes": self.budget.limit_bytes,
            "sim_time_us": self.engine.now,
            **{k: float(v) for k, v in self.counters.as_dict().items()},
        }


def _to_bytes(data: Union[str, bytes]) -> bytes:
    if isinstance(data, str):
        return data.encode("utf-8")
    if isinstance(data, (bytes, bytearray, memoryview)):
        return bytes(data)
    raise TypeError(f"keys/values must be str or bytes, got {type(data).__name__}")


class DittoCache:
    """Synchronous cache API over a Ditto deployment (instant mode).

    >>> cache = DittoCache(capacity_objects=1024)
    >>> cache.set("user:1", b"alice")
    >>> cache.get("user:1")
    b'alice'

    Keys and values are ``str`` or ``bytes``.  Operations round-robin across
    the configured client threads so metadata updates and adaptive weights
    behave as in a multi-client deployment.
    """

    def __init__(
        self,
        capacity_objects: int = 4096,
        object_bytes: int = 256,
        policies: Tuple[str, ...] = ("lru", "lfu"),
        num_clients: int = 1,
        seed: int = 0,
        params: Optional[NetworkParams] = None,
        max_capacity_objects: Optional[int] = None,
        num_memory_nodes: int = 1,
        **config_kwargs,
    ):
        config = DittoConfig(policies=tuple(policies), **config_kwargs)
        self.cluster = DittoCluster(
            capacity_objects=capacity_objects,
            object_bytes=object_bytes,
            num_clients=num_clients,
            config=config,
            params=params,
            seed=seed,
            max_capacity_objects=max_capacity_objects,
            num_memory_nodes=num_memory_nodes,
        )
        self._next_client = 0

    def _client(self) -> DittoClient:
        client = self.cluster.clients[self._next_client]
        self._next_client = (self._next_client + 1) % len(self.cluster.clients)
        return client

    def _run(self, gen):
        return self.cluster.engine.run_process(gen)

    # -- cache operations ---------------------------------------------------

    def set(self, key: Union[str, bytes], value: Union[str, bytes]) -> None:
        self._run(self._client().set(_to_bytes(key), _to_bytes(value)))

    def get(self, key: Union[str, bytes]) -> Optional[bytes]:
        return self._run(self._client().get(_to_bytes(key)))

    def delete(self, key: Union[str, bytes]) -> bool:
        return self._run(self._client().delete(_to_bytes(key)))

    def get_or_load(self, key: Union[str, bytes], loader) -> bytes:
        """Cache-aside helper: on a miss, call ``loader()`` and cache it."""
        value = self.get(key)
        if value is None:
            value = _to_bytes(loader())
            self.set(key, value)
        return value

    def __contains__(self, key: Union[str, bytes]) -> bool:
        # Peek without perturbing hotness: check then compensate is not
        # possible remotely, so __contains__ is an ordinary Get.
        return self.get(key) is not None

    def __len__(self) -> int:
        return self.cluster.object_count

    # -- elasticity ----------------------------------------------------------

    def scale_clients(self, num_clients: int) -> None:
        current = len(self.cluster.clients)
        if num_clients > current:
            self.cluster.add_clients(num_clients - current)
        elif num_clients < current:
            self.cluster.remove_clients(current - num_clients)
        self._next_client = 0

    def resize(self, capacity_objects: int) -> None:
        self.cluster.resize_memory(capacity_objects)
        if self.cluster.budget.over_limit:
            # Instant mode: drive the background shrink evictor until usage
            # converges to the reduced budget before returning.
            self.cluster.engine.run()

    def add_memory_node(self) -> int:
        """Grow the memory pool by one node; returns the new node's id."""
        return self.cluster.add_memory_node().node_id

    def remove_memory_node(self, node_id: int) -> Dict:
        """Drain and retire a memory node, blocking until migration ends.

        Returns the migration record as a dict (phase, migrated bytes and
        objects, epoch span).  Raises if the drain aborted.
        """
        self.cluster.remove_memory_node(node_id)
        self.cluster.engine.run()
        record = self.cluster.migrations[-1]
        if record.phase != "done":
            raise RuntimeError(
                f"drain of node {node_id} ended in phase {record.phase!r}"
            )
        return record.as_dict()

    # -- introspection --------------------------------------------------------

    def hit_rate(self) -> float:
        return self.cluster.hit_rate()

    def stats(self) -> Dict[str, float]:
        return self.cluster.stats()

    @property
    def expert_weights(self) -> Dict[str, float]:
        """Current global expert weights (adaptive caching state)."""
        return dict(
            zip(self.cluster.config.policies, self.cluster.global_weights.weights)
        )
