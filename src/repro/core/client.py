"""The Ditto client: Get/Set/Delete over one-sided verbs (paper §4).

Each client thread in the compute pool owns a :class:`DittoClient`.  All
operations are generators driven by the simulation engine; they touch the
memory pool **only** through RDMA verbs, exactly as the paper's
client-centric framework requires:

- *Get*: one READ for the bucket, one READ for the object, then asynchronous
  metadata updates (a WRITE for the stateless timestamps, an FAA for ``freq``
  — usually absorbed by the frequency-counter cache).
- *Set*: bucket READ, object WRITE into a freshly allocated block, and a CAS
  on the slot's atomic field; the 32-byte metadata field follows with one
  WRITE.
- *Eviction*: one READ samples ``K`` consecutive slots of the
  sample-friendly hash table; every expert computes priorities locally; the
  victim of the weight-chosen expert is retired into an embedded history
  entry (FAA on the global history counter + CAS on the victim slot).
- *Regret collection* rides on the Get miss path: history entries in the
  already-fetched bucket are matched by key hash, ages checked against the
  cached history counter, and penalties buffered for the lazy weight update.

The ablation switches in :class:`~repro.core.config.DittoConfig` swap these
fast paths for their naive counterparts (scattered metadata, remote FIFO
history, per-regret RPCs, no FC cache) to reproduce Figure 24.
"""

from __future__ import annotations

import random
import struct
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..memory import ClientAllocator, OutOfMemoryError, StripedAllocator
from ..memory.node import BLOCK_SIZE
from ..rdma.verbs import (
    NodeUnavailable,
    RdmaFaultError,
    StaleEpoch,
)
from ..sim import Timeout
from . import layout as L
from .elasticity import ACTIVE
from .retry import backoff_us
from .adaptive import ExpertWeights, bitmap_of
from .fc_cache import FrequencyCounterCache
from .history import HISTORY_WRAP, history_age, is_expired
from .policies import Metadata, make_policy

_U64 = struct.Struct("<Q")

#: Refresh the cached global history counter every this many misses.
COUNTER_REFRESH_PERIOD = 64


class CacheOperationError(RuntimeError):
    """An operation failed permanently (retry budget or deadline exhausted).

    Carries the operation, key, and attempt context so a failed run is
    debuggable: ``op``/``key``/``reason``/``attempts``/``fault_attempts``/
    ``elapsed_us`` and the underlying fault in ``cause`` (if any).
    """

    def __init__(
        self,
        op: str,
        key: bytes,
        reason: str,
        attempts: int = 0,
        fault_attempts: int = 0,
        elapsed_us: float = 0.0,
        cause: Optional[BaseException] = None,
    ):
        self.op = op
        self.key = key
        self.reason = reason
        self.attempts = attempts
        self.fault_attempts = fault_attempts
        self.elapsed_us = elapsed_us
        self.cause = cause
        detail = f"{op}({key!r}) {reason} [attempts={attempts}"
        if fault_attempts:
            detail += f", fault_attempts={fault_attempts}"
        detail += f", elapsed={elapsed_us:.1f}us"
        if cause is not None:
            detail += f", cause={cause!r}"
        super().__init__(detail + "]")


def encode_ext(fields: Sequence[str], ext: Dict[str, float]) -> bytes:
    """Serialize extension metadata (8-byte float per declared field)."""
    return struct.pack(
        "<%dd" % len(fields), *(ext.get(name, 0.0) for name in fields)
    )


def decode_ext(fields: Sequence[str], raw: bytes) -> Dict[str, float]:
    values = struct.unpack_from("<%dd" % len(fields), raw)
    return dict(zip(fields, values))


class DittoClient:
    """One client thread of a Ditto deployment.

    ``cluster`` provides the shared context: engine, layout, memory pool and
    node, budget, config, counters, global weights RPC, and (for the LWH
    ablation) the remote FIFO history.  See ``repro.core.cache.DittoCluster``.
    """

    def __init__(self, cluster, client_id: int, seed: int = 0):
        self.cluster = cluster
        self.client_id = client_id
        self.engine = cluster.engine
        self.layout = cluster.layout
        self.config = cluster.config
        self.budget = cluster.budget
        self.node = cluster.node
        self.rng = random.Random((seed * 1_000_003 + client_id) & 0xFFFFFFFF)
        self.counters = cluster.counters
        # Observability (repro.obs): tracer/histograms are None unless the
        # cluster was built under an active hub — the inert default.
        self.tracer = getattr(cluster, "tracer", None)
        obs = getattr(cluster, "obs", None)
        if obs is not None:
            self._hist_get = obs.registry.histogram(
                "op.latency", component="client", verb="get"
            )
            self._hist_set = obs.registry.histogram(
                "op.latency", component="client", verb="set"
            )
        else:
            self._hist_get = None
            self._hist_set = None
        # The substrate seam: the cluster decides whether verbs run against
        # the sim engine (RdmaEndpoint) or live processes (RealEndpoint).
        self.ep = cluster.make_endpoint(self)
        self.alloc = StripedAllocator(
            self.ep, cluster.nodes, cluster.segment_bytes, owner=client_id
        )
        #: Epoch of the client's cached membership view; refreshed via the
        #: ``get_membership`` RPC when a verb NACKs with StaleEpoch.
        self.membership_epoch = 0
        fence = getattr(cluster, "fence", None)
        if fence is not None:
            # Joining after the cluster's first membership change: arm the
            # fence and start from the current membership view.
            self.ep.fence = fence
            self.alloc.set_active(cluster.membership.active_ids())
            self.membership_epoch = cluster.membership.epoch
        group = getattr(cluster, "consensus", None)
        if group is not None:
            # Controller HA armed: metadata RPCs go through the replicated
            # controller group under this client's own dedup session.
            self.ep.consensus = group.make_client()
        self.policies = [make_policy(name) for name in self.config.policies]
        self.ext_fields: Tuple[str, ...] = cluster.ext_fields
        self.ext_bytes = 8 * len(self.ext_fields)
        self.weights = ExpertWeights(
            num_experts=len(self.policies),
            history_size=cluster.history_size,
            learning_rate=self.config.learning_rate,
            batch_size=self.config.weight_update_batch if self.config.use_lwu else 1,
            rng=self.rng,
            selection=self.config.selection,
        )
        self.fc = FrequencyCounterCache(
            capacity_bytes=self.config.fc_capacity_bytes,
            threshold=self.config.fc_threshold,
        )
        self._counter_cache = 0
        self._counter_fresh = False
        # -- fault tolerance ------------------------------------------------
        #: True once this client has been crashed by fault injection.
        self.dead = False
        #: Block allocated for the in-flight op but not yet linked into the
        #: table (or freed); reclaimed by crash recovery if we die here.
        self._pending_block: Optional[Tuple[int, int]] = None
        #: Budget consumed for the in-flight op but not yet committed.
        self._pending_budget = 0
        #: Lease repair is active only when the cluster injects faults: maps
        #: suspect slot addr -> (atomic value, first seen at).
        self._repair_enabled = getattr(cluster, "fault_injector", None) is not None
        self._suspects: Dict[int, Tuple[int, float]] = {}
        # -- statistics -----------------------------------------------------
        self.hits = 0
        self.misses = 0
        self.regrets = 0
        self.evictions = 0
        self.forced_bucket_evictions = 0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _now(self) -> int:
        return int(self.engine.now)

    def _backoff_us(self, fault_attempt: int) -> float:
        """Exponential backoff with jitter for fault retry ``fault_attempt``
        (1-based).  Returns 0 when backoff is disabled."""
        return backoff_us(
            fault_attempt,
            base=self.config.retry_backoff_us,
            ceiling=self.config.retry_backoff_max_us,
            jitter=self.config.retry_jitter,
            rng=self.rng,
        )

    def _refresh_membership(self) -> Generator:
        """Fetch the current membership table after a StaleEpoch NACK.

        One RPC to the metadata service on node 0; the striped allocator
        then stops placing fresh data on draining/retired nodes.  Reads are
        unaffected (they keep hitting the source copy until handoff), so
        refreshing only reroutes *writes* — the documented degraded mode of
        a drain.
        """
        if self.ep.consensus is not None:
            epoch, entries = yield from self.ep.consensus.submit(
                ("get_membership",)
            )
        else:
            epoch, entries = yield from self.ep.rpc(
                self.node, "get_membership", None
            )
        self.alloc.set_active(
            [nid for nid, state in entries if state == ACTIVE]
        )
        self.membership_epoch = epoch
        self.counters.add("membership_refresh")
        if self.tracer is not None:
            self.tracer.instant(
                "membership.refresh", "client", {"epoch": epoch}
            )

    def _read_bucket(self, bucket: int) -> Generator:
        """Fetch and parse all slots of a bucket.

        With the sample-friendly hash table this is one READ.  Without it
        (Figure 24 ablation) the index holds only atomic fields and the
        access information is scattered with the objects, so the bucket read
        is smaller but every candidate costs an extra metadata READ later.
        """
        lay = self.layout
        addr = lay.bucket_addr(bucket)
        span = lay.slots_per_bucket * L.SLOT_SIZE
        if self.config.use_sfht:
            raw = yield from self.ep.read(addr, span)
        else:
            # atomic fields only; metadata arrives via per-slot reads below.
            yield from self.ep.read(addr, lay.slots_per_bucket * 8)
            raw = self.node.read_bytes(addr, span)
        return L.parse_slots(bucket * lay.slots_per_bucket, addr, raw, lay.slots_per_bucket)

    def _metadata_of(self, slot: L.Slot, ext: Optional[Dict[str, float]] = None) -> Metadata:
        return Metadata(
            size=slot.object_bytes,
            insert_ts=slot.insert_ts,
            last_ts=slot.last_ts,
            freq=slot.freq,
            ext=ext if ext is not None else {},
        )

    def _read_ext(self, slot: L.Slot) -> Generator:
        """Fetch extension metadata stored ahead of the object (§4.4)."""
        raw = yield from self.ep.read(
            slot.pointer + L.OBJECT_HEADER_SIZE, self.ext_bytes
        )
        return decode_ext(self.ext_fields, raw)

    def _touch(self, key: bytes, slot: L.Slot, ext_raw: bytes) -> None:
        """Asynchronous metadata updates after a hit (off the critical path)."""
        now = self._now()
        self.ep.post_write(slot.addr + L.LAST_TS_OFF, _U64.pack(now))
        if not self.config.use_sfht:
            # Un-grouped access information: a second WRITE per update.
            self.ep.post_write(slot.addr + L.INSERT_TS_OFF, _U64.pack(slot.insert_ts))
        for addr, delta in self.fc.record(key, slot.addr + L.FREQ_OFF, self.engine.now):
            self.ep.post_faa(addr, delta)
        if self.ext_fields:
            ext = decode_ext(self.ext_fields, ext_raw) if ext_raw else {}
            meta = self._metadata_of(slot, ext)
            meta.freq += 1
            for policy in self.policies:
                policy.update(meta, now)
            self.ep.post_write(
                slot.pointer + L.OBJECT_HEADER_SIZE,
                encode_ext(self.ext_fields, meta.ext),
            )

    # ------------------------------------------------------------------
    # Get
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Generator:
        """Look up ``key``; returns the value bytes or None on a miss.

        Degrades instead of failing: a verb lost to fault injection is
        retried with backoff, and an unreachable memory node (or exhausted
        retry budget) turns the lookup into a miss — the caller refills the
        cache from the backing store rather than aborting the run.
        """
        fault_attempts = 0
        stale_refreshes = 0
        need_refresh = False
        tracer = self.tracer
        hist = self._hist_get
        t0 = self.engine._now if tracer is not None or hist is not None else 0.0
        while True:
            try:
                if need_refresh:
                    # Inside the try so a faulted refresh RPC routes through
                    # the same handlers as any other verb of this Get.
                    need_refresh = False
                    yield from self._refresh_membership()
                result = yield from self._get_once(key)
                if tracer is not None:
                    tracer.complete(
                        "op.get", "client", t0, {"hit": result is not None}
                    )
                if hist is not None:
                    hist.record(self.engine._now - t0)
                return result
            except StaleEpoch:
                stale_refreshes += 1
                if stale_refreshes > self.config.epoch_retries:
                    break  # membership churning faster than we can follow
                self.counters.add("stale_epoch_retry")
                need_refresh = True
            except NodeUnavailable:
                # The MN is down for a whole outage window; retrying within
                # one op is pointless.  Miss through and move on.
                break
            except RdmaFaultError:
                fault_attempts += 1
                if fault_attempts > self.config.fault_retries:
                    break
                self.counters.add("fault_retry")
                if tracer is not None:
                    tracer.instant(
                        "op.retry", "client",
                        {"op": "get", "attempt": fault_attempts},
                    )
                delay = self._backoff_us(fault_attempts)
                if delay > 0.0:
                    yield Timeout(delay)
        self.counters.add("fault_miss_through")
        self.misses += 1
        if tracer is not None:
            tracer.complete(
                "op.get", "client", t0, {"hit": False, "faulted": True}
            )
        if hist is not None:
            hist.record(self.engine._now - t0)
        return None

    def _get_once(self, key: bytes) -> Generator:
        key_hash = L.stable_hash64(key)
        fp = L.fingerprint(key_hash)
        bucket = self.layout.bucket_index(key_hash)
        slots = yield from self._read_bucket(bucket)
        for slot in slots:
            if not (slot.is_object and slot.fp == fp):
                continue
            raw = yield from self.ep.read(slot.pointer, slot.object_bytes)
            try:
                found_key, value, ext_raw = L.decode_object(raw)
            except (ValueError, struct.error):
                continue  # lost a race with a concurrent rewrite of the block
            if found_key == key:
                self._touch(key, slot, ext_raw)
                self.hits += 1
                return value
        if self._repair_enabled:
            yield from self._repair_suspects(slots)
        yield from self._handle_miss(slots, key_hash)
        self.misses += 1
        return None

    def _handle_miss(self, slots: List[L.Slot], key_hash: int) -> Generator:
        """Regret collection on the miss path (paper §4.3.1)."""
        if not self.config.adaptive:
            return
        if self.config.use_lwh:
            if (
                not self._counter_fresh
                or (self.misses % COUNTER_REFRESH_PERIOD) == 0
            ):
                raw = yield from self.ep.read(self.layout.history_counter_addr, 8)
                self._counter_cache = _U64.unpack(raw)[0] % HISTORY_WRAP
                self._counter_fresh = True
            for slot in slots:
                if not slot.is_history or slot.key_hash != key_hash:
                    continue
                if is_expired(
                    self._counter_cache, slot.history_id, self.cluster.history_size
                ):
                    continue
                age = history_age(self._counter_cache, slot.history_id)
                # Mask to the expert count: the bitmap write is asynchronous,
                # so a just-retired entry can briefly expose a stale word.
                mask = (1 << len(self.policies)) - 1
                yield from self._apply_regret(slot.expert_bitmap & mask, age)
                break
        else:
            # Remote FIFO history (ablation): every miss pays an index READ.
            remote = self.cluster.remote_history
            yield from self.ep.read(remote.tail_addr, 8)
            entry = remote.lookup(key_hash)
            if entry is not None:
                history_id, bitmap = entry
                yield from self.ep.read(remote.entry_addr(history_id), 40)
                yield from self._apply_regret(bitmap, 0)

    def _apply_regret(self, expert_bitmap: int, age: int) -> Generator:
        self.regrets += 1
        if self.weights.apply_regret(expert_bitmap, age):
            sums = self.weights.take_pending()
            if self.ep.consensus is not None:
                # Controller HA: fold the penalty sums through the
                # replicated log so the learned weights survive a leader
                # crash (the session memo keeps retried folds exactly-once).
                new_weights = yield from self.ep.consensus.submit(
                    ("update_weights", tuple(sums))
                )
            else:
                new_weights = yield from self.ep.rpc(
                    self.node, "update_weights", sums, size=8 * len(sums)
                )
            self.weights.set_weights(new_weights)

    # ------------------------------------------------------------------
    # Lease repair (fault injection only)
    # ------------------------------------------------------------------

    def _repair_suspects(self, slots: List[L.Slot]) -> Generator:
        """Reclaim half-installed slots whose metadata write was lost.

        A dropped unsignalled metadata WRITE leaves an object slot with
        ``key_hash == insert_ts == last_ts == 0``: the object exists but can
        never match a lookup by hash.  Any reader that sees such a slot with
        the *same* atomic word twice, ``repair_lease_us`` apart, CASes it
        back to empty and returns the block.  Actively-used objects self-heal
        out of suspicion (a hit re-posts ``last_ts``), and a concurrent
        legitimate rewrite changes the atomic word, which resets the lease.
        """
        now = self.engine.now
        lease = self.config.repair_lease_us
        for slot in slots:
            if not slot.is_object:
                self._suspects.pop(slot.addr, None)
                continue
            if slot.key_hash != 0 or slot.insert_ts != 0 or slot.last_ts != 0:
                self._suspects.pop(slot.addr, None)
                continue
            seen = self._suspects.get(slot.addr)
            if seen is None or seen[0] != slot.atomic:
                self._suspects[slot.addr] = (slot.atomic, now)
                continue
            if now - seen[1] < lease:
                continue
            old = yield from self.ep.cas(slot.addr, slot.atomic, 0)
            del self._suspects[slot.addr]
            if old != slot.atomic:
                continue  # lost the repair race (or the slot got rewritten)
            self.alloc.free(slot.pointer, slot.object_bytes)
            self.budget.release(slot.object_bytes)
            self.cluster.object_count -= 1
            self.counters.add("lease_repair")

    def repair_scan(self) -> Generator:
        """Scrub the whole hash table for abandoned half-installed slots.

        Crash recovery and chaos tests use this; regular traffic repairs
        opportunistically via the Get miss path.  Chunked READs keep verb
        sizes realistic.  Two passes ``repair_lease_us`` apart are needed
        before anything is reclaimed (the lease must expire).
        """
        lay = self.layout
        chunk = 128
        index = 0
        while index < lay.total_slots:
            count = min(chunk, lay.total_slots - index)
            addr = lay.slot_addr(index)
            raw = yield from self.ep.read(addr, count * L.SLOT_SIZE)
            slots = L.parse_slots(index, addr, raw, count)
            yield from self._repair_suspects(slots)
            index += count

    # ------------------------------------------------------------------
    # Set
    # ------------------------------------------------------------------

    def set(self, key: bytes, value: bytes) -> Generator:
        """Insert or update ``key``; evicts as needed to make room.

        CAS races retry up to ``max_retries`` (unchanged from the paper's
        lock-free protocol); injected faults get their own bounded budget
        with exponential backoff + jitter; ``op_deadline_us`` (if set) caps
        the whole operation.  A controller OOM forces an eviction and a
        retry instead of escaping the engine loop.
        """
        start = self.engine.now
        deadline = (
            start + self.config.op_deadline_us
            if self.config.op_deadline_us > 0.0
            else None
        )
        cas_attempts = 0
        fault_attempts = 0
        stale_refreshes = 0
        attempts = 0
        tracer = self.tracer
        hist = self._hist_set
        while True:
            attempts += 1
            try:
                done = yield from self._try_set(key, value)
            except StaleEpoch as err:
                # A membership change fenced one of our verbs (pending block
                # and budget were already rolled back inside _try_set).
                # Refresh the cached view so the allocator reroutes, bounded
                # separately from fault retries: churn is not packet loss.
                stale_refreshes += 1
                if stale_refreshes > self.config.epoch_retries:
                    raise CacheOperationError(
                        "set", key, "membership refresh budget exhausted",
                        attempts=attempts, fault_attempts=fault_attempts,
                        elapsed_us=self.engine.now - start, cause=err,
                    )
                self.counters.add("stale_epoch_retry")
                try:
                    yield from self._refresh_membership()
                except RdmaFaultError:
                    pass  # next attempt fences again; retry budgets still bound us
                done = False
            except OutOfMemoryError as err:
                # Structured failure from the controller's alloc_segment RPC:
                # reclaim space and retry rather than unwinding the run.
                self.counters.add("alloc_oom")
                try:
                    evicted = yield from self._evict_once()
                except RdmaFaultError as fault:
                    # The reclaim itself hit a fault window or a membership
                    # fence; charge the fault budget and retry the op instead
                    # of escaping the handler (nothing would catch it).
                    fault_attempts += 1
                    if fault_attempts > self.config.fault_retries:
                        raise CacheOperationError(
                            "set", key, "fault retries exhausted",
                            attempts=attempts, fault_attempts=fault_attempts,
                            elapsed_us=self.engine.now - start, cause=fault,
                        )
                    self.counters.add("fault_retry")
                    delay = self._backoff_us(fault_attempts)
                    if delay > 0.0:
                        yield Timeout(delay)
                    evicted = True  # outcome unknown; let the retry find out
                if not evicted:
                    raise CacheOperationError(
                        "set", key, "memory nodes exhausted and nothing evictable",
                        attempts=attempts, fault_attempts=fault_attempts,
                        elapsed_us=self.engine.now - start, cause=err,
                    )
                done = False
            except RdmaFaultError as err:
                fault_attempts += 1
                if fault_attempts > self.config.fault_retries:
                    raise CacheOperationError(
                        "set", key, "fault retries exhausted",
                        attempts=attempts, fault_attempts=fault_attempts,
                        elapsed_us=self.engine.now - start, cause=err,
                    )
                self.counters.add("fault_retry")
                if tracer is not None:
                    tracer.instant(
                        "op.retry", "client",
                        {"op": "set", "attempt": fault_attempts},
                    )
                delay = self._backoff_us(fault_attempts)
                if delay > 0.0:
                    yield Timeout(delay)
                done = False
            else:
                if done:
                    if tracer is not None:
                        tracer.complete(
                            "op.set", "client", start, {"attempts": attempts}
                        )
                    if hist is not None:
                        hist.record(self.engine._now - start)
                    return True
                cas_attempts += 1
                if cas_attempts >= self.config.max_retries:
                    raise CacheOperationError(
                        "set", key, "exhausted retries (extreme contention)",
                        attempts=attempts, fault_attempts=fault_attempts,
                        elapsed_us=self.engine.now - start,
                    )
            if deadline is not None and self.engine.now >= deadline:
                raise CacheOperationError(
                    "set", key,
                    f"op deadline ({self.config.op_deadline_us:.0f}us) exceeded",
                    attempts=attempts, fault_attempts=fault_attempts,
                    elapsed_us=self.engine.now - start,
                )

    def _initial_ext(self, size_bytes: int, now: int) -> bytes:
        if not self.ext_fields:
            return b""
        meta = Metadata(size=size_bytes, insert_ts=now, last_ts=now, freq=1)
        for policy in self.policies:
            policy.on_insert(meta, now)
        return encode_ext(self.ext_fields, meta.ext)

    def _try_set(self, key: bytes, value: bytes) -> Generator:
        key_hash = L.stable_hash64(key)
        fp = L.fingerprint(key_hash)
        bucket = self.layout.bucket_index(key_hash)
        now = self._now()
        slots = yield from self._read_bucket(bucket)

        # Update in place if the key is already cached.  The 64-bit key hash
        # in the slot metadata identifies the key without fetching the object,
        # keeping Sets at the paper's three RTTs (READ, WRITE, CAS); a zero
        # hash means the insert's metadata write has not landed yet, so fall
        # back to reading the object.
        for slot in slots:
            if not (slot.is_object and slot.fp == fp):
                continue
            if slot.key_hash != key_hash:
                if slot.key_hash != 0:
                    continue
                raw = yield from self.ep.read(slot.pointer, slot.object_bytes)
                try:
                    found_key, _old_value, _ext = L.decode_object(raw)
                except (ValueError, struct.error):
                    continue
                if found_key != key:
                    continue
            ext_raw = b""
            if self.ext_fields:
                raw = yield from self.ep.read(
                    slot.pointer + L.OBJECT_HEADER_SIZE, self.ext_bytes
                )
                ext_raw = raw
            done = yield from self._update_object(key, value, slot, ext_raw)
            return done

        # Fresh insert.  The budget consumption and the freshly allocated
        # block are recorded as *pending* until the CAS commits; there is no
        # yield between any verb resume and the matching bookkeeping, so the
        # markers exactly capture what a crash at any instant would leak and
        # crash recovery can undo them.
        span = L.object_span(len(key), len(value), self.ext_bytes)
        block_bytes = ClientAllocator.blocks_for(span) * BLOCK_SIZE
        if ClientAllocator.blocks_for(span) > L.MAX_SIZE_BLOCKS:
            raise ValueError(f"object too large for the slot size field: {span}B")
        yield from self._ensure_space(block_bytes)
        self._pending_budget = block_bytes
        try:
            addr = yield from self.alloc.alloc(span)
        except (OutOfMemoryError, RdmaFaultError):
            self.budget.release(block_bytes)
            self._pending_budget = 0
            raise
        self._pending_block = (addr, span)
        ext = self._initial_ext(block_bytes, now)
        try:
            yield from self.ep.write(addr, L.encode_object(key, value, ext))
            new_atomic = L.pack_atomic(addr, fp, ClientAllocator.blocks_for(span))
            done = yield from self._claim_slot(bucket, slots, new_atomic, key_hash, now)
        except RdmaFaultError:
            self.alloc.free(addr, span)
            self.budget.release(block_bytes)
            self._pending_block = None
            self._pending_budget = 0
            raise
        self._pending_block = None
        self._pending_budget = 0
        if not done:
            self.alloc.free(addr, span)
            self.budget.release(block_bytes)
        return done

    def _update_object(
        self, key: bytes, value: bytes, slot: L.Slot, ext_raw: bytes
    ) -> Generator:
        """Replace the value of an existing key (out-of-place + CAS)."""
        span = L.object_span(len(key), len(value), self.ext_bytes)
        block_bytes = ClientAllocator.blocks_for(span) * BLOCK_SIZE
        yield from self._ensure_space(block_bytes)
        self._pending_budget = block_bytes
        try:
            addr = yield from self.alloc.alloc(span)
        except (OutOfMemoryError, RdmaFaultError):
            self.budget.release(block_bytes)
            self._pending_budget = 0
            raise
        self._pending_block = (addr, span)
        try:
            yield from self.ep.write(addr, L.encode_object(key, value, ext_raw))
            new_atomic = L.pack_atomic(addr, slot.fp, ClientAllocator.blocks_for(span))
            old = yield from self.ep.cas(slot.addr, slot.atomic, new_atomic)
        except RdmaFaultError:
            self.alloc.free(addr, span)
            self.budget.release(block_bytes)
            self._pending_block = None
            self._pending_budget = 0
            raise
        self._pending_block = None
        self._pending_budget = 0
        if old != slot.atomic:
            self.alloc.free(addr, span)
            self.budget.release(block_bytes)
            return False
        self.alloc.free(slot.pointer, slot.object_bytes)
        self.budget.release(slot.object_bytes)
        self._touch(key, slot, ext_raw)
        return True

    def _claim_slot(
        self,
        bucket: int,
        slots: List[L.Slot],
        new_atomic: int,
        key_hash: int,
        now: int,
    ) -> Generator:
        """Install ``new_atomic`` into a free/expired/evictable bucket slot."""
        target = self._pick_insert_slot(slots)
        if target is None:
            done = yield from self._forced_bucket_eviction(slots, new_atomic, key_hash, now)
            return done
        old = yield from self.ep.cas(target.addr, target.atomic, new_atomic)
        if old != target.atomic:
            return False
        self.ep.post_write(
            target.addr + L.INSERT_TS_OFF, L.pack_metadata(now, now, 1, key_hash)
        )
        self.cluster.object_count += 1
        return True

    def _pick_insert_slot(self, slots: List[L.Slot]) -> Optional[L.Slot]:
        """Empty slot, else the most-expired history entry, else oldest one."""
        empty = next((s for s in slots if s.is_empty), None)
        if empty is not None:
            return empty
        histories = [s for s in slots if s.is_history]
        if not histories:
            return None
        counter = self._counter_cache
        expired = [
            s
            for s in histories
            if is_expired(counter, s.history_id, self.cluster.history_size)
        ]
        pool = expired or histories
        return max(pool, key=lambda s: history_age(counter, s.history_id))

    def _forced_bucket_eviction(
        self, slots: List[L.Slot], new_atomic: int, key_hash: int, now: int
    ) -> Generator:
        """All slots hold live objects: evict within the bucket, replace directly.

        The victim's history entry is skipped (there is nowhere to put it);
        this is rare with the default slot factor and is counted for
        observability.
        """
        objects = [s for s in slots if s.is_object]
        if not objects:
            return False
        victim, _bitmap, meta = yield from self._choose_victim(objects)
        old = yield from self.ep.cas(victim.addr, victim.atomic, new_atomic)
        if old != victim.atomic:
            return False
        self.forced_bucket_evictions += 1
        self._account_eviction(victim, meta, now)
        self.ep.post_write(
            victim.addr + L.INSERT_TS_OFF, L.pack_metadata(now, now, 1, key_hash)
        )
        self.cluster.object_count += 1
        return True

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def _ensure_space(self, nbytes: int) -> Generator:
        consecutive_failures = 0
        while not self.budget.try_consume(nbytes):
            if nbytes > self.budget.limit_bytes:
                raise ValueError(f"object of {nbytes}B exceeds the cache budget")
            evicted = yield from self._evict_once()
            if evicted:
                consecutive_failures = 0
            else:
                consecutive_failures += 1
                if consecutive_failures > self.config.max_retries:
                    raise CacheOperationError(
                        "evict", b"", "cannot reclaim space (eviction storm)",
                        attempts=consecutive_failures,
                    )

    def _sample_slots(self) -> Generator:
        """Sample ``K`` slots for eviction.

        SFHT: one READ of K *consecutive* slots at a random offset.  Without
        SFHT: K scattered slot READs plus K metadata READs (the cost the
        co-designed table removes).
        """
        lay = self.layout
        k = min(self.config.sample_size, lay.total_slots)
        if self.config.use_sfht:
            start = self.rng.randrange(lay.total_slots - k + 1)
            raw = yield from self.ep.read(lay.slot_addr(start), k * L.SLOT_SIZE)
            return L.parse_slots(start, lay.slot_addr(start), raw, k)
        slots = []
        for _ in range(k):
            index = self.rng.randrange(lay.total_slots)
            addr = lay.slot_addr(index)
            yield from self.ep.read(addr, 8)  # atomic field
            yield from self.ep.read(addr + 8, L.SLOT_SIZE - 8)  # scattered metadata
            raw = self.node.read_bytes(addr, L.SLOT_SIZE)
            slots.append(L.parse_slot(index, addr, raw))
        return slots

    def _choose_victim(self, objects: List[L.Slot]) -> Generator:
        """Run every expert's priority function; pick by expert weights.

        Returns (victim_slot, expert_bitmap, victim_metadata).
        """
        now = self._now()
        metas: Dict[int, Metadata] = {}
        for slot in objects:
            if self.ext_fields:
                ext = yield from self._read_ext(slot)
            else:
                ext = {}
            metas[slot.index] = self._metadata_of(slot, ext)
        candidates = []
        for policy in self.policies:
            best = min(objects, key=lambda s: policy.priority(metas[s.index], now))
            candidates.append(best.index)
        choice = self.weights.choose() if self.config.adaptive else 0
        victim_index = candidates[choice]
        victim = next(s for s in objects if s.index == victim_index)
        bitmap = bitmap_of(candidates, victim_index)
        return victim, bitmap, metas[victim_index]

    def _evict_once(self) -> Generator:
        """One sampled eviction; True on success."""
        tracer = self.tracer
        t0 = self.engine._now if tracer is not None else 0.0
        for _attempt in range(self.config.max_retries):
            slots = yield from self._sample_slots()
            objects = [s for s in slots if s.is_object]
            if not objects:
                continue
            victim, bitmap, meta = yield from self._choose_victim(objects)
            done = yield from self._retire(victim, bitmap, meta)
            if done:
                if tracer is not None:
                    tracer.complete("op.evict", "client", t0, {"evicted": True})
                return True
        if tracer is not None:
            tracer.complete("op.evict", "client", t0, {"evicted": False})
        return False

    def _retire(self, victim: L.Slot, bitmap: int, meta: Metadata) -> Generator:
        """Turn the victim's slot into a history entry and free its block."""
        now = self._now()
        if self.config.use_lwh:
            old_counter = yield from self.ep.faa(self.layout.history_counter_addr, 1)
            self._counter_cache = (old_counter + 1) % HISTORY_WRAP
            self._counter_fresh = True
            history_id = old_counter % HISTORY_WRAP
            new_atomic = L.pack_history_atomic(history_id)
            prev = yield from self.ep.cas(victim.addr, victim.atomic, new_atomic)
            if prev != victim.atomic:
                return False
            # Expert bitmap rides in the insert_ts word; the key hash already
            # sits in the slot's hash field from insertion time (Fig. 9).
            self.ep.post_write(victim.addr + L.INSERT_TS_OFF, _U64.pack(bitmap))
        else:
            remote = self.cluster.remote_history
            old_counter = yield from self.ep.faa(remote.tail_addr, 1)
            yield from self.ep.write(remote.entry_addr(old_counter), bytes(40))
            prev = yield from self.ep.cas(victim.addr, victim.atomic, 0)
            if prev != victim.atomic:
                return False
            remote.insert(victim.key_hash, old_counter, bitmap)
        self._account_eviction(victim, meta, now)
        return True

    def _account_eviction(self, victim: L.Slot, meta: Metadata, now: int) -> None:
        self.alloc.free(victim.pointer, victim.object_bytes)
        self.budget.release(victim.object_bytes)
        self.cluster.object_count -= 1
        self.evictions += 1
        for policy in self.policies:
            policy.on_evict(meta, now)

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def delete(self, key: bytes) -> Generator:
        """Remove ``key``; returns True if it was cached."""
        start = self.engine.now
        key_hash = L.stable_hash64(key)
        fp = L.fingerprint(key_hash)
        bucket = self.layout.bucket_index(key_hash)
        cas_attempts = 0
        fault_attempts = 0
        stale_refreshes = 0
        attempts = 0
        while True:
            attempts += 1
            try:
                outcome = yield from self._delete_once(key, fp, bucket)
            except StaleEpoch as err:
                stale_refreshes += 1
                if stale_refreshes > self.config.epoch_retries:
                    raise CacheOperationError(
                        "delete", key, "membership refresh budget exhausted",
                        attempts=attempts, fault_attempts=fault_attempts,
                        elapsed_us=self.engine.now - start, cause=err,
                    )
                self.counters.add("stale_epoch_retry")
                try:
                    yield from self._refresh_membership()
                except RdmaFaultError:
                    pass
                continue
            except RdmaFaultError as err:
                fault_attempts += 1
                if fault_attempts > self.config.fault_retries:
                    raise CacheOperationError(
                        "delete", key, "fault retries exhausted",
                        attempts=attempts, fault_attempts=fault_attempts,
                        elapsed_us=self.engine.now - start, cause=err,
                    )
                self.counters.add("fault_retry")
                delay = self._backoff_us(fault_attempts)
                if delay > 0.0:
                    yield Timeout(delay)
                continue
            if outcome is not None:
                return outcome
            cas_attempts += 1
            if cas_attempts >= self.config.max_retries:
                raise CacheOperationError(
                    "delete", key, "exhausted retries (extreme contention)",
                    attempts=attempts, fault_attempts=fault_attempts,
                    elapsed_us=self.engine.now - start,
                )

    def _delete_once(self, key: bytes, fp: int, bucket: int) -> Generator:
        """One delete attempt: True/False on a decision, None on a CAS race."""
        slots = yield from self._read_bucket(bucket)
        match = None
        for slot in slots:
            if not (slot.is_object and slot.fp == fp):
                continue
            raw = yield from self.ep.read(slot.pointer, slot.object_bytes)
            try:
                found_key, _value, _ext = L.decode_object(raw)
            except (ValueError, struct.error):
                continue
            if found_key == key:
                match = slot
                break
        if match is None:
            return False
        old = yield from self.ep.cas(match.addr, match.atomic, 0)
        if old != match.atomic:
            return None
        self.alloc.free(match.pointer, match.object_bytes)
        self.budget.release(match.object_bytes)
        self.cluster.object_count -= 1
        return True
