"""Configuration of a Ditto deployment (paper §5.1 "Parameters")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass
class DittoConfig:
    """Tunables of the client-centric framework and adaptive caching.

    Defaults follow the paper: 5 eviction samples (Redis default), FC cache
    threshold 10 with a 10 MB budget, learning rate 0.1, global weight sync
    every 100 local regrets, history size equal to the cache size in objects.
    """

    #: Caching algorithms run as adaptive experts.
    policies: Tuple[str, ...] = ("lru", "lfu")
    #: Objects sampled per eviction.
    sample_size: int = 5
    #: Eviction-history length in entries; 0 means "equal to capacity".
    history_size: int = 0
    #: FC cache flush threshold t (1 disables combining).
    fc_threshold: int = 10
    #: FC cache size in bytes.
    fc_capacity_bytes: int = 10 * 1024 * 1024
    #: Regret-minimization learning rate λ.
    learning_rate: float = 0.1
    #: Eviction-decision strategy: "proportional" (the paper's weight-
    #: proportional choice) or "greedy" (ε-greedy extension, see
    #: ExpertWeights.SELECTION_MODES).
    selection: str = "proportional"
    #: Local regrets buffered before a lazy global weight update RPC.
    weight_update_batch: int = 100
    #: Retry cap for CAS races and empty samples before an operation fails.
    max_retries: int = 16
    #: Hash-table slots allocated per cached object (object + history + slack).
    slot_factor: float = 4.0

    # -- ablation switches (Figure 24) ------------------------------------
    #: Sample-friendly hash table: metadata in slots, 1-READ sampling.
    use_sfht: bool = True
    #: Lightweight (embedded) eviction history vs. a remote FIFO queue.
    use_lwh: bool = True
    #: Lazy (batched, compressed) weight updates vs. per-regret RPCs.
    use_lwu: bool = True
    #: Frequency-counter cache vs. one FAA per access.
    use_fc: bool = True
    #: Adaptive caching at all (False = single fixed policy).
    adaptive: bool = True

    def __post_init__(self) -> None:
        if not self.policies:
            raise ValueError("need at least one policy")
        if self.sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        if len(self.policies) == 1:
            self.adaptive = False
        if not self.use_fc:
            self.fc_threshold = 1

    @property
    def num_experts(self) -> int:
        return len(self.policies)
