"""Configuration of a Ditto deployment (paper §5.1 "Parameters")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass
class DittoConfig:
    """Tunables of the client-centric framework and adaptive caching.

    Defaults follow the paper: 5 eviction samples (Redis default), FC cache
    threshold 10 with a 10 MB budget, learning rate 0.1, global weight sync
    every 100 local regrets, history size equal to the cache size in objects.
    """

    #: Caching algorithms run as adaptive experts.
    policies: Tuple[str, ...] = ("lru", "lfu")
    #: Objects sampled per eviction.
    sample_size: int = 5
    #: Eviction-history length in entries; 0 means "equal to capacity".
    history_size: int = 0
    #: FC cache flush threshold t (1 disables combining).
    fc_threshold: int = 10
    #: FC cache size in bytes.
    fc_capacity_bytes: int = 10 * 1024 * 1024
    #: Regret-minimization learning rate λ.
    learning_rate: float = 0.1
    #: Eviction-decision strategy: "proportional" (the paper's weight-
    #: proportional choice) or "greedy" (ε-greedy extension, see
    #: ExpertWeights.SELECTION_MODES).
    selection: str = "proportional"
    #: Local regrets buffered before a lazy global weight update RPC.
    weight_update_batch: int = 100
    #: Retry cap for CAS races and empty samples before an operation fails.
    max_retries: int = 16
    #: Hash-table slots allocated per cached object (object + history + slack).
    slot_factor: float = 4.0

    # -- fault tolerance (only exercised under fault injection) ------------
    #: Extra attempts when a verb times out or an RPC is lost.
    fault_retries: int = 3
    #: Base backoff before a fault retry; doubles per attempt (0 disables).
    retry_backoff_us: float = 20.0
    #: Backoff ceiling for the exponential fault-retry schedule.
    retry_backoff_max_us: float = 2_000.0
    #: Jitter fraction: each backoff is stretched by up to this much, drawn
    #: from the client's deterministic RNG (decorrelates retry storms).
    retry_jitter: float = 0.5
    #: Wall-clock budget (simulated us) for one Set/Delete; 0 disables.
    op_deadline_us: float = 0.0
    #: Lease age after which a half-installed slot (its metadata write was
    #: lost) may be reclaimed by any reader.
    repair_lease_us: float = 1_000.0
    #: Delay between a client crash and a survivor starting recovery (models
    #: liveness-lease expiry at the quota/metadata service).
    crash_detect_us: float = 500.0
    #: Membership refreshes allowed per operation when verbs come back
    #: ``StaleEpoch`` (epoch-fenced elasticity); exhausting the budget turns
    #: a Get into a miss and fails a Set/Delete like other fault retries.
    epoch_retries: int = 8

    # -- ablation switches (Figure 24) ------------------------------------
    #: Sample-friendly hash table: metadata in slots, 1-READ sampling.
    use_sfht: bool = True
    #: Lightweight (embedded) eviction history vs. a remote FIFO queue.
    use_lwh: bool = True
    #: Lazy (batched, compressed) weight updates vs. per-regret RPCs.
    use_lwu: bool = True
    #: Frequency-counter cache vs. one FAA per access.
    use_fc: bool = True
    #: Adaptive caching at all (False = single fixed policy).
    adaptive: bool = True

    def __post_init__(self) -> None:
        if not self.policies:
            raise ValueError("need at least one policy")
        if self.sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        if self.fault_retries < 0:
            raise ValueError("fault_retries must be >= 0")
        if self.epoch_retries < 0:
            raise ValueError("epoch_retries must be >= 0")
        for name in (
            "retry_backoff_us",
            "retry_backoff_max_us",
            "retry_jitter",
            "op_deadline_us",
            "repair_lease_us",
            "crash_detect_us",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if len(self.policies) == 1:
            self.adaptive = False
        if not self.use_fc:
            self.fc_threshold = 1

    @property
    def num_experts(self) -> int:
        return len(self.policies)
