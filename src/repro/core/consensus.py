"""Replicated controller metadata: raft-style consensus over sim time.

The single point of failure in the seed system is the controller role: one
crash of the machine holding the membership table and the segment grant
logs and the cluster can neither finish a drain nor admit new segment
allocations.  This module removes it.  A :class:`ControllerGroup` runs
``n`` :class:`RaftReplica` state machines inside the discrete-event engine;
each replica holds a full clone of the cluster's metadata
(:class:`MetadataState`: the membership table plus every memory node's
:class:`~repro.memory.controller.SegmentState`) and the group only
acknowledges a metadata command once a majority has logged it.

Mapping onto the simulator:

- **Timers** are ``Engine.call_later`` callbacks guarded by a per-replica
  token (the engine has no cancellation; bumping the token invalidates every
  outstanding callback).  Election timeouts are drawn from a per-replica
  seeded RNG, so elections — including split-vote re-elections — are fully
  deterministic for a given seed.
- **Messages** travel through :meth:`ControllerGroup.send`, one
  ``call_later`` per hop; delivery consults the fault injector *at delivery
  time*, so :class:`~repro.sim.faults.ControllerCrash` and
  :class:`~repro.sim.faults.Partition` windows drop exactly the messages in
  flight during the window.
- **Quiescence parking** keeps a bare ``engine.run()`` terminating: a
  leader whose log is fully committed, fully replicated, and has no waiting
  clients for ``idle_park_rounds`` consecutive heartbeats broadcasts a
  ``park`` and stops its heartbeat timer; parked followers cancel their
  election timers.  Any client submission or message un-parks the group.
  Without this, perpetual heartbeats would keep the event heap non-empty
  forever and every ``engine.run()`` in the harness would spin.

Linearizability for retried commands comes from per-session deduplication:
every mutating command carries ``(session, seq)`` and each replica's state
machine memoizes the last applied result per session, so a command whose
ack was lost to a crash is *answered again*, not *applied again* — a
re-submitted ``alloc_segment`` cannot leak a second grant.

Errors cross the log as plain markers (``("__oom__", msg)`` /
``("__stale__", epoch, node)``) because exceptions are results too: every
replica must record the same outcome, and the submitting client re-raises
the real :class:`OutOfMemoryError` / :class:`StaleEpoch` locally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..memory.controller import OutOfMemoryError, SegmentState
from ..rdma.verbs import RdmaFaultError, StaleEpoch
from ..sim import Engine, Event, Timeout
from .adaptive import GlobalWeights
from .elasticity import ACTIVE, DRAINING, MembershipTable
from .retry import backoff_us

#: Replica roles.
FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"

#: Commands that read replicated state without mutating it; they skip the
#: session-dedup machinery (re-execution is harmless).
READ_ONLY = frozenset({"list_segments", "get_membership"})


class NotLeader(Exception):
    """Raised by a non-leader replica on a client append; carries a hint."""

    def __init__(self, leader_hint: Optional[int]):
        super().__init__(f"not leader (hint: {leader_hint})")
        self.leader_hint = leader_hint


class ConsensusUnavailable(RdmaFaultError):
    """No replica could commit the command within the retry budget.

    Subclasses :class:`RdmaFaultError` so every existing fault-retry loop
    (client ops, migration steps, crash recovery) treats a temporarily
    leaderless controller group like any other transient fault window.
    """


@dataclass(frozen=True)
class RaftParams:
    """Timing and retry knobs for a controller group (microseconds)."""

    heartbeat_us: float = 200.0
    election_min_us: float = 800.0
    election_max_us: float = 1600.0
    #: One-way replica<->replica message latency.
    link_us: float = 3.0
    #: One-way client<->replica latency for metadata submissions.
    client_link_us: float = 3.0
    #: Client-side wait for a commit ack before giving up on a replica.
    rpc_timeout_us: float = 1500.0
    #: Consecutive idle heartbeat rounds before the leader parks the group.
    idle_park_rounds: int = 8
    #: Submission attempts (across replicas) before ConsensusUnavailable.
    max_submit_attempts: int = 64
    #: Client re-submission backoff (mirrors DittoConfig retry defaults).
    retry_base_us: float = 20.0
    retry_ceiling_us: float = 2000.0
    retry_jitter: float = 0.5

    def __post_init__(self):
        if self.election_min_us <= 2 * self.heartbeat_us:
            raise ValueError(
                "election_min_us must exceed two heartbeat intervals"
            )
        if self.election_max_us <= self.election_min_us:
            raise ValueError("election_max_us must exceed election_min_us")


class MetadataState:
    """The replicated state machine: membership + per-node segment state.

    A pure-Python object with no engine dependencies — replicas hold
    independent :meth:`clone` copies and apply the identical committed
    command stream; the *physical* instance (whose :class:`SegmentState`
    objects are shared by reference with the live ``Controller``/
    ``MembershipTable``) is applied exactly once per committed position by
    the :class:`ControllerGroup`.
    """

    def __init__(self, membership: MembershipTable):
        self.membership = membership
        self.nodes: Dict[int, SegmentState] = {}
        #: session id -> (last applied seq, its result) — dedup memo.
        self.sessions: Dict[int, Tuple[int, object]] = {}
        #: Replicated adaptive expert weights (None until adopted): the
        #: physical instance shares the cluster's live GlobalWeights by
        #: reference, replicas carry independent copies via clone().
        self.weights: Optional[GlobalWeights] = None

    def adopt_node(self, state: SegmentState) -> None:
        self.nodes[state.node_id] = state

    def adopt_weights(self, weights: GlobalWeights) -> None:
        """Bind the live adaptive weights into the replicated state, so
        committed ``update_weights`` folds survive a leader crash."""
        self.weights = weights

    def clone(self) -> "MetadataState":
        new_membership = MembershipTable(())
        new_membership.epoch = self.membership.epoch
        new_membership._states = dict(self.membership._states)
        new = MetadataState(new_membership)
        new.nodes = {nid: state.clone() for nid, state in self.nodes.items()}
        new.sessions = dict(self.sessions)
        if self.weights is not None:
            # Replica copies fold the same command stream but carry no
            # observability hook; only the physical instance publishes.
            copy = GlobalWeights(
                self.weights.num_experts, self.weights.learning_rate
            )
            copy.weights = list(self.weights.weights)
            new.weights = copy
        return new

    # -- command application -------------------------------------------------

    def apply_entry(self, session: Optional[int], seq: int, command: Tuple):
        """Apply one committed log entry, deduplicating retried commands."""
        if session is not None:
            memo = self.sessions.get(session)
            if memo is not None and memo[0] >= seq:
                return memo[1]
        result = self._apply(command)
        if session is not None:
            self.sessions[session] = (seq, result)
        return result

    def _apply(self, command: Tuple):
        kind = command[0]
        if kind == "noop":
            return None
        if kind == "alloc_segment":
            _, node_id, size, owner = command
            state = self.nodes[node_id]
            if state.draining:
                return ("__stale__", state.epoch, node_id)
            try:
                return state.alloc(size, owner)
            except OutOfMemoryError as err:
                return ("__oom__", str(err))
        if kind == "free_segment":
            _, node_id, addr, size = command
            self.nodes[node_id].free(addr, size)
            return None
        if kind == "list_segments":
            _, node_id, owner = command
            return self.nodes[node_id].list_owner(owner)
        if kind == "reassign_grants":
            _, node_id, from_owner, to_owner = command
            return self.nodes[node_id].reassign(from_owner, to_owner)
        if kind == "get_membership":
            return self.membership.snapshot()
        if kind == "update_weights":
            if self.weights is None:
                raise ValueError(
                    "update_weights committed but no GlobalWeights adopted"
                )
            return list(self.weights.handle_update(list(command[1])))
        if kind == "add_node":
            _, node_id, start, end = command
            if node_id not in self.nodes:
                self.nodes[node_id] = SegmentState(node_id, start, end)
            epoch = self.membership.add(node_id)
            self._stamp_epoch(epoch)
            return epoch
        if kind == "membership_set":
            _, node_id, state = command
            epoch = self.membership.set_state(node_id, state)
            seg = self.nodes.get(node_id)
            if seg is not None:
                if state == DRAINING:
                    seg.draining = True
                elif state == ACTIVE:
                    seg.draining = False
            self._stamp_epoch(epoch)
            return epoch
        raise ValueError(f"unknown metadata command {kind!r}")

    def _stamp_epoch(self, epoch: int) -> None:
        for seg in self.nodes.values():
            seg.epoch = epoch


class RaftReplica:
    """One controller replica: elections, log replication, parking."""

    def __init__(self, replica_id: int, group: "ControllerGroup",
                 state: MetadataState, rng: random.Random):
        self.id = replica_id
        self.group = group
        self.state = state
        self.rng = rng
        self.term = 0
        self.voted_for: Optional[int] = None
        self.role = FOLLOWER
        self.leader_hint: Optional[int] = None
        #: Log entries: (term, session, seq, command).  Count-indexed —
        #: ``commit``/``applied`` are entry *counts*, not offsets.
        self.log: List[Tuple] = []
        self.commit = 0
        self.applied = 0
        self.parked = False
        #: Bumped to invalidate every outstanding timer callback.
        self._timer_token = 0
        # Leader bookkeeping.
        self.next_count: Dict[int, int] = {}
        self.match_count: Dict[int, int] = {}
        self._votes = set()
        self._idle_rounds = 0
        self._arm_election()

    # -- timers --------------------------------------------------------------

    def _arm_election(self) -> None:
        self._timer_token += 1
        delay = self.rng.uniform(
            self.group.params.election_min_us, self.group.params.election_max_us
        )
        self.group.engine.call_later(delay, self._election_fire, self._timer_token)

    def _election_fire(self, token: int) -> None:
        group = self.group
        if group.stopped or token != self._timer_token:
            return
        if group.replica_down(self.id):
            self._arm_election()  # frozen: keep the clock running
            return
        if self.parked or self.role == LEADER:
            return
        self._start_election()

    def _start_election(self) -> None:
        self.term += 1
        self.role = CANDIDATE
        self.voted_for = self.id
        self._votes = {self.id}
        self.leader_hint = None
        self.group._record("election", self.id, self.term)
        last_term = self.log[-1][0] if self.log else 0
        for peer in self.group.peer_ids(self.id):
            self._send(peer, ("vote_req", self.term, self.id, len(self.log), last_term))
        if len(self._votes) >= self.group.majority:  # single-replica group
            self._become_leader()
            return
        self._arm_election()

    def _become_leader(self) -> None:
        self.role = LEADER
        self.leader_hint = self.id
        self._timer_token += 1  # cancel the pending election timer
        self.next_count = {p: len(self.log) for p in self.group.peer_ids(self.id)}
        self.match_count = {p: 0 for p in self.group.peer_ids(self.id)}
        self._idle_rounds = 0
        self.parked = False
        self.group._record("leader", self.id, self.term)
        # A no-op in its own term lets the new leader commit everything
        # inherited from prior terms (the standard commit-safety dance).
        self.log.append((self.term, None, 0, ("noop",)))
        self._broadcast_appends()
        self._maybe_advance_commit()
        self.group.engine.call_later(
            self.group.params.heartbeat_us, self._heartbeat_fire, self._timer_token
        )

    def _resume_heartbeat(self) -> None:
        self._timer_token += 1
        self._idle_rounds = 0
        self.group.engine.call_later(
            self.group.params.heartbeat_us, self._heartbeat_fire, self._timer_token
        )

    def _heartbeat_fire(self, token: int) -> None:
        group = self.group
        if group.stopped or token != self._timer_token or self.role != LEADER:
            return
        if group.replica_down(self.id):
            # A crashed leader does nothing but keep its clock alive; on
            # recovery it resumes heartbeating and either reasserts or
            # learns of a higher term from the replies.
            group.engine.call_later(
                group.params.heartbeat_us, self._heartbeat_fire, token
            )
            return
        fully_replicated = all(
            m >= len(self.log) for m in self.match_count.values()
        ) if self.match_count else True
        if self.commit >= len(self.log) and fully_replicated and not group.waiters:
            self._idle_rounds += 1
            if self._idle_rounds >= group.params.idle_park_rounds:
                self.parked = True
                group._count("consensus_park")
                for peer in group.peer_ids(self.id):
                    self._send(peer, ("park", self.term, self.id))
                return  # no re-arm: the heap drains
        else:
            self._idle_rounds = 0
        self._broadcast_appends()
        group.engine.call_later(
            group.params.heartbeat_us, self._heartbeat_fire, token
        )

    # -- messaging -----------------------------------------------------------

    def _send(self, dst: int, msg: Tuple) -> None:
        self.group.send(self.id, dst, msg)

    def _receive(self, src: int, msg: Tuple) -> None:
        kind = msg[0]
        if self.parked and kind != "park":
            # Any live traffic un-parks the group (e.g. a replica that was
            # crashed through the park broadcast and is now campaigning).
            self.parked = False
            if self.role == LEADER:
                self._resume_heartbeat()
            else:
                self._arm_election()
        if kind == "vote_req":
            self._on_vote_req(*msg[1:])
        elif kind == "vote_rep":
            self._on_vote_rep(*msg[1:])
        elif kind == "append":
            self._on_append(*msg[1:])
        elif kind == "append_rep":
            self._on_append_rep(*msg[1:])
        elif kind == "park":
            self._on_park(*msg[1:])

    def _step_down(self, term: int) -> None:
        self.term = term
        self.role = FOLLOWER
        self.voted_for = None
        self._votes = set()
        self._arm_election()

    # -- elections -----------------------------------------------------------

    def _on_vote_req(self, term: int, candidate: int, last_count: int,
                     last_term: int) -> None:
        if term > self.term:
            self._step_down(term)
        granted = False
        if term == self.term and self.voted_for in (None, candidate):
            my_last_term = self.log[-1][0] if self.log else 0
            if (last_term, last_count) >= (my_last_term, len(self.log)):
                granted = True
                self.voted_for = candidate
                self._arm_election()
        self._send(candidate, ("vote_rep", self.term, self.id, granted))

    def _on_vote_rep(self, term: int, voter: int, granted: bool) -> None:
        if term > self.term:
            self._step_down(term)
            return
        if self.role != CANDIDATE or term != self.term or not granted:
            return
        self._votes.add(voter)
        if len(self._votes) >= self.group.majority:
            self._become_leader()

    # -- log replication -----------------------------------------------------

    def _send_append(self, peer: int) -> None:
        prev = min(self.next_count.get(peer, len(self.log)), len(self.log))
        prev_term = self.log[prev - 1][0] if prev > 0 else 0
        entries = tuple(self.log[prev:])
        self._send(peer, ("append", self.term, self.id, prev, prev_term,
                          entries, self.commit))

    def _broadcast_appends(self) -> None:
        for peer in self.group.peer_ids(self.id):
            self._send_append(peer)

    def _on_append(self, term: int, leader: int, prev: int, prev_term: int,
                   entries: Tuple, leader_commit: int) -> None:
        if term < self.term:
            self._send(leader, ("append_rep", self.term, self.id, False, 0))
            return
        if term > self.term or self.role != FOLLOWER:
            self._step_down(term)
        self.term = term
        self.leader_hint = leader
        self._arm_election()  # leader contact resets the election clock
        if prev > len(self.log) or (prev > 0 and self.log[prev - 1][0] != prev_term):
            self._send(leader, ("append_rep", self.term, self.id, False, 0))
            return
        pos = prev
        for entry in entries:
            if pos < len(self.log):
                if self.log[pos][0] != entry[0]:
                    del self.log[pos:]  # conflict: drop the divergent suffix
                    self.log.append(entry)
            else:
                self.log.append(entry)
            pos += 1
        if leader_commit > self.commit:
            self.commit = min(leader_commit, len(self.log))
            self._apply_committed()
        self._send(leader, ("append_rep", self.term, self.id, True,
                            prev + len(entries)))

    def _on_append_rep(self, term: int, follower: int, ok: bool,
                       match: int) -> None:
        if term > self.term:
            self._step_down(term)
            return
        if self.role != LEADER or term != self.term:
            return
        if ok:
            if match > self.match_count.get(follower, 0):
                self.match_count[follower] = match
            if match > self.next_count.get(follower, 0):
                self.next_count[follower] = match
            self._maybe_advance_commit()
        else:
            self.next_count[follower] = max(
                0, self.next_count.get(follower, 1) - 1
            )
            self._send_append(follower)

    def _on_park(self, term: int, leader: int) -> None:
        if term < self.term:
            return
        if term > self.term:
            self._step_down(term)
        self.role = FOLLOWER
        self.leader_hint = leader
        self.parked = True
        self._timer_token += 1  # cancel the election timer: heap drains

    def _maybe_advance_commit(self) -> None:
        counts = sorted(
            [len(self.log)] + list(self.match_count.values()), reverse=True
        )
        candidate = counts[self.group.majority - 1]
        # Only entries from the *current* term commit by counting replicas.
        if candidate > self.commit and self.log[candidate - 1][0] == self.term:
            self.commit = candidate
            self._apply_committed()

    def _apply_committed(self) -> None:
        while self.applied < self.commit:
            entry = self.log[self.applied]
            self.state.apply_entry(entry[1], entry[2], entry[3])
            self.applied += 1
            self.group._on_commit(self.applied, entry)

    # -- client interface ----------------------------------------------------

    def append_client(self, session: Optional[int], seq: int, command: Tuple,
                      event: Event) -> int:
        """Append a client command; registers ``event`` for the commit ack."""
        if self.parked:
            self.parked = False
            if self.role == LEADER:
                self._resume_heartbeat()
            else:
                self._arm_election()
        if self.role != LEADER:
            hint = self.leader_hint if self.leader_hint != self.id else None
            raise NotLeader(hint)
        self.log.append((self.term, session, seq, command))
        position = len(self.log)
        self._idle_rounds = 0
        self.group.waiters.setdefault(position, []).append((self.term, event))
        self._broadcast_appends()
        self._maybe_advance_commit()  # single-replica groups commit here
        return position


class ControllerGroup:
    """A replicated controller: n raft replicas over one physical state.

    ``physical`` is the MetadataState whose SegmentState objects *are* the
    live controllers' state and whose MembershipTable *is* the cluster's;
    the group applies each committed log position to it exactly once, in
    order, regardless of which replica commits first.
    """

    def __init__(self, engine: Engine, physical: MetadataState,
                 n_replicas: int, seed: int,
                 params: Optional[RaftParams] = None,
                 faults=None, counters=None, tracer=None):
        if n_replicas < 1:
            raise ValueError("a controller group needs at least one replica")
        self.engine = engine
        self.physical = physical
        self.params = params if params is not None else RaftParams()
        self.faults = faults
        self.counters = counters
        self.tracer = tracer
        self.n = n_replicas
        self.majority = n_replicas // 2 + 1
        self.stopped = False
        #: log position -> [(term, Event), ...] commit-ack waiters.
        self.waiters: Dict[int, List[Tuple[int, Event]]] = {}
        #: Highest log position applied to the physical state.
        self._applied_global = 0
        #: (time_us, kind, replica_id, term) — election/leader timeline.
        self.events: List[Tuple[float, str, int, int]] = []
        #: (time_us, position) for each physical commit (availability metric).
        self.commit_times: List[Tuple[float, int]] = []
        self._client_count = 0
        # Message reordering across replicas would break determinism if the
        # engine ever batched same-time callbacks; consensus runs strict.
        engine.disable_batch("consensus")
        self.replicas = [
            RaftReplica(
                i, self, physical.clone(),
                random.Random((seed * 1_000_003 + 7919 * i + 9176) & 0xFFFFFFFF),
            )
            for i in range(n_replicas)
        ]
        self._submit_rng_seed = seed

    def peer_ids(self, rid: int):
        return [i for i in range(self.n) if i != rid]

    # -- fault windows -------------------------------------------------------

    def replica_down(self, rid: int) -> bool:
        return self.faults is not None and self.faults.controller_down(rid)

    def _link_cut(self, a: int, b: int) -> bool:
        return self.faults is not None and self.faults.link_cut(a, b)

    # -- the replica network -------------------------------------------------

    def send(self, src: int, dst: int, msg: Tuple) -> None:
        self.engine.call_later(self.params.link_us, self._deliver, src, dst, msg)

    def _deliver(self, src: int, dst: int, msg: Tuple) -> None:
        if self.stopped:
            return
        if self.replica_down(dst) or self.replica_down(src):
            return  # receiver frozen, or sender crashed with the msg in flight
        if self._link_cut(src, dst):
            return
        self.replicas[dst]._receive(src, msg)

    # -- commit fan-out ------------------------------------------------------

    def _on_commit(self, position: int, entry: Tuple) -> None:
        """First replica to apply ``position`` also applies it physically."""
        if position <= self._applied_global:
            return
        # Replicas apply their own logs in order, so the first arrival at a
        # new position is always exactly _applied_global + 1.
        result = self.physical.apply_entry(entry[1], entry[2], entry[3])
        self._applied_global = position
        self.commit_times.append((self.engine.now, position))
        for term, event in self.waiters.pop(position, ()):
            if not event.triggered:
                if term == entry[0]:
                    event.trigger(("ok", result))
                else:
                    # A different entry won this slot: re-submit (dedup
                    # makes the retry safe even if the original committed).
                    event.trigger(("retry", None))

    def _expire_waiter(self, position: int, event: Event) -> None:
        if not event.triggered:
            event.trigger(("timeout", None))
        # Prune the registration: a position that never commits (e.g. the
        # entry sits on a deposed leader's uncommitted tail) must not keep
        # the group's waiter set non-empty forever — that would block
        # quiescence parking and hang any bare ``engine.run()``.
        pending = self.waiters.get(position)
        if pending is not None:
            pending[:] = [(t, ev) for t, ev in pending if ev is not event]
            if not pending:
                del self.waiters[position]

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, kind: str, rid: int, term: int) -> None:
        self.events.append((self.engine.now, kind, rid, term))
        self._count("consensus_" + kind)
        if self.tracer is not None:
            self.tracer.instant(
                "consensus." + kind, "consensus",
                {"replica": rid, "term": term},
            )

    def _count(self, name: str, value: int = 1) -> None:
        if self.counters is not None:
            self.counters.add(name, value)

    def leader_id(self, live_only: bool = True) -> Optional[int]:
        """The live leader with the highest term, if any."""
        best = None
        for replica in self.replicas:
            if replica.role != LEADER:
                continue
            if live_only and self.replica_down(replica.id):
                continue
            if best is None or replica.term > best.term:
                best = replica
        return best.id if best is not None else None

    def election_timeline(self) -> List[Tuple[float, str, int, int]]:
        return list(self.events)

    def make_client(self) -> "GroupClient":
        self._client_count += 1
        session = self._client_count
        rng = random.Random(
            (self._submit_rng_seed * 1_000_003 + 104_729 * session + 11) & 0xFFFFFFFF
        )
        return GroupClient(self, session, rng)

    def stop(self) -> None:
        """Tear the group down; in-flight messages and timers become no-ops."""
        self.stopped = True


class GroupClient:
    """Per-submitter handle: leader discovery, redirects, dedup session."""

    def __init__(self, group: ControllerGroup, session: int,
                 rng: random.Random):
        self.group = group
        self.session = session
        self.rng = rng
        self.seq = 0
        self.leader_hint: Optional[int] = None
        self._probe = session % group.n

    def _next_probe(self) -> int:
        rid = self._probe % self.group.n
        self._probe += 1
        return rid

    def submit(self, command: Tuple):
        """Commit one metadata command; a sim generator (yield from it).

        Returns the command's result, re-raising marker-encoded errors
        (:class:`OutOfMemoryError`, :class:`StaleEpoch`).  Raises
        :class:`ConsensusUnavailable` once ``max_submit_attempts`` replicas
        in a row fail to produce a committed ack.
        """
        group = self.group
        params = group.params
        mutating = command[0] not in READ_ONLY
        if mutating:
            self.seq += 1
        session = self.session if mutating else None
        seq = self.seq
        target = self.leader_hint
        attempt = 0
        while True:
            attempt += 1
            if attempt > params.max_submit_attempts:
                group._count("consensus_unavailable")
                raise ConsensusUnavailable(
                    f"metadata command {command[0]} failed on "
                    f"{attempt - 1} attempts (no stable leader)",
                    verb="consensus",
                )
            if target is None:
                target = self._next_probe()
            outcome = yield from self._attempt(target, session, seq, command)
            kind = outcome[0]
            if kind == "ok":
                self.leader_hint = target
                return _translate(outcome[1])
            if kind == "redirect":
                hint = outcome[1]
                if (hint is not None and hint != target
                        and not group.replica_down(hint)):
                    target = hint  # fresh hint: chase it without backoff
                    continue
                target = None
            else:  # down / timeout / retry
                self.leader_hint = None
                target = None
            delay = backoff_us(
                min(attempt, 8), base=params.retry_base_us,
                ceiling=params.retry_ceiling_us, jitter=params.retry_jitter,
                rng=self.rng,
            )
            if delay > 0.0:
                yield Timeout(delay)

    def _attempt(self, rid: int, session: Optional[int], seq: int,
                 command: Tuple):
        group = self.group
        params = group.params
        yield Timeout(params.client_link_us)
        if group.stopped:
            return ("retry", None)
        if group.replica_down(rid):
            yield Timeout(params.rpc_timeout_us)  # burn the RPC timeout
            return ("down", None)
        event = Event(group.engine)
        try:
            position = group.replicas[rid].append_client(
                session, seq, command, event
            )
        except NotLeader as err:
            yield Timeout(params.client_link_us)
            return ("redirect", err.leader_hint)
        group._count("consensus_submit")
        group.engine.call_later(params.rpc_timeout_us, group._expire_waiter,
                                position, event)
        outcome = yield event
        yield Timeout(params.client_link_us)
        return outcome


def _translate(result):
    """Re-raise marker-encoded errors; pass everything else through."""
    if isinstance(result, tuple) and result:
        if result[0] == "__oom__":
            raise OutOfMemoryError(result[1])
        if result[0] == "__stale__":
            _, epoch, node_id = result
            raise StaleEpoch(
                f"node {node_id} is draining at epoch {epoch}: "
                f"no new segment grants",
                verb="rpc", node_id=node_id, epoch=epoch,
            )
    return result


__all__ = [
    "CANDIDATE",
    "ConsensusUnavailable",
    "ControllerGroup",
    "FOLLOWER",
    "GroupClient",
    "LEADER",
    "MetadataState",
    "NotLeader",
    "RaftParams",
    "RaftReplica",
]
