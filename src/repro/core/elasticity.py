"""Epoch-based memory-node membership and live migration (elastic MNs).

Ditto's headline claim is elasticity; for the *compute* pool that is easy
(clients join and leave with no data movement), but adding or removing a
**memory node** moves ownership of remote memory while clients keep serving
traffic.  This module provides the protocol pieces:

- :class:`MembershipTable` — the controller-published view of the memory
  pool: a monotonically increasing **epoch** plus a state per node
  (``active`` / ``draining`` / ``retired``).  Clients cache a copy and only
  refresh it when the fence below tells them their copy went stale.
- :class:`EpochFence` — the MN-side admission check every verb consults.
  After a membership change the fence NACKs verbs that are no longer legal
  (writes into a draining node's heap, anything into a retired range) with
  :class:`~repro.rdma.verbs.StaleEpoch`, which triggers the client's bounded
  refresh-and-retry.  Until the first membership change the fence is not
  armed and verbs take the unfenced fast path, keeping default runs
  byte-identical.
- :class:`Migrator` — the two-phase segment drain behind
  ``remove_memory_node``: a hot-data-first **copy** phase (objects move via
  READ → ALLOC on a surviving node → WRITE → CAS on the slot atomic, the
  same linearization point as a client update, so the drain races concurrent
  Sets/Deletes safely) and a **handoff** phase (a verify re-scan that must
  observe a clean pass, then the synchronous retire: epoch bump, full fence,
  allocator purge, node removal).

Degraded mode during a drain is exactly what the paper's protocol allows:
Gets keep READing objects from the source node until the moment their slot
is CASed to the new copy; Sets targeting the draining node are fenced and
re-routed to surviving nodes after one membership refresh.

Crash safety: the drain is executed by the cluster (the controller role),
not by a cache client, so injected *client* crashes never kill a drain —
they take the normal 3-step crash recovery while the drain retries around
the same fault windows (verb drops, controller-RPC failures, MN outages)
with the recovery path's generous backoff budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..memory.allocator import StripedAllocator
from ..memory.controller import OutOfMemoryError
from ..rdma.verbs import RdmaEndpoint, RdmaFaultError, StaleEpoch
from ..sim import Timeout
from . import layout as L
from .retry import backoff_us

#: Node membership states.
ACTIVE = "active"
DRAINING = "draining"
RETIRED = "retired"

#: Slots fetched per table-scan READ during a drain (matches repair_scan).
SCAN_CHUNK_SLOTS = 128

#: A drain re-scans until a pass moves nothing; this bounds a pathological
#: workload that keeps racing objects onto the draining node.
MAX_DRAIN_PASSES = 64

#: Retry budget for one migration step under injected faults (mirrors the
#: crash-recovery RPC budget: migration must ride out the same windows).
MIGRATION_RETRY_LIMIT = 1000

#: Grant-log owner ids for migration allocators: negative and offset so they
#: can never collide with client ids (>= 0) or the anonymous owner (-1).
MIGRATOR_OWNER_BASE = -100

#: Segment granularity for the migration allocator.  Finer than the client
#: default so a drain can pack into whatever headroom the surviving
#: controllers still have — a drain typically runs when the pool is full.
MIGRATION_SEGMENT_BYTES = 64 * 1024


class MigrationError(RuntimeError):
    """A drain could not complete (capacity shortfall or persistent faults)."""


class MembershipTable:
    """Epoch-versioned membership of the memory pool (controller-owned).

    Every mutation bumps the epoch.  ``snapshot()`` is the wire format the
    ``get_membership`` RPC returns; clients keep the epoch and the active
    node-id set.
    """

    def __init__(self, node_ids):
        self.epoch = 0
        self._states: Dict[int, str] = {nid: ACTIVE for nid in node_ids}

    def state(self, node_id: int) -> str:
        return self._states[node_id]

    def add(self, node_id: int) -> int:
        self._states[node_id] = ACTIVE
        self.epoch += 1
        return self.epoch

    def set_state(self, node_id: int, state: str) -> int:
        if state not in (ACTIVE, DRAINING, RETIRED):
            raise ValueError(f"unknown membership state {state!r}")
        if node_id not in self._states:
            raise KeyError(f"unknown memory node {node_id}")
        self._states[node_id] = state
        self.epoch += 1
        return self.epoch

    def active_ids(self) -> Tuple[int, ...]:
        return tuple(
            nid for nid, state in sorted(self._states.items())
            if state == ACTIVE
        )

    def snapshot(self) -> Tuple[int, Tuple[Tuple[int, str], ...]]:
        """(epoch, ((node_id, state), ...)) — the ``get_membership`` reply."""
        return self.epoch, tuple(sorted(self._states.items()))


class EpochFence:
    """Address-range admission control enforcing the membership epoch.

    The fence models the MN-side check a real deployment performs against
    the epoch tagged on each request: once a node starts draining, WRITE-
    class verbs into its heap are rejected; once it is retired, everything
    is.  Rejection is immediate (no timeout burn — the NACK carries the
    current epoch) and surfaces client-side as :class:`StaleEpoch`.
    """

    __slots__ = ("epoch", "_write_fenced", "_retired", "_retired_nodes")

    def __init__(self):
        self.epoch = 0
        #: (base, end, node_id) ranges where mutating verbs are fenced.
        self._write_fenced: List[Tuple[int, int, int]] = []
        #: (base, end, node_id) ranges where *all* verbs are fenced.
        self._retired: List[Tuple[int, int, int]] = []
        self._retired_nodes = set()

    # -- state transitions (driven by the cluster's membership changes) ----

    def advance(self, epoch: int) -> None:
        self.epoch = epoch

    def fence_writes(self, base: int, end: int, node_id: int) -> None:
        self._write_fenced.append((base, end, node_id))

    def lift_writes(self, node_id: int) -> None:
        self._write_fenced = [
            entry for entry in self._write_fenced if entry[2] != node_id
        ]

    def retire(self, base: int, end: int, node_id: int) -> None:
        self.lift_writes(node_id)
        self._retired.append((base, end, node_id))
        self._retired_nodes.add(node_id)

    # -- verb-side checks ---------------------------------------------------

    def _reject(self, verb: str, node_id: int, why: str) -> None:
        raise StaleEpoch(
            f"{verb} fenced at epoch {self.epoch}: {why}",
            verb=verb, node_id=node_id, epoch=self.epoch,
        )

    def check_read(self, addr: int, verb: str, node_id: int) -> None:
        for base, end, nid in self._retired:
            if base <= addr < end:
                self._reject(verb, nid, f"node {nid} retired")

    def check_write(self, addr: int, verb: str, node_id: int) -> None:
        for base, end, nid in self._retired:
            if base <= addr < end:
                self._reject(verb, nid, f"node {nid} retired")
        for base, end, nid in self._write_fenced:
            if base <= addr < end:
                self._reject(verb, nid, f"node {nid} draining")

    def check_rpc(self, node_id: int, verb: str) -> None:
        if node_id in self._retired_nodes:
            self._reject(verb, node_id, f"node {node_id} retired")


class MigrationRecord:
    """Progress/outcome of one node drain (exposed via ``cluster.migrations``)."""

    def __init__(self, node_id: int, epoch_start: int, started_us: float):
        self.node_id = node_id
        self.epoch_start = epoch_start
        self.epoch_end: Optional[int] = None
        self.phase = "pending"  # pending -> copy -> handoff -> done/aborted
        self.started_us = started_us
        self.finished_us: Optional[float] = None
        self.migrated_bytes = 0
        self.migrated_objects = 0
        self.cas_lost = 0
        self.passes = 0

    def as_dict(self) -> Dict:
        return {
            "node_id": self.node_id,
            "phase": self.phase,
            "epoch_start": self.epoch_start,
            "epoch_end": self.epoch_end,
            "started_us": self.started_us,
            "finished_us": self.finished_us,
            "migrated_bytes": self.migrated_bytes,
            "migrated_objects": self.migrated_objects,
            "cas_lost": self.cas_lost,
            "passes": self.passes,
        }


class Migrator:
    """Executes the two-phase drain of one memory node as a sim process.

    Runs with its own endpoint and striped allocator (grant-log owner
    ``MIGRATOR_OWNER_BASE - node_id``) so its traffic contends for the NICs
    like any client's, but it is *not* a cache client: fault-plan client
    crashes cannot kill it, matching a controller-driven migration service.
    Its endpoint carries no fence — the migration QP stays registered until
    deregistration, which is what lets it move stragglers right up to the
    retire point.
    """

    def __init__(self, cluster, node, record: MigrationRecord, on_phase=None):
        self.cluster = cluster
        self.node = node
        self.record = record
        self.on_phase = on_phase
        self.counters = cluster.counters
        self.tracer = cluster.tracer
        self.ep = RdmaEndpoint(
            cluster.engine,
            cluster.pool,
            cluster.params,
            counters=cluster.counters,
            faults=cluster.fault_injector,
            tracer=cluster.tracer,
        )
        group = getattr(cluster, "consensus", None)
        if group is not None:
            # Controller HA: the migrator's metadata traffic (segment
            # grants for relocated objects, membership flips, grant
            # reassignment) goes through the replicated controller group
            # under its own dedup session, so a controller crash mid-drain
            # can neither lose nor double-apply a step.
            self.ep.consensus = group.make_client()
        self.alloc = StripedAllocator(
            self.ep, cluster.nodes,
            min(cluster.segment_bytes, MIGRATION_SEGMENT_BYTES),
            owner=MIGRATOR_OWNER_BASE - node.node_id,
        )
        self.alloc.set_active(
            [n.node_id for n in cluster.nodes if n.node_id != node.node_id]
        )

    # -- helpers ------------------------------------------------------------

    def _notify(self, phase: str) -> None:
        self.record.phase = phase
        if self.on_phase is not None:
            self.on_phase(phase)
        if self.tracer is not None:
            self.tracer.instant(
                "migrate.phase", "migrate",
                {"phase": phase, "node": self.node.node_id},
            )

    def _retry_pause(self, attempt: int):
        """Backoff between fault retries of a migration step."""
        if attempt > MIGRATION_RETRY_LIMIT:
            self.counters.add("migration_failed")
            raise MigrationError(
                f"drain of node {self.node.node_id} gave up after "
                f"{MIGRATION_RETRY_LIMIT} fault retries"
            )
        self.counters.add("fault_retry")
        survivor = next(
            (c for c in self.cluster.clients if not c.dead), None
        )
        if survivor is not None:
            delay = survivor._backoff_us(min(attempt, 8))
        else:
            # No live client RNG to draw jitter from: plain exponential.
            delay = backoff_us(
                min(attempt, 8), base=self.cluster.config.retry_backoff_us
            )
        return Timeout(delay) if delay > 0.0 else Timeout(0.0)

    # -- the drain ----------------------------------------------------------

    def drain(self):
        """The drain process: copy phase, then fenced handoff.

        A drain that cannot make progress (surviving nodes out of memory,
        faults outlasting the generous retry budget, a workload that races
        data back endlessly) *aborts* instead of unwinding the engine: the
        node reverts to ACTIVE at a new epoch, the write fence lifts, and
        everything already copied stays owned by a survivor — the system is
        exactly as recoverable as before the attempt.
        """
        cluster = self.cluster
        rec = self.record
        t0 = cluster.engine.now
        try:
            if self.ep.consensus is not None:
                # Controller HA: the DRAINING flip is a replicated log
                # entry, not a local mutation — the drain only proceeds
                # once a majority of controller replicas has durably
                # recorded it, so a failed-over controller knows a drain
                # was in flight.  The fence arms at the committed epoch.
                epoch = yield from self._commit_membership(DRAINING)
                cluster.fence.fence_writes(
                    self.node.base, self.node.end, self.node.node_id
                )
                cluster._publish_epoch(epoch)
                rec.epoch_start = epoch
            # Phase 1 — copy: hot-first passes until a pass moves nothing.
            self._notify("copy")
            t_copy = cluster.engine.now
            while True:
                moved = yield from self._pass()
                rec.passes += 1
                if moved == 0:
                    break
                if rec.passes >= MAX_DRAIN_PASSES:
                    raise MigrationError(
                        f"drain of node {self.node.node_id} did not converge "
                        f"after {rec.passes} passes"
                    )
            if self.tracer is not None:
                self.tracer.complete_at(
                    "migrate.copy", "migrate", t_copy,
                    cluster.engine.now - t_copy,
                    args={"node": self.node.node_id,
                          "objects": rec.migrated_objects},
                )
            # Phase 2 — handoff: the verify scan must observe one clean pass
            # *after* the copy loop's clean pass; in-flight installs whose
            # WRITE predated the drain fence land their CAS within one RTT,
            # far inside a single scan pass, so two consecutive clean scans
            # close the race.
            self._notify("handoff")
            t_handoff = cluster.engine.now
            while True:
                moved = yield from self._pass()
                rec.passes += 1
                if moved == 0:
                    break
                if rec.passes >= MAX_DRAIN_PASSES:
                    raise MigrationError(
                        f"handoff of node {self.node.node_id} kept finding "
                        f"stragglers after {rec.passes} passes"
                    )
            epoch_end = None
            if self.ep.consensus is not None:
                # The RETIRED flip, too, must commit before the node leaves
                # the pool; a persistent commit failure aborts the drain.
                epoch_end = yield from self._commit_membership(RETIRED)
        except MigrationError:
            epoch = None
            if self.ep.consensus is not None:
                # Best effort: if even the abort cannot commit (controller
                # group persistently unavailable), fall back to the local
                # epoch bump rather than unwinding the engine.
                epoch = yield from self._commit_membership(
                    ACTIVE, best_effort=True
                )
            survivor = cluster._abort_drain(self, epoch=epoch)
            yield from self._reassign_grants_to(survivor)
            self._notify("aborted")
            rec.finished_us = cluster.engine.now
            return rec
        # Synchronous retire: no yield between the fence flip and the purge,
        # so no verb can observe a half-retired node.
        survivor = cluster._finish_drain(self, epoch=epoch_end)
        yield from self._reassign_grants_to(survivor)
        if self.tracer is not None:
            self.tracer.complete_at(
                "migrate.handoff", "migrate", t_handoff,
                cluster.engine.now - t_handoff,
                args={"node": self.node.node_id},
            )
            self.tracer.complete_at(
                "migrate.drain", "migrate", t0, cluster.engine.now - t0,
                args=rec.as_dict(),
            )
        self._notify("done")
        rec.finished_us = cluster.engine.now
        return rec

    def _commit_membership(self, state: str, best_effort: bool = False):
        """Commit a membership flip for the draining node through the
        replicated controller log.  Retries ride the migration fault budget
        (:class:`~repro.core.consensus.ConsensusUnavailable` is an
        :class:`RdmaFaultError`); with ``best_effort`` a final failure
        returns None instead of raising, for the abort path."""
        node_id = self.node.node_id
        try:
            epoch = yield from self._with_retries(
                lambda: self.ep.consensus.submit(
                    ("membership_set", node_id, state)
                )
            )
            return epoch
        except MigrationError:
            if best_effort:
                self.counters.add("migration_commit_failed")
                return None
            raise

    def _reassign_grants_to(self, survivor):
        """Move the migration allocator's grant-log entries to the client
        that adopted its state, so a later crash of that client reconciles
        the full set.  Best effort: if a fault window outlasts even this
        retry budget the grants stay parked under the migrator's owner id —
        unreachable but accounted (the sweep tiles grants against regions
        regardless of owner)."""
        if survivor is None:
            return
        owner = self.alloc.owner
        for target in list(self.cluster.nodes):
            if self.ep.consensus is not None:
                call = lambda n=target: self.ep.consensus.submit(
                    ("reassign_grants", n.node_id, owner, survivor.client_id)
                )
            else:
                call = lambda n=target: self.ep.rpc(
                    n, "reassign_grants", (owner, survivor.client_id)
                )
            try:
                yield from self._with_retries(call)
            except MigrationError:
                self.counters.add("migration_reassign_failed")
                break

    def _pass(self):
        """One full table scan; moves every object still on the node.

        Returns the number of objects moved (0 = clean pass).  Candidates
        are ordered hot-data-first using the access information already in
        the sample-friendly slots (freq, then recency), so if the drain is
        interrupted the hottest objects are the ones already safe.
        """
        lay = self.cluster.layout
        base, end = self.node.base, self.node.end
        candidates: List[L.Slot] = []
        index = 0
        while index < lay.total_slots:
            count = min(SCAN_CHUNK_SLOTS, lay.total_slots - index)
            addr = lay.slot_addr(index)
            raw = yield from self._with_retries(
                lambda a=addr, c=count: self.ep.read(a, c * L.SLOT_SIZE)
            )
            for slot in L.parse_slots(index, addr, raw, count):
                if slot.is_object and base <= slot.pointer < end:
                    candidates.append(slot)
            index += count
        candidates.sort(key=lambda s: (-s.freq, -s.last_ts))
        moved = 0
        for slot in candidates:
            done = yield from self._copy_one(slot)
            if done:
                moved += 1
        return moved

    def _copy_one(self, slot: L.Slot):
        """Move one object off the draining node; True if this call moved it.

        READ old block → allocate on a surviving node → WRITE copy → CAS the
        slot atomic from the old packed word to the new one.  A CAS miss
        means a concurrent update/delete/eviction won the race — the object
        either moved already or no longer exists; either way the new block
        is returned and the next pass re-checks the slot.  The budget ledger
        is untouched: the object stays one live object of the same size,
        only the backing block changes.
        """
        span = slot.object_bytes
        new_addr = None
        try:
            raw = yield from self._with_retries(
                lambda: self.ep.read(slot.pointer, span)
            )
            new_addr = yield from self._with_retries(self._alloc_gen(span))
            yield from self._with_retries(
                lambda: self.ep.write(new_addr, raw)
            )
            new_atomic = L.pack_atomic(
                new_addr, slot.fp, slot.size_blocks
            )
            old = yield from self._with_retries(
                lambda: self.ep.cas(slot.addr, slot.atomic, new_atomic)
            )
        except MigrationError:
            if new_addr is not None:
                self.alloc.free(new_addr, span)
            raise
        if old != slot.atomic:
            self.alloc.free(new_addr, span)
            self.record.cas_lost += 1
            self.counters.add("migration_cas_lost")
            return False
        self.alloc.free(slot.pointer, span)
        self.record.migrated_objects += 1
        self.record.migrated_bytes += span
        self.counters.add("migrated_objects")
        self.counters.add("migrated_bytes", span)
        return True

    def _alloc_gen(self, span: int):
        def gen():
            try:
                addr = yield from self.alloc.alloc(span)
            except OutOfMemoryError as err:
                raise MigrationError(
                    f"surviving nodes out of segments while draining node "
                    f"{self.node.node_id}: {err}"
                ) from err
            return addr
        return gen

    def _with_retries(self, make_gen):
        """Run one migration step, retrying around injected fault windows."""
        attempt = 0
        while True:
            try:
                result = yield from make_gen()
                return result
            except RdmaFaultError:
                attempt += 1
                yield self._retry_pause(attempt)


__all__ = [
    "ACTIVE",
    "DRAINING",
    "RETIRED",
    "EpochFence",
    "MembershipTable",
    "MigrationError",
    "MigrationRecord",
    "Migrator",
    "StaleEpoch",
]
