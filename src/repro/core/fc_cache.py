"""Client-side frequency-counter cache (paper §4.2.2).

Inspired by processor write-combining: instead of issuing one RDMA_FAA per
access to bump an object's remote frequency counter, clients buffer deltas
locally and flush a combined FAA when

- the buffered delta reaches the threshold ``t`` (flush of that entry), or
- the cache is full (the entry with the earliest insert time is evicted), or
- an entry has aged past ``max_age_us`` (keeps remote counters from lagging).

This divides the RDMA_FAA rate by up to ``t`` — FAAs are the most expensive
verbs on real RNICs because of their internal atomics locks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

#: (slot_address, delta) pairs the caller must apply with RDMA_FAA.
Flush = Tuple[int, int]


class FrequencyCounterCache:
    """Write-combining buffer for remote frequency counters."""

    #: Bookkeeping bytes per entry besides the object ID (addr, delta, ts).
    ENTRY_OVERHEAD = 24

    def __init__(
        self,
        capacity_bytes: int = 10 * 1024 * 1024,
        threshold: int = 10,
        max_age_us: Optional[float] = None,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.capacity_bytes = capacity_bytes
        self.threshold = threshold
        self.max_age_us = max_age_us
        # key -> [slot_addr, delta, insert_time, entry_bytes]; insertion order
        # doubles as the earliest-insert-time eviction order.
        self._entries: "OrderedDict[bytes, list]" = OrderedDict()
        self.used_bytes = 0
        self.combined = 0  # accesses absorbed without an immediate FAA

    def __len__(self) -> int:
        return len(self._entries)

    def _pop(self, key: bytes) -> Flush:
        entry = self._entries.pop(key)
        self.used_bytes -= entry[3]
        return entry[0], entry[1]

    def record(self, key: bytes, slot_addr: int, now: float) -> List[Flush]:
        """Absorb one access to ``key``; returns FAAs that must go out now."""
        flushes: List[Flush] = []
        entry = self._entries.get(key)
        if entry is not None:
            if entry[0] != slot_addr:
                # The object moved to a different slot: flush the stale delta.
                flushes.append(self._pop(key))
                entry = None
            else:
                entry[1] += 1
                self.combined += 1
                if entry[1] >= self.threshold:
                    flushes.append(self._pop(key))
        if entry is None:
            entry_bytes = len(key) + self.ENTRY_OVERHEAD
            if self.threshold == 1 or self.capacity_bytes < entry_bytes:
                # Degenerate configurations bypass buffering entirely.
                flushes.append((slot_addr, 1))
            else:
                self._entries[key] = [slot_addr, 1, now, entry_bytes]
                self.used_bytes += entry_bytes
                while self.used_bytes > self.capacity_bytes:
                    oldest = next(iter(self._entries))
                    flushes.append(self._pop(oldest))
        if self.max_age_us is not None:
            while self._entries:
                oldest = next(iter(self._entries))
                if now - self._entries[oldest][2] <= self.max_age_us:
                    break
                flushes.append(self._pop(oldest))
        return flushes

    def flush_all(self) -> List[Flush]:
        """Drain every buffered delta (used at shutdown / in tests)."""
        flushes = [(e[0], e[1]) for e in self._entries.values()]
        self._entries.clear()
        self.used_bytes = 0
        return flushes
