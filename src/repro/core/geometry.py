"""Cluster memory geometry: the pure arithmetic both substrates share.

The sim deployment (:class:`~repro.core.cache.DittoCluster`) and the
real-process launcher (:mod:`repro.runtime`) must agree *exactly* on how a
cluster's address space is laid out — hash-table geometry, per-object block
footprint, budget bytes, heap split across memory nodes, the node-0 reserve
for fixed structures — or a client of one substrate cannot address memory
served by the other.  This module is that single source of truth: a pure
function of the construction parameters with no engine or process
dependencies, so a launcher can compute the plan in one process and a
client can recompute the identical plan from the same scalars in another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..memory.allocator import ClientAllocator
from ..memory.node import BLOCK_SIZE
from .config import DittoConfig
from .history import HISTORY_ENTRY_BYTES
from .layout import DittoLayout, object_span
from .policies import make_policy


def ext_schema(policy_names: Sequence[str]) -> Tuple[str, ...]:
    """Extension metadata schema: union of the experts' ext fields."""
    fields: List[str] = []
    for name in policy_names:
        for field in make_policy(name).ext_fields:
            if field not in fields:
                fields.append(field)
    return tuple(fields)


@dataclass
class ClusterPlan:
    """The resolved geometry of one Ditto deployment."""

    capacity_objects: int
    max_capacity_objects: int
    object_bytes: int
    segment_bytes: int
    num_memory_nodes: int
    ext_fields: Tuple[str, ...]
    #: Allocation footprint of one object at the configured size.
    block_bytes_per_object: int
    #: Initial cache budget (grows up to max_capacity via resize_memory).
    budget_bytes: int
    layout: DittoLayout
    history_size: int
    #: Node-0 bytes reserved for fixed structures (hash table, history
    #: counter, and — for the LWH ablation — the remote FIFO history).
    reserve: int
    heap_per_node: int
    #: ``(node_id, base, size)`` for each memory node, bases contiguous.
    node_ranges: List[Tuple[int, int, int]]


def plan_cluster(
    capacity_objects: int,
    object_bytes: int,
    num_clients: int,
    config: Optional[DittoConfig] = None,
    num_memory_nodes: int = 1,
    segment_bytes: int = 256 * 1024,
    max_capacity_objects: Optional[int] = None,
) -> ClusterPlan:
    """Compute the deployment geometry (see :class:`ClusterPlan`)."""
    if num_memory_nodes < 1:
        raise ValueError("need at least one memory node")
    if capacity_objects < 1:
        raise ValueError("capacity must be at least one object")
    config = config or DittoConfig()
    fields = ext_schema(config.policies)

    # Cache budget: capacity in bytes at the configured object size.
    est_span = object_span(0, object_bytes, 8 * len(fields))
    block_bytes_per_object = ClientAllocator.blocks_for(est_span) * BLOCK_SIZE

    max_capacity = max_capacity_objects or capacity_objects
    if max_capacity < capacity_objects:
        raise ValueError("max_capacity_objects below initial capacity")

    # Hash-table geometry: slot_factor slots per cached object so live
    # objects plus unexpired history entries fit comfortably, sized for
    # the provisioned maximum so memory can grow without re-hashing.
    total_slots = max(
        int(max_capacity * config.slot_factor),
        2 * DittoLayout.SLOTS_PER_BUCKET,
    )
    num_buckets = -(-total_slots // DittoLayout.SLOTS_PER_BUCKET)
    layout = DittoLayout(base=0, num_buckets=num_buckets)
    history_size = config.history_size or capacity_objects

    reserve = layout.reserved_bytes
    if not config.use_lwh:
        reserve += 8 + history_size * HISTORY_ENTRY_BYTES

    # Heap: provisioned-maximum bytes plus slack for in-flight segments
    # and size-class fragmentation, split across the memory nodes.
    heap_bytes = (
        2 * max_capacity * block_bytes_per_object
        + 2 * max(num_clients, 1) * segment_bytes
        + (1 << 20)
    )
    heap_per_node = -(-heap_bytes // num_memory_nodes)
    node_ranges: List[Tuple[int, int, int]] = []
    base = 0
    for node_id in range(num_memory_nodes):
        size = heap_per_node + (reserve if node_id == 0 else 0)
        node_ranges.append((node_id, base, size))
        base += size

    return ClusterPlan(
        capacity_objects=capacity_objects,
        max_capacity_objects=max_capacity,
        object_bytes=object_bytes,
        segment_bytes=segment_bytes,
        num_memory_nodes=num_memory_nodes,
        ext_fields=fields,
        block_bytes_per_object=block_bytes_per_object,
        budget_bytes=capacity_objects * block_bytes_per_object,
        layout=layout,
        history_size=history_size,
        reserve=reserve,
        heap_per_node=heap_per_node,
        node_ranges=node_ranges,
    )
