"""The logical FIFO queue of the lightweight eviction history (paper §4.3.1).

History entries live *inside* hash-table slots (see ``layout``); ordering and
expiry come from 48-bit history IDs handed out by a global circular counter in
the memory pool.  The counter is the queue tail; an entry whose ID has fallen
more than the history size behind the counter is logically evicted — it keeps
occupying its slot until an insert overwrites it (lazy eviction).
"""

from __future__ import annotations

HISTORY_ID_BITS = 48
HISTORY_WRAP = 1 << HISTORY_ID_BITS


def history_age(counter: int, history_id: int) -> int:
    """Entries behind the tail counter, accounting for 48-bit wrap-around."""
    return (counter - history_id) % HISTORY_WRAP


def is_expired(counter: int, history_id: int, history_size: int) -> bool:
    """Client-side expiration check (paper's v1/v2/l rule, wrap included)."""
    return history_age(counter, history_id) > history_size


HISTORY_ENTRY_BYTES = 40


class RemoteFifoHistory:
    """The *non*-lightweight alternative: a real FIFO queue on DM.

    Used only by the Figure 24 ablation (Ditto with LWH disabled).  The queue
    entries live in a dedicated memory-pool region and every maintenance step
    costs RDMA verbs (tail FAA, entry WRITE, index lookup READ per miss).  The
    entry *index* a monolithic design would also keep remotely is mirrored in
    local bookkeeping here; its remote access cost is charged by the client.
    """

    def __init__(self, base_addr: int, size: int):
        if size < 1:
            raise ValueError("history size must be >= 1")
        self.tail_addr = base_addr
        self.entries_addr = base_addr + 8
        self.size = size
        self._slot_hashes = [None] * size  # key hash stored per queue slot
        self._index = {}  # key_hash -> (history_id, expert_bitmap)

    @property
    def region_bytes(self) -> int:
        return 8 + self.size * HISTORY_ENTRY_BYTES

    def entry_addr(self, history_id: int) -> int:
        return self.entries_addr + (history_id % self.size) * HISTORY_ENTRY_BYTES

    def insert(self, key_hash: int, history_id: int, expert_bitmap: int) -> None:
        pos = history_id % self.size
        old = self._slot_hashes[pos]
        if old is not None:
            self._index.pop(old, None)
        self._slot_hashes[pos] = key_hash
        self._index[key_hash] = (history_id, expert_bitmap)

    def lookup(self, key_hash: int):
        """Returns (history_id, expert_bitmap) or None."""
        return self._index.get(key_hash)
