"""Offline memory-accounting sweep: no leaked, lost, or double-owned bytes.

After a run quiesces (all client processes finished or crashed *and*
recovered), every byte the controllers ever granted must be accounted for by
exactly one of:

- **live** — referenced by an object slot of the hash table;
- **free** — on some client's local free lists, ready for reuse;
- **bump**  — the unused tail of a client's current bump segment;
- **spare** — a retired bump remainder or a region inherited via crash
  recovery (tracked but not carved for reuse).

The sweep also cross-checks the shared :class:`~repro.memory.allocator.
MemoryBudget`: ``used_bytes`` must equal the total size of live objects.
Chaos tests call this after crash storms to prove recovery leaks nothing;
it holds on healthy runs too, so any regression in the allocator or the
Set/Delete bookkeeping shows up even without fault injection.

The sweep is *offline*: it reads node memory directly at zero simulated
cost.  It is a test oracle, not a runtime mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from . import layout as L


class InvariantViolation(AssertionError):
    """The memory accounting of a quiesced cluster does not add up."""


def _client_regions(cluster) -> Tuple[List, List, List]:
    """Free-list, bump-tail, and spare intervals across every client.

    Migrations in flight (elastic node drains) hold memory through their own
    striped allocators until a survivor adopts them at retire time; those
    regions are part of the accounting too.
    """
    free: List[Tuple[int, int]] = []
    bump: List[Tuple[int, int]] = []
    spare: List[Tuple[int, int]] = []
    from ..memory.node import BLOCK_SIZE

    holders = [client.alloc for client in cluster.clients]
    holders.extend(
        migrator.alloc for migrator in getattr(cluster, "_active_migrators", ())
    )
    for striped in holders:
        for alloc in striped.allocators:
            for nblocks, addrs in alloc._free.items():
                for addr in addrs:
                    free.append((addr, nblocks * BLOCK_SIZE))
            if alloc._bump_addr is not None and alloc._bump_addr < alloc._bump_end:
                bump.append((alloc._bump_addr, alloc._bump_end - alloc._bump_addr))
            spare.extend(alloc._spare)
    return free, bump, spare


def _live_objects(cluster, chunk: int = 128) -> List[Tuple[int, int]]:
    """Blocks referenced by object slots of the hash table (node 0).

    Reads the table in ``chunk``-slot runs rather than slot-by-slot: on
    the sim substrate that is a minor constant factor, but the real
    substrate's sweep reads a live shared-memory heap (or sockets), where
    per-slot round trips would dominate the chaos drill's teardown.
    """
    lay = cluster.layout
    live: List[Tuple[int, int]] = []
    total = lay.total_slots
    index = 0
    while index < total:
        count = min(chunk, total - index)
        addr = lay.slot_addr(index)
        raw = cluster.node.read_bytes(addr, count * L.SLOT_SIZE)
        for slot in L.parse_slots(index, addr, raw, count):
            if slot.is_object:
                live.append((slot.pointer, slot.object_bytes))
        index += count
    return live


def _granted(cluster) -> List[Tuple[int, int]]:
    granted: List[Tuple[int, int]] = []
    for node in cluster.nodes:
        for segs in node.controller.granted_segments().values():
            granted.extend(segs)
    return granted


def sweep(cluster) -> Dict[str, int]:
    """Check the memory-accounting invariants of a quiesced Ditto cluster.

    Returns a summary dict on success; raises :class:`InvariantViolation`
    with a precise description of the first inconsistency otherwise.
    """
    for client in cluster.clients:
        if client._pending_block is not None or client._pending_budget:
            raise InvariantViolation(
                f"client {client.client_id} still holds in-flight op state "
                f"(block={client._pending_block}, "
                f"budget={client._pending_budget}B) — not quiesced, or its "
                "crash was never recovered"
            )

    granted = _granted(cluster)
    live = _live_objects(cluster)
    free, bump, spare = _client_regions(cluster)

    tagged = (
        [("live", a, s) for a, s in live]
        + [("free", a, s) for a, s in free]
        + [("bump", a, s) for a, s in bump]
        + [("spare", a, s) for a, s in spare]
    )

    # 1. No two regions overlap (a byte with two owners is corruption).
    ordered = sorted(tagged, key=lambda t: t[1])
    for (tag_a, addr_a, size_a), (tag_b, addr_b, _) in zip(ordered, ordered[1:]):
        if addr_a + size_a > addr_b:
            raise InvariantViolation(
                f"overlap: {tag_a} region [{addr_a}, {addr_a + size_a}) and "
                f"{tag_b} region starting at {addr_b}"
            )

    # 2a. Every region lies inside a *current* memory node: a region (or a
    # live slot pointer) into a node retired by an elastic removal means a
    # block leaked — or stayed double-owned — across an epoch change.
    spans = sorted((node.base, node.end) for node in cluster.nodes)
    for tag, addr, size in ordered:
        inside = any(base <= addr and addr + size <= end for base, end in spans)
        if not inside:
            raise InvariantViolation(
                f"{tag} region [{addr}, {addr + size}) lies outside every "
                "current memory node (dangling reference across an epoch "
                "change?)"
            )

    # 2b. Every region lies inside some granted segment.
    segs = sorted(granted)
    for tag, addr, size in ordered:
        inside = any(
            seg_addr <= addr and addr + size <= seg_addr + seg_size
            for seg_addr, seg_size in segs
        )
        if not inside:
            raise InvariantViolation(
                f"{tag} region [{addr}, {addr + size}) lies outside every "
                "granted segment"
            )

    # 3. The regions exactly tile the granted bytes: with no overlaps and
    # full containment, equal byte totals imply an exact partition — any
    # shortfall is a leak (granted bytes nobody tracks).
    granted_bytes = sum(size for _, size in granted)
    covered = {
        "live": sum(s for a, s in live),
        "free": sum(s for a, s in free),
        "bump": sum(s for a, s in bump),
        "spare": sum(s for a, s in spare),
    }
    covered_bytes = sum(covered.values())
    if covered_bytes != granted_bytes:
        raise InvariantViolation(
            f"leak: controllers granted {granted_bytes}B but only "
            f"{covered_bytes}B are accounted for ({covered})"
        )

    # 4. The budget ledger matches the table contents.
    if cluster.budget.used_bytes != covered["live"]:
        raise InvariantViolation(
            f"budget ledger drift: used_bytes={cluster.budget.used_bytes} "
            f"but the table references {covered['live']}B of objects"
        )

    return {
        "granted_bytes": granted_bytes,
        "live_bytes": covered["live"],
        "free_bytes": covered["free"],
        "bump_bytes": covered["bump"],
        "spare_bytes": covered["spare"],
        "live_objects": len(live),
    }


__all__ = ["InvariantViolation", "sweep"]
