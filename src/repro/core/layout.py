"""Byte layouts of the sample-friendly hash table (paper Figs. 7 and 9).

Each hash-table slot is 40 bytes:

=======  ====  =====================================================
offset   size  field
=======  ====  =====================================================
0        8     **atomic field**, CASed as one u64:
               bits 0-47 pointer, 48-55 fp, 56-63 size (64 B blocks)
8        8     insert_ts   (stateless; expert bitmap for history entries)
16       8     last_ts     (stateless)
24       8     freq        (stateful, updated with FAA)
32       8     key hash    (for regret matching against history entries)
=======  ====  =====================================================

The two stateless timestamps are contiguous so one RDMA_WRITE updates both;
``freq`` sits on its own word so RDMA_FAA can bump it.  A slot whose atomic
field is zero is empty.  A slot whose size byte is ``0xFF`` is an *embedded
history entry*: the pointer field then carries a 48-bit history ID and the
``insert_ts`` word carries the expert bitmap (Fig. 9).

Objects in the heap are ``8-byte header | extension metadata | key | value``;
the header records the three lengths.  Object sizes are measured in 64-byte
blocks, matching the slot's one-byte size field (max 254 blocks; 255 = 0xFF
is the history tag and 0 means empty).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from ..memory.node import BLOCK_SIZE

SLOT_SIZE = 40
ATOMIC_OFF = 0
INSERT_TS_OFF = 8
LAST_TS_OFF = 16
FREQ_OFF = 24
HASH_OFF = 32
#: insert_ts + last_ts: the stateless group updated by a single WRITE.
STATELESS_OFF = INSERT_TS_OFF
STATELESS_SIZE = 16

POINTER_BITS = 48
POINTER_MASK = (1 << POINTER_BITS) - 1
HISTORY_SIZE_TAG = 0xFF
MAX_SIZE_BLOCKS = 0xFE

_HEADER = struct.Struct("<HIH")  # key length, value length, extension length
OBJECT_HEADER_SIZE = _HEADER.size
_U64 = struct.Struct("<Q")


def stable_hash64(key: bytes) -> int:
    """Deterministic 64-bit key hash (stable across runs and processes)."""
    return _U64.unpack(hashlib.blake2b(key, digest_size=8).digest())[0]


def fingerprint(key_hash: int) -> int:
    """1-byte fp stored in the atomic field to filter slot candidates."""
    fp = (key_hash >> 48) & 0xFF
    return fp or 1  # never 0, so a non-empty slot has a non-zero atomic field


def pack_atomic(pointer: int, fp: int, size_blocks: int) -> int:
    if pointer & ~POINTER_MASK:
        raise ValueError(f"pointer {pointer:#x} exceeds 48 bits")
    if not 0 <= fp <= 0xFF or not 0 <= size_blocks <= 0xFF:
        raise ValueError("fp and size must fit one byte")
    return pointer | (fp << 48) | (size_blocks << 56)


def unpack_atomic(value: int):
    """Returns (pointer, fp, size_blocks)."""
    return value & POINTER_MASK, (value >> 48) & 0xFF, (value >> 56) & 0xFF


def pack_history_atomic(history_id: int) -> int:
    """Atomic field of an embedded history entry (size byte = 0xFF)."""
    return pack_atomic(history_id & POINTER_MASK, 0, HISTORY_SIZE_TAG)


class Slot:
    """A parsed hash-table slot (either a cached object or a history entry)."""

    __slots__ = ("index", "addr", "atomic", "insert_ts", "last_ts", "freq", "key_hash")

    def __init__(
        self,
        index: int,
        addr: int,
        atomic: int,
        insert_ts: int,
        last_ts: int,
        freq: int,
        key_hash: int,
    ):
        self.index = index
        self.addr = addr
        self.atomic = atomic
        self.insert_ts = insert_ts
        self.last_ts = last_ts
        self.freq = freq
        self.key_hash = key_hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "empty" if self.is_empty else ("history" if self.is_history else "object")
        return f"Slot(index={self.index}, kind={kind}, atomic={self.atomic:#x})"

    @property
    def pointer(self) -> int:
        return self.atomic & POINTER_MASK

    @property
    def fp(self) -> int:
        return (self.atomic >> 48) & 0xFF

    @property
    def size_blocks(self) -> int:
        return (self.atomic >> 56) & 0xFF

    @property
    def is_empty(self) -> bool:
        return self.atomic == 0

    @property
    def is_history(self) -> bool:
        return self.size_blocks == HISTORY_SIZE_TAG

    @property
    def is_object(self) -> bool:
        return not self.is_empty and not self.is_history

    @property
    def history_id(self) -> int:
        return self.pointer

    @property
    def expert_bitmap(self) -> int:
        """History entries reuse the insert_ts word for the expert bitmap."""
        return self.insert_ts

    @property
    def object_bytes(self) -> int:
        return self.size_blocks * BLOCK_SIZE


def parse_slot(index: int, addr: int, raw: bytes, offset: int = 0) -> Slot:
    atomic, insert_ts, last_ts, freq, key_hash = struct.unpack_from(
        "<QQQQQ", raw, offset
    )
    return Slot(index, addr, atomic, insert_ts, last_ts, freq, key_hash)


def parse_slots(base_index: int, base_addr: int, raw: bytes, count: int) -> list:
    """Parse ``count`` consecutive slots with one struct call (hot path)."""
    words = struct.unpack_from("<%dQ" % (count * 5), raw)
    return [
        Slot(
            base_index + i,
            base_addr + i * SLOT_SIZE,
            words[j],
            words[j + 1],
            words[j + 2],
            words[j + 3],
            words[j + 4],
        )
        for i, j in zip(range(count), range(0, count * 5, 5))
    ]


def pack_metadata(insert_ts: int, last_ts: int, freq: int, key_hash: int) -> bytes:
    """The 32-byte metadata field written on insert (one RDMA_WRITE)."""
    return struct.pack("<QQQQ", insert_ts, last_ts, freq, key_hash)


def encode_object(key: bytes, value: bytes, ext: bytes = b"") -> bytes:
    if len(key) > 0xFFFF or len(ext) > 0xFFFF or len(value) > 0xFFFFFFFF:
        raise ValueError("object component too large")
    return _HEADER.pack(len(key), len(value), len(ext)) + ext + key + value


def decode_object(raw: bytes):
    """Returns (key, value, ext); ``raw`` may include trailing block padding."""
    klen, vlen, elen = _HEADER.unpack_from(raw)
    start = OBJECT_HEADER_SIZE
    ext = bytes(raw[start : start + elen])
    key = bytes(raw[start + elen : start + elen + klen])
    value = bytes(raw[start + elen + klen : start + elen + klen + vlen])
    if len(key) != klen or len(value) != vlen:
        raise ValueError("truncated object")
    return key, value, ext


def object_span(key_len: int, value_len: int, ext_len: int = 0) -> int:
    """Total heap bytes for an object before block rounding."""
    return OBJECT_HEADER_SIZE + ext_len + key_len + value_len


class DittoLayout:
    """Address map of Ditto's fixed structures at the base of a memory node.

    ``[history counter | expert weights | hash table | heap ...]``
    """

    SLOTS_PER_BUCKET = 8
    WEIGHTS_SLOTS = 16  # reserved space for up to 16 expert weights

    def __init__(self, base: int, num_buckets: int, slots_per_bucket: int = 0):
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.base = base
        self.num_buckets = num_buckets
        self.slots_per_bucket = slots_per_bucket or self.SLOTS_PER_BUCKET
        self.history_counter_addr = base
        self.weights_addr = base + 8
        table_start = base + 8 + 8 * self.WEIGHTS_SLOTS
        self.table_addr = (table_start + 63) // 64 * 64  # cache-line align
        self.total_slots = self.num_buckets * self.slots_per_bucket

    @property
    def table_bytes(self) -> int:
        return self.total_slots * SLOT_SIZE

    @property
    def reserved_bytes(self) -> int:
        """Bytes at the node base not available to the heap allocator."""
        return (self.table_addr + self.table_bytes) - self.base

    def bucket_index(self, key_hash: int) -> int:
        return key_hash % self.num_buckets

    def bucket_addr(self, bucket: int) -> int:
        return self.table_addr + bucket * self.slots_per_bucket * SLOT_SIZE

    def slot_addr(self, slot_index: int) -> int:
        if not 0 <= slot_index < self.total_slots:
            raise IndexError(f"slot index {slot_index} out of range")
        return self.table_addr + slot_index * SLOT_SIZE

    def slot_index(self, bucket: int, position: int) -> int:
        return bucket * self.slots_per_bucket + position
