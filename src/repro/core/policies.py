"""Caching algorithms as priority functions (paper §4.2, Table 3).

Ditto's client-centric framework reduces a caching algorithm to two small
callbacks over per-object access metadata:

- ``update(metadata, now)`` — maintain any algorithm-specific *extension*
  metadata after an access (the framework itself maintains the default
  fields of Table 1: size, insert_ts, last_ts, freq), and
- ``priority(metadata, now)`` — map metadata to a real number; the sampled
  object with the **lowest** priority is the eviction victim.

The same policy objects drive both the byte-level DM client
(``repro.core.client``) and the fast hit-rate simulator (``repro.cachesim``),
so hit-rate experiments and throughput experiments share one source of truth
for algorithm semantics.

Policies with per-client state (the GreedyDual family's inflation value ``L``)
keep it in the policy instance, mirroring the paper's client-local "cost"
information.  Extension metadata (``ext_fields``) is stored with the object on
DM and in a dict in the fast simulator.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple, Type


class Metadata:
    """Per-object access information (paper Table 1).

    Global fields are maintained collaboratively in the hash-table slot;
    ``cost`` and ``latency`` are client-local estimates; ``ext`` holds
    algorithm extensions (stored with the object on DM, §4.4).
    """

    __slots__ = ("size", "insert_ts", "last_ts", "freq", "cost", "latency", "ext")

    def __init__(
        self,
        size: int = 1,
        insert_ts: float = 0.0,
        last_ts: float = 0.0,
        freq: int = 0,
        cost: float = 1.0,
        latency: float = 0.0,
        ext: Optional[Dict[str, float]] = None,
    ):
        self.size = size
        self.insert_ts = insert_ts
        self.last_ts = last_ts
        self.freq = freq
        self.cost = cost
        self.latency = latency
        self.ext = ext if ext is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Metadata(size={self.size}, insert_ts={self.insert_ts}, "
            f"last_ts={self.last_ts}, freq={self.freq}, ext={self.ext})"
        )


class CachePolicy:
    """Base class: subclasses define ``priority`` and optionally ``update``."""

    #: registry key and display name
    name = "base"
    #: access information used, for the Table 3 summary
    #: (subset of {"ts_L", "ts_I", "F", "S", "M"})
    info: Tuple[str, ...] = ()
    #: extension metadata fields persisted with objects (all 8-byte floats)
    ext_fields: Tuple[str, ...] = ()

    def update(self, m: Metadata, now: float) -> None:
        """Maintain extension metadata after an access (default: nothing)."""

    def priority(self, m: Metadata, now: float) -> float:
        raise NotImplementedError

    def on_evict(self, m: Metadata, now: float) -> None:
        """Hook invoked with the victim's metadata (GreedyDual aging)."""

    def on_insert(self, m: Metadata, now: float) -> None:
        """Hook invoked when an object is first inserted."""
        self.update(m, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class LRU(CachePolicy):
    """Least recently used: evict the oldest last-access timestamp."""

    name = "lru"
    info = ("ts_L",)

    def priority(self, m: Metadata, now: float) -> float:
        return m.last_ts


class MRU(CachePolicy):
    """Most recently used: evict the newest last-access timestamp."""

    name = "mru"
    info = ("ts_L",)

    def priority(self, m: Metadata, now: float) -> float:
        return -m.last_ts


class LFU(CachePolicy):
    """Least frequently used: evict the smallest access count."""

    name = "lfu"
    info = ("F",)

    def priority(self, m: Metadata, now: float) -> float:
        return m.freq


class FIFO(CachePolicy):
    """First in, first out: evict the oldest insertion."""

    name = "fifo"
    info = ("ts_I",)

    def priority(self, m: Metadata, now: float) -> float:
        return m.insert_ts


class SIZE(CachePolicy):
    """Evict the largest object first."""

    name = "size"
    info = ("S",)

    def priority(self, m: Metadata, now: float) -> float:
        return -m.size


class GDS(CachePolicy):
    """GreedyDual-Size (Cao & Irani): H = L + cost / size."""

    name = "gds"
    info = ("S",)
    ext_fields = ("gds_h",)

    def __init__(self) -> None:
        self.inflation = 0.0

    def update(self, m: Metadata, now: float) -> None:
        m.ext["gds_h"] = self.inflation + m.cost / max(m.size, 1)

    def priority(self, m: Metadata, now: float) -> float:
        return m.ext.get("gds_h", 0.0)

    def on_evict(self, m: Metadata, now: float) -> None:
        self.inflation = max(self.inflation, self.priority(m, now))


class GDSF(CachePolicy):
    """GreedyDual-Size-Frequency: H = L + cost * freq / size."""

    name = "gdsf"
    info = ("F", "S")
    ext_fields = ("gdsf_h",)

    def __init__(self) -> None:
        self.inflation = 0.0

    def update(self, m: Metadata, now: float) -> None:
        m.ext["gdsf_h"] = self.inflation + m.cost * m.freq / max(m.size, 1)

    def priority(self, m: Metadata, now: float) -> float:
        return m.ext.get("gdsf_h", 0.0)

    def on_evict(self, m: Metadata, now: float) -> None:
        self.inflation = max(self.inflation, self.priority(m, now))


class LFUDA(CachePolicy):
    """LFU with dynamic aging: H = L + freq."""

    name = "lfuda"
    info = ("F", "M")
    ext_fields = ("lfuda_h",)

    def __init__(self) -> None:
        self.inflation = 0.0

    def update(self, m: Metadata, now: float) -> None:
        m.ext["lfuda_h"] = self.inflation + m.freq

    def priority(self, m: Metadata, now: float) -> float:
        return m.ext.get("lfuda_h", 0.0)

    def on_evict(self, m: Metadata, now: float) -> None:
        self.inflation = max(self.inflation, self.priority(m, now))


class LRUK(CachePolicy):
    """LRU-K (paper Listing 1): evict by the K-th most recent access time.

    The K timestamps form a ring buffer indexed by ``freq``; objects with
    fewer than K accesses fall back to FIFO on their insert timestamp.
    """

    name = "lruk"
    info = ("M",)

    def __init__(self, k: int = 2):
        self.k = k
        self.ext_fields = tuple(f"lruk_ts{i}" for i in range(k))

    def update(self, m: Metadata, now: float) -> None:
        idx = m.freq % self.k
        m.ext[f"lruk_ts{idx}"] = now

    def priority(self, m: Metadata, now: float) -> float:
        if m.freq < self.k:
            return m.insert_ts
        idx = (m.freq - self.k + 1) % self.k
        return m.ext.get(f"lruk_ts{idx}", m.insert_ts)


class LRFU(CachePolicy):
    """LRFU: exponentially decayed combined recency/frequency (CRF) value.

    ``decay_half_life`` is in the same time unit as ``now`` (microseconds in
    the DM simulation, accesses in the fast simulator).
    """

    name = "lrfu"
    info = ("ts_L", "M")
    ext_fields = ("lrfu_crf",)

    def __init__(self, decay_half_life: float = 10_000.0):
        self.decay_half_life = decay_half_life

    def _decay(self, elapsed: float) -> float:
        return 2.0 ** (-elapsed / self.decay_half_life)

    def update(self, m: Metadata, now: float) -> None:
        crf = m.ext.get("lrfu_crf", 0.0)
        elapsed = max(now - m.last_ts, 0.0)
        m.ext["lrfu_crf"] = 1.0 + crf * self._decay(elapsed)

    def priority(self, m: Metadata, now: float) -> float:
        crf = m.ext.get("lrfu_crf", 0.0)
        return crf * self._decay(max(now - m.last_ts, 0.0))


class LIRS(CachePolicy):
    """Simplified LIRS: evict by largest inter-reference recency.

    Objects referenced once have infinite IRR (the HIR set) and are evicted
    first; among re-referenced objects, a larger gap between the last two
    accesses means weaker locality and earlier eviction.
    """

    name = "lirs"
    info = ("F", "ts_L", "M")
    ext_fields = ("lirs_irr",)

    def update(self, m: Metadata, now: float) -> None:
        if m.freq >= 2:
            m.ext["lirs_irr"] = now - m.last_ts
        else:
            m.ext["lirs_irr"] = math.inf

    def priority(self, m: Metadata, now: float) -> float:
        irr = m.ext.get("lirs_irr", math.inf)
        return -irr


class HYPERBOLIC(CachePolicy):
    """Hyperbolic caching (Blankstein et al.): evict the lowest hit density,
    freq / (time in cache * size)."""

    name = "hyperbolic"
    info = ("ts_L", "F", "S")

    def priority(self, m: Metadata, now: float) -> float:
        age = max(now - m.insert_ts, 1e-9)
        return m.freq / (age * max(m.size, 1))


#: All integrated algorithms, keyed by registry name (Table 3 order).
POLICY_REGISTRY: Dict[str, Type[CachePolicy]] = {
    cls.name: cls
    for cls in (
        LRU,
        LFU,
        MRU,
        GDS,
        LIRS,
        FIFO,
        SIZE,
        GDSF,
        LRFU,
        LRUK,
        LFUDA,
        HYPERBOLIC,
    )
}


def make_policy(name: str, **kwargs) -> CachePolicy:
    """Instantiate a registered policy by name (e.g. ``make_policy("lru")``)."""
    try:
        cls = POLICY_REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(POLICY_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def policy_loc(policy: CachePolicy) -> int:
    """Lines of code of a policy's update/priority/hooks (Table 3's metric).

    Counts non-blank, non-docstring source lines of the methods the policy
    overrides, i.e. the code a user writes to integrate the algorithm.
    """
    import inspect

    total = 0
    for attr in ("update", "priority", "on_evict", "on_insert", "__init__"):
        fn = getattr(type(policy), attr, None)
        if fn is None or getattr(CachePolicy, attr, None) is fn:
            continue
        source = inspect.getsource(fn)
        in_doc = False
        for line in source.splitlines():
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith(('"""', "'''")):
                # toggle docstring state; single-line docstrings toggle twice
                quote = stripped[:3]
                if stripped == quote or not stripped.endswith(quote) or len(stripped) < 6:
                    in_doc = not in_doc
                continue
            if in_doc:
                continue
            total += 1
    return total
