"""Shared exponential-backoff-with-jitter schedule.

Every retry loop in the system — client fault retries, migration steps,
crash-recovery RPCs, and the consensus client's leader probing — pauses on
the same schedule: ``base * 2**(attempt-1)``, clamped to a ceiling, stretched
by up to ``jitter`` drawn from the caller's deterministic RNG.  Keeping the
formula (and, critically, the RNG draw discipline: exactly one draw per
jittered delay, none otherwise) in one place is what keeps seeded runs
byte-identical across refactors of the callers.
"""

from __future__ import annotations

import random
from typing import Optional


def backoff_us(
    attempt: int,
    *,
    base: float,
    ceiling: float = 0.0,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
) -> float:
    """Delay in simulated microseconds before retry ``attempt`` (1-based).

    ``base <= 0`` disables backoff (returns 0.0 with no RNG draw).
    ``ceiling`` caps the exponential growth when positive.  ``jitter > 0``
    stretches the delay by ``1 + jitter * rng.random()`` — one draw from
    ``rng``, which must then be provided.
    """
    if base <= 0.0:
        return 0.0
    delay = base * (2 ** (attempt - 1))
    if ceiling > 0.0 and delay > ceiling:
        delay = ceiling
    if jitter > 0.0:
        if rng is None:
            raise ValueError("jitter requires an rng")
        delay *= 1.0 + jitter * rng.random()
    return delay


def backoff_s(
    attempt: int,
    *,
    base_s: float,
    ceiling_s: float = 0.0,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
) -> float:
    """Wall-clock twin of :func:`backoff_us` for the real substrate.

    Same formula, same one-draw-per-jittered-delay discipline, expressed
    in seconds so ``asyncio.sleep`` callers don't scatter unit
    conversions (and unit slips) around the runtime package.
    """
    return backoff_us(
        attempt, base=base_s * 1e6, ceiling=ceiling_s * 1e6,
        jitter=jitter, rng=rng,
    ) / 1e6


__all__ = ["backoff_s", "backoff_us"]
