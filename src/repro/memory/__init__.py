"""The memory pool: memory nodes, controllers, and client-side allocation."""

from .allocator import ClientAllocator, MemoryBudget, StripedAllocator
from .controller import Controller, OutOfMemoryError, SegmentState
from .node import BLOCK_SIZE, MemoryAccessError, MemoryNode, MemoryPool

__all__ = [
    "BLOCK_SIZE",
    "ClientAllocator",
    "Controller",
    "MemoryAccessError",
    "MemoryBudget",
    "MemoryNode",
    "MemoryPool",
    "OutOfMemoryError",
    "SegmentState",
    "StripedAllocator",
]
