"""Client-side fine-grained allocation (two-level memory management).

Following FUSEE, clients obtain coarse *segments* from the MN controller via
RPC (infrequent, off the critical path) and carve them locally into 64-byte
blocks.  Frees return blocks to the freeing client's local free lists; since
every block lives in shared remote memory, any client may reuse any address,
so no cross-client coordination is needed.

:class:`MemoryBudget` is the cache-capacity ledger.  Real Ditto discovers
"cache full" when allocation fails against the configured memory limit;
clients here consult a shared budget object at zero simulated cost, which
models the client-cached quota a real deployment distributes out of band.
Shrinking the budget (elastic memory scale-down) makes the cache evict on the
next inserts until usage fits, with no data migration — the DM property the
paper highlights.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..rdma.verbs import RdmaEndpoint
from .controller import OutOfMemoryError
from .node import BLOCK_SIZE, MemoryNode


class MemoryBudget:
    """Shared accounting of cache memory: the elastic "memory resource"."""

    def __init__(self, limit_bytes: int):
        if limit_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.limit_bytes = limit_bytes
        self.used_bytes = 0

    def try_consume(self, nbytes: int) -> bool:
        if self.used_bytes + nbytes > self.limit_bytes:
            return False
        self.used_bytes += nbytes
        return True

    def release(self, nbytes: int) -> None:
        self.used_bytes -= nbytes
        if self.used_bytes < 0:
            raise RuntimeError("memory budget released more than consumed")

    def resize(self, limit_bytes: int) -> None:
        """Elastically grow or shrink the cache's memory allowance."""
        if limit_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.limit_bytes = limit_bytes

    @property
    def over_limit(self) -> bool:
        return self.used_bytes > self.limit_bytes

    def sample(self) -> dict:
        """Point-in-time budget snapshot (``repro.obs`` timelines)."""
        limit = self.limit_bytes
        return {
            "used_bytes": self.used_bytes,
            "limit_bytes": limit,
            "utilization": self.used_bytes / limit if limit else 0.0,
        }


class ClientAllocator:
    """Per-client block allocator over controller-granted segments."""

    def __init__(
        self,
        endpoint: RdmaEndpoint,
        node: MemoryNode,
        segment_bytes: int = 1 << 20,
        owner: int = -1,
    ):
        if segment_bytes % BLOCK_SIZE:
            raise ValueError("segment size must be a multiple of the block size")
        self.endpoint = endpoint
        self.node = node
        self.segment_bytes = segment_bytes
        #: Identity attached to segment grants at the controller, so a
        #: survivor can reconcile a crashed client's grants after the fact.
        self.owner = owner
        self._bump_addr: Optional[int] = None
        self._bump_end = 0
        # free lists keyed by size in blocks
        self._free: Dict[int, List[int]] = {}
        #: Segments this client *knows* it was granted (recorded when the
        #: ALLOC RPC response lands; may lag the controller's grant log if
        #: the client dies mid-RPC).
        self._segments: List[Tuple[int, int]] = []
        #: Granted-but-unusable regions: bump remainders abandoned at refill
        #: and regions inherited through :meth:`adopt`.  Tracked so every
        #: granted byte stays accounted (see ``repro.core.invariants``).
        self._spare: List[Tuple[int, int]] = []

    @staticmethod
    def blocks_for(nbytes: int) -> int:
        """Object size in 64 B blocks (the unit the slot's size byte records)."""
        return max(1, (nbytes + BLOCK_SIZE - 1) // BLOCK_SIZE)

    def try_alloc_free(self, nbytes: int) -> Optional[int]:
        """Pop a recycled block run of the right size class, if any."""
        bucket = self._free.get(self.blocks_for(nbytes))
        if bucket:
            return bucket.pop()
        return None

    def alloc(self, nbytes: int) -> Generator:
        """Allocate ``nbytes`` (rounded to blocks); returns the address.

        Served from local free lists or the current segment without network
        traffic; falls back to an ALLOC RPC for a fresh segment.
        """
        recycled = self.try_alloc_free(nbytes)
        if recycled is not None:
            return recycled
        nblocks = self.blocks_for(nbytes)
        size = nblocks * BLOCK_SIZE
        if self._bump_addr is None or self._bump_addr + size > self._bump_end:
            want = max(self.segment_bytes, size)
            tracer = self.endpoint.tracer
            t0 = self.endpoint.engine._now if tracer is not None else 0.0
            if self.endpoint.consensus is not None:
                addr = yield from self.endpoint.consensus.submit(
                    ("alloc_segment", self.node.node_id, want, self.owner)
                )
            else:
                addr = yield from self.endpoint.rpc(
                    self.node, "alloc_segment", (want, self.owner)
                )
            if tracer is not None:
                tracer.complete(
                    "alloc.segment", "allocator", t0,
                    {"bytes": want, "node": self.node.node_id},
                )
            # Only after the RPC succeeded: park the abandoned remainder on
            # the spare list.  Doing it before the RPC would leave the same
            # region both spare and bump-servable if the RPC fails (OOM or
            # an injected fault) — a double-owned range.
            if self._bump_addr is not None and self._bump_addr < self._bump_end:
                self._spare.append(
                    (self._bump_addr, self._bump_end - self._bump_addr)
                )
            self._segments.append((addr, want))
            self._bump_addr = addr
            self._bump_end = addr + want
        addr = self._bump_addr
        self._bump_addr += size
        return addr

    def free(self, addr: int, nbytes: int) -> None:
        """Return a block run to the local free list (no network traffic)."""
        self._free[self.blocks_for(nbytes)] = self._free.get(
            self.blocks_for(nbytes), []
        )
        self._free[self.blocks_for(nbytes)].append(addr)

    @property
    def free_blocks(self) -> int:
        return sum(size * len(addrs) for size, addrs in self._free.items())

    @property
    def segments(self) -> List[Tuple[int, int]]:
        """Segments this client recorded as granted (address, size)."""
        return list(self._segments)

    def record_segment(self, addr: int, size: int) -> None:
        """Register an externally reconciled grant (crash recovery)."""
        self._segments.append((addr, size))
        self._spare.append((addr, size))

    def adopt(self, other: "ClientAllocator") -> None:
        """Absorb a crashed client's allocator state.

        Free lists, the unused bump remainder, spare regions, and segment
        records all move to this (surviving) allocator; ``other`` is left
        empty.  Purely local bookkeeping — the network cost of learning the
        dead client's grants is paid separately via the ``list_segments``
        RPC during recovery.
        """
        for size, addrs in other._free.items():
            self._free.setdefault(size, []).extend(addrs)
        if other._bump_addr is not None and other._bump_addr < other._bump_end:
            self._spare.append(
                (other._bump_addr, other._bump_end - other._bump_addr)
            )
        self._spare.extend(other._spare)
        self._segments.extend(other._segments)
        other._free = {}
        other._bump_addr = None
        other._bump_end = 0
        other._spare = []
        other._segments = []


class StripedAllocator:
    """Client-side allocation across several memory nodes.

    Segments are taken from the nodes round-robin, spreading objects (and
    therefore data-path READs/WRITEs) over every node's NIC; frees route back
    to the owning node's allocator by address.  This is how Ditto uses a
    memory pool with multiple MNs: the pool only needs ALLOC/FREE plus the
    one-sided verbs (paper §2.2).
    """

    def __init__(self, endpoint, nodes, segment_bytes: int = 1 << 20, owner: int = -1):
        if not nodes:
            raise ValueError("need at least one memory node")
        self.owner = owner
        self._endpoint = endpoint
        self._segment_bytes = segment_bytes
        self._allocators = [
            ClientAllocator(endpoint, node, segment_bytes, owner=owner)
            for node in nodes
        ]
        self._nodes = list(nodes)
        #: Per-node flag: only active nodes serve fresh allocations.  Frees
        #: still route to inactive (draining) nodes' allocators by address.
        self._active = [True] * len(nodes)
        #: (base, end) ranges of nodes dropped by elastic removal: a free
        #: targeting one is a stale pointer into memory that no longer
        #: exists, dropped silently instead of raising.
        self._retired_ranges: List[Tuple[int, int]] = []
        self._next = 0

    blocks_for = staticmethod(ClientAllocator.blocks_for)

    def alloc(self, nbytes: int) -> Generator:
        # Recycled blocks first, wherever they live: reuse beats fresh
        # segments regardless of the striping cursor.
        for allocator, active in zip(self._allocators, self._active):
            if not active:
                continue
            recycled = allocator.try_alloc_free(nbytes)
            if recycled is not None:
                return recycled
        last_error: Optional[Exception] = None
        for _ in range(len(self._allocators)):
            allocator = self._allocators[self._next]
            active = self._active[self._next]
            self._next = (self._next + 1) % len(self._allocators)
            if not active:
                continue
            try:
                addr = yield from allocator.alloc(nbytes)
                return addr
            except OutOfMemoryError as error:
                last_error = error
        raise last_error if last_error else OutOfMemoryError("no memory nodes")

    def free(self, addr: int, nbytes: int) -> None:
        for node, allocator in zip(self._nodes, self._allocators):
            if node.contains(addr, 1):
                allocator.free(addr, nbytes)
                return
        for base, end in self._retired_ranges:
            if base <= addr < end:
                return  # stale pointer into a removed node; nothing to track
        raise ValueError(f"address {addr} not owned by any node")

    # -- elastic membership -------------------------------------------------

    def set_active(self, active_node_ids) -> None:
        """Restrict fresh allocations to the given node ids (membership)."""
        ids = set(active_node_ids)
        self._active = [node.node_id in ids for node in self._nodes]

    def add_node(self, node, active: bool = True) -> None:
        """Start striping over a newly added memory node."""
        if any(existing is node for existing in self._nodes):
            return
        self._allocators.append(
            ClientAllocator(
                self._endpoint, node, self._segment_bytes, owner=self.owner
            )
        )
        self._nodes.append(node)
        self._active.append(active)

    def drop_node(self, node) -> "ClientAllocator":
        """Forget a removed node: its allocator state (free lists, bump tail,
        spares, grant records) is discarded with the node's memory.  Returns
        the dropped per-node allocator for inspection."""
        for index, candidate in enumerate(self._nodes):
            if candidate is node:
                break
        else:
            raise ValueError(f"node {node!r} not striped by this allocator")
        dropped = self._allocators.pop(index)
        del self._nodes[index]
        del self._active[index]
        self._retired_ranges.append((node.base, node.end))
        if self._nodes:
            self._next %= len(self._nodes)
        else:
            self._next = 0
        return dropped

    @property
    def free_blocks(self) -> int:
        return sum(a.free_blocks for a in self._allocators)

    @property
    def allocators(self) -> List[ClientAllocator]:
        """Per-node allocators, aligned with the cluster's node list."""
        return list(self._allocators)

    def allocator_for_node(self, node) -> ClientAllocator:
        for candidate, allocator in zip(self._nodes, self._allocators):
            if candidate is node:
                return allocator
        raise ValueError(f"node {node!r} not striped by this allocator")

    def segments(self) -> List[Tuple[int, int]]:
        return [seg for a in self._allocators for seg in a.segments]

    def adopt(self, other: "StripedAllocator") -> None:
        """Absorb another striped allocator's state, matched by node.

        Matching by node identity (not list position) keeps adoption correct
        when the two allocators saw elastic node adds/removes in different
        orders.  A non-empty allocator for a node this side does not stripe
        is an error — its bytes would silently vanish.
        """
        for node, theirs in zip(other._nodes, other._allocators):
            mine = None
            for candidate, allocator in zip(self._nodes, self._allocators):
                if candidate is node:
                    mine = allocator
                    break
            if mine is None:
                if (
                    theirs._free or theirs._spare or theirs._segments
                    or (theirs._bump_addr is not None
                        and theirs._bump_addr < theirs._bump_end)
                ):
                    raise ValueError(
                        f"cannot adopt non-empty allocator for unknown node "
                        f"{node.node_id}"
                    )
                continue
            mine.adopt(theirs)


__all__ = [
    "BLOCK_SIZE",
    "ClientAllocator",
    "MemoryBudget",
    "OutOfMemoryError",
    "StripedAllocator",
]
