"""Memory-node controllers: weak compute serving management RPCs.

The controller owns the MN's CPU cores (1 by default, per the paper's
testbed) as a simulated :class:`Resource`.  RPC handlers are registered with a
CPU cost — a constant or a ``cost(payload) -> us`` callable — and the handler
function runs at the *end* of its CPU service window, so its side effects
linearize at a single simulated instant.

The segment-management state itself (the coarse level of the two-level
memory management scheme) lives in :class:`SegmentState`, a pure in-memory
state machine with no engine or network dependencies.  The split matters for
controller HA (``repro.core.consensus``): replicated controllers apply the
same commands to their own :class:`SegmentState` copies, while the serving
path here stays the single-controller fast path.  Ditto's adaptive module
and the CliqueMap baseline register their own handlers on top.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple, Union

from ..rdma.verbs import StaleEpoch
from ..sim import Engine, Resource, Timeout
from .node import BLOCK_SIZE, MemoryNode

CostSpec = Union[float, Callable[[object], float]]


class OutOfMemoryError(RuntimeError):
    """The memory node cannot satisfy a segment allocation."""


class SegmentState:
    """Pure segment-management state of one memory node.

    Bump pointer, size-classed free lists, and the per-owner grant log —
    everything ``alloc_segment``/``free_segment``/``list_segments``/
    ``reassign_grants`` read or write, with no side effects beyond its own
    fields.  Deterministic and cloneable, so consensus replicas can apply
    the same command stream to independent copies and converge.
    """

    __slots__ = (
        "node_id", "next_free", "end", "free_segments", "grants",
        "draining", "epoch",
    )

    def __init__(self, node_id: int, start: int, end: int):
        self.node_id = node_id
        self.next_free = start
        self.end = end
        self.free_segments: Dict[int, List[int]] = {}  # size -> [addr, ...]
        # Grant log: owner id -> [(addr, size), ...].  Lets a survivor
        # reconcile a crashed client's segments (``list_segments``) and
        # backs the offline memory-accounting sweep.
        self.grants: Dict[int, List[Tuple[int, int]]] = {}
        #: Once True (the node is draining out of the pool), segment
        #: allocation is fenced; ``epoch`` is the membership epoch a
        #: StaleEpoch NACK advertises.
        self.draining = False
        self.epoch = 0

    def clone(self) -> "SegmentState":
        new = SegmentState(self.node_id, self.next_free, self.end)
        new.free_segments = {
            size: list(addrs) for size, addrs in self.free_segments.items()
        }
        new.grants = {owner: list(segs) for owner, segs in self.grants.items()}
        new.draining = self.draining
        new.epoch = self.epoch
        return new

    # -- commands -----------------------------------------------------------

    def alloc(self, size: int, owner: int) -> int:
        """Hand out a contiguous segment; raises when the node is exhausted."""
        size = _round_up(size, BLOCK_SIZE)
        bucket = self.free_segments.get(size)
        if bucket:
            addr = bucket.pop()
        else:
            if self.next_free + size > self.end:
                raise OutOfMemoryError(
                    f"node {self.node_id}: cannot allocate {size} bytes"
                )
            addr = self.next_free
            self.next_free += size
        self.grants.setdefault(owner, []).append((addr, size))
        return addr

    def free(self, addr: int, size: int) -> None:
        size = _round_up(size, BLOCK_SIZE)
        self.free_segments.setdefault(size, []).append(addr)
        for grants in self.grants.values():
            if (addr, size) in grants:
                grants.remove((addr, size))
                break

    def list_owner(self, owner: int) -> list:
        """Segments currently granted to ``owner`` (crash reconciliation)."""
        return list(self.grants.get(owner, ()))

    def reassign(self, from_owner: int, to_owner: int) -> int:
        """Move every grant from one owner to another; returns the count."""
        moving = self.grants.pop(from_owner, [])
        if moving:
            self.grants.setdefault(to_owner, []).extend(moving)
        return len(moving)

    # -- introspection ------------------------------------------------------

    def granted_segments(self) -> Dict[int, list]:
        """Snapshot of the grant log (offline introspection, zero cost)."""
        return {owner: list(segs) for owner, segs in self.grants.items() if segs}

    @property
    def bytes_remaining(self) -> int:
        reclaimed = sum(
            size * len(addrs) for size, addrs in self.free_segments.items()
        )
        return (self.end - self.next_free) + reclaimed


class Controller:
    """The weak-compute controller attached to a memory node."""

    #: Default CPU cost of a trivial handler, on top of dispatch cost.
    DEFAULT_HANDLER_CPU_US = 0.5

    def __init__(self, node: MemoryNode, cores: int = 1, reserve: int = 0):
        """``reserve`` bytes at the node base are kept for fixed structures
        (hash table, global counters) and never handed to segment allocation.
        """
        self.node = node
        self.engine: Engine = node.engine
        self.cpu = Resource(self.engine, cores)
        self._handlers: Dict[str, Tuple[Callable, CostSpec]] = {}
        #: Segment allocation state; shared by reference with the replicated
        #: metadata service when controller HA is armed, so committed
        #: commands and locally served RPCs observe the same state.
        self.state = SegmentState(node.node_id, node.base + reserve, node.end)
        #: Span tracer (repro.obs); None keeps serve() span-free.
        self.tracer = None
        node.controller = self
        self.register("alloc_segment", self._alloc_segment)
        self.register("free_segment", self._free_segment)
        self.register("list_segments", self._list_segments)
        self.register("reassign_grants", self._reassign_grants)

    @property
    def cores(self) -> int:
        return self.cpu.capacity

    def set_cores(self, cores: int) -> None:
        """Elastically adjust MN-side compute (Figure 15)."""
        self.cpu.set_capacity(cores)

    def register(self, op: str, fn: Callable, cpu_us: Optional[CostSpec] = None) -> None:
        if cpu_us is None:
            cpu_us = self.DEFAULT_HANDLER_CPU_US
        self._handlers[op] = (fn, cpu_us)

    def serve(self, op: str, payload) -> Generator:
        """Serve one RPC: queue for a core, burn CPU, run the handler."""
        try:
            fn, cost = self._handlers[op]
        except KeyError:
            raise KeyError(f"no RPC handler registered for {op!r}") from None
        cpu_us = cost(payload) if callable(cost) else cost
        tracer = self.tracer
        t0 = self.engine._now if tracer is not None else 0.0
        yield from self.cpu.acquire()
        try:
            if tracer is not None:
                wait_us = self.engine._now - t0
            yield Timeout(self.node.params.rpc_dispatch_cpu_us + cpu_us)
            result = fn(payload)
        finally:
            self.cpu.release()
        if tracer is not None:
            tracer.complete(
                "rpc." + op, "controller", t0, {"wait_us": wait_us}
            )
        return result

    # -- built-in segment management (thin RPC shims over SegmentState) ----

    def _alloc_segment(self, payload) -> int:
        """Hand out a contiguous segment; raises when the node is exhausted.

        ``payload`` is either a plain size or ``(size, owner)``; grants are
        logged under the owner (anonymous callers share owner ``-1``).
        """
        state = self.state
        if state.draining:
            raise StaleEpoch(
                f"node {self.node.node_id} is draining at epoch "
                f"{state.epoch}: no new segment grants",
                verb="rpc", node_id=self.node.node_id, epoch=state.epoch,
            )
        if isinstance(payload, tuple):
            size, owner = payload
        else:
            size, owner = payload, -1
        return state.alloc(size, owner)

    def _free_segment(self, payload: Tuple[int, int]) -> None:
        addr, size = payload
        self.state.free(addr, size)

    def _list_segments(self, owner: int) -> list:
        return self.state.list_owner(owner)

    def _reassign_grants(self, payload: Tuple[int, int]) -> int:
        from_owner, to_owner = payload
        return self.state.reassign(from_owner, to_owner)

    def granted_segments(self) -> Dict[int, list]:
        return self.state.granted_segments()

    @property
    def bytes_remaining(self) -> int:
        return self.state.bytes_remaining

    # -- back-compat accessors (tests and callers poke these directly) -----

    @property
    def draining(self) -> bool:
        return self.state.draining

    @draining.setter
    def draining(self, value: bool) -> None:
        self.state.draining = value

    @property
    def epoch(self) -> int:
        return self.state.epoch

    @epoch.setter
    def epoch(self, value: int) -> None:
        self.state.epoch = value

    @property
    def _next_free(self) -> int:
        return self.state.next_free

    @_next_free.setter
    def _next_free(self, value: int) -> None:
        self.state.next_free = value

    @property
    def _free_segments(self) -> Dict[int, List[int]]:
        return self.state.free_segments

    @property
    def _grants(self) -> Dict[int, List[Tuple[int, int]]]:
        return self.state.grants


def _round_up(value: int, granule: int) -> int:
    return (value + granule - 1) // granule * granule
