"""Memory-node controllers: weak compute serving management RPCs.

The controller owns the MN's CPU cores (1 by default, per the paper's
testbed) as a simulated :class:`Resource`.  RPC handlers are registered with a
CPU cost — a constant or a ``cost(payload) -> us`` callable — and the handler
function runs at the *end* of its CPU service window, so its side effects
linearize at a single simulated instant.

Built-in handlers implement the coarse level of the two-level memory
management scheme (segment ALLOC/FREE); Ditto's adaptive module and the
CliqueMap baseline register their own handlers on top.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Tuple, Union

from ..rdma.verbs import StaleEpoch
from ..sim import Engine, Resource, Timeout
from .node import BLOCK_SIZE, MemoryNode

CostSpec = Union[float, Callable[[object], float]]


class OutOfMemoryError(RuntimeError):
    """The memory node cannot satisfy a segment allocation."""


class Controller:
    """The weak-compute controller attached to a memory node."""

    #: Default CPU cost of a trivial handler, on top of dispatch cost.
    DEFAULT_HANDLER_CPU_US = 0.5

    def __init__(self, node: MemoryNode, cores: int = 1, reserve: int = 0):
        """``reserve`` bytes at the node base are kept for fixed structures
        (hash table, global counters) and never handed to segment allocation.
        """
        self.node = node
        self.engine: Engine = node.engine
        self.cpu = Resource(self.engine, cores)
        self._handlers: Dict[str, Tuple[Callable, CostSpec]] = {}
        # Segment allocation state (coarse level of two-level management).
        self._next_free = node.base + reserve
        self._free_segments: Dict[int, list] = {}  # size -> [addr, ...]
        # Grant log: owner id -> [(addr, size), ...].  Lets a survivor
        # reconcile a crashed client's segments (``list_segments``) and
        # backs the offline memory-accounting sweep.
        self._grants: Dict[int, list] = {}
        #: Span tracer (repro.obs); None keeps serve() span-free.
        self.tracer = None
        #: Once True (the node is draining out of the pool), segment
        #: allocation is fenced: ``alloc_segment`` NACKs with StaleEpoch so
        #: stale clients stop placing new data here.  ``epoch`` is the
        #: membership epoch the NACK advertises.
        self.draining = False
        self.epoch = 0
        node.controller = self
        self.register("alloc_segment", self._alloc_segment)
        self.register("free_segment", self._free_segment)
        self.register("list_segments", self._list_segments)
        self.register("reassign_grants", self._reassign_grants)

    @property
    def cores(self) -> int:
        return self.cpu.capacity

    def set_cores(self, cores: int) -> None:
        """Elastically adjust MN-side compute (Figure 15)."""
        self.cpu.set_capacity(cores)

    def register(self, op: str, fn: Callable, cpu_us: Optional[CostSpec] = None) -> None:
        if cpu_us is None:
            cpu_us = self.DEFAULT_HANDLER_CPU_US
        self._handlers[op] = (fn, cpu_us)

    def serve(self, op: str, payload) -> Generator:
        """Serve one RPC: queue for a core, burn CPU, run the handler."""
        try:
            fn, cost = self._handlers[op]
        except KeyError:
            raise KeyError(f"no RPC handler registered for {op!r}") from None
        cpu_us = cost(payload) if callable(cost) else cost
        tracer = self.tracer
        t0 = self.engine._now if tracer is not None else 0.0
        yield from self.cpu.acquire()
        try:
            if tracer is not None:
                wait_us = self.engine._now - t0
            yield Timeout(self.node.params.rpc_dispatch_cpu_us + cpu_us)
            result = fn(payload)
        finally:
            self.cpu.release()
        if tracer is not None:
            tracer.complete(
                "rpc." + op, "controller", t0, {"wait_us": wait_us}
            )
        return result

    # -- built-in segment management --------------------------------------

    def _alloc_segment(self, payload) -> int:
        """Hand out a contiguous segment; raises when the node is exhausted.

        ``payload`` is either a plain size or ``(size, owner)``; grants are
        logged under the owner (anonymous callers share owner ``-1``).
        """
        if self.draining:
            raise StaleEpoch(
                f"node {self.node.node_id} is draining at epoch "
                f"{self.epoch}: no new segment grants",
                verb="rpc", node_id=self.node.node_id, epoch=self.epoch,
            )
        if isinstance(payload, tuple):
            size, owner = payload
        else:
            size, owner = payload, -1
        size = _round_up(size, BLOCK_SIZE)
        bucket = self._free_segments.get(size)
        if bucket:
            addr = bucket.pop()
        else:
            if self._next_free + size > self.node.end:
                raise OutOfMemoryError(
                    f"node {self.node.node_id}: cannot allocate {size} bytes"
                )
            addr = self._next_free
            self._next_free += size
        self._grants.setdefault(owner, []).append((addr, size))
        return addr

    def _free_segment(self, payload: Tuple[int, int]) -> None:
        addr, size = payload
        size = _round_up(size, BLOCK_SIZE)
        self._free_segments.setdefault(size, []).append(addr)
        for grants in self._grants.values():
            if (addr, size) in grants:
                grants.remove((addr, size))
                break

    def _list_segments(self, owner: int) -> list:
        """Segments currently granted to ``owner`` (crash reconciliation)."""
        return list(self._grants.get(owner, ()))

    def _reassign_grants(self, payload: Tuple[int, int]) -> int:
        """Move every grant from one owner to another; returns the count.

        Used when a client leaves gracefully (its survivor absorbs the
        grants) and when a finished migration's segments are handed to a
        surviving client — so a later crash of the new owner still
        reconciles the full grant set.
        """
        from_owner, to_owner = payload
        moving = self._grants.pop(from_owner, [])
        if moving:
            self._grants.setdefault(to_owner, []).extend(moving)
        return len(moving)

    def granted_segments(self) -> Dict[int, list]:
        """Snapshot of the grant log (offline introspection, zero cost)."""
        return {owner: list(segs) for owner, segs in self._grants.items() if segs}

    @property
    def bytes_remaining(self) -> int:
        reclaimed = sum(size * len(addrs) for size, addrs in self._free_segments.items())
        return (self.node.end - self._next_free) + reclaimed


def _round_up(value: int, granule: int) -> int:
    return (value + granule - 1) // granule * granule
