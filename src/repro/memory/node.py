"""Memory nodes: byte-addressable remote memory with 8-byte atomics.

A :class:`MemoryNode` owns a contiguous range of the global address space and
stores real bytes in a bytearray.  All mutation happens through the methods
here, which the verb layer calls at the simulated instant the NIC serves the
message — so CAS/FAA linearize exactly like hardware atomics.

A :class:`MemoryPool` groups nodes into one global address space ([base,
base+size) per node) and routes addresses; the paper evaluates with a single
MN but the pool keeps the multi-MN door open.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from ..sim import Engine, RateLimiter
from ..rdma.params import NetworkParams

_U64 = struct.Struct("<Q")

#: Allocation granule: the paper measures object sizes in 64-byte blocks.
BLOCK_SIZE = 64


class MemoryAccessError(RuntimeError):
    """Out-of-range or misaligned access against a memory node."""


class MemoryNode:
    """One memory node: raw memory + its RNIC + (optionally) a controller."""

    def __init__(
        self,
        engine: Optional[Engine],
        size: int,
        base: int = 0,
        node_id: int = 0,
        params: Optional[NetworkParams] = None,
        buffer=None,
    ):
        """``buffer`` (optional) backs the node's memory with an external
        writable buffer — e.g. a ``multiprocessing.shared_memory`` view in
        the real-process substrate — instead of a private bytearray.
        ``engine=None`` builds a node with no simulated RNIC (the real
        substrate serves verbs over sockets; rate limiting is physical)."""
        if size <= 0:
            raise ValueError("memory node size must be positive")
        self.engine = engine
        self.node_id = node_id
        self.base = base
        self.size = size
        self._end = base + size  # immutable; cached for the bounds hot path
        self.params = params or NetworkParams()
        if buffer is None:
            self._memory = bytearray(size)
        else:
            if len(buffer) < size:
                raise ValueError(
                    f"external buffer holds {len(buffer)} bytes, need {size}"
                )
            self._memory = memoryview(buffer)[:size]
        #: The node's RNIC: a serial message pipe shared by all clients
        #: (sim substrate only).
        self.nic = RateLimiter(engine) if engine is not None else None
        #: Attached controller (set by Controller.__init__); weak compute.
        self.controller = None

    # -- bounds ---------------------------------------------------------

    @property
    def end(self) -> int:
        return self._end

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base <= addr and addr + length <= self._end

    def _offset(self, addr: int, length: int) -> int:
        off = addr - self.base
        if off < 0 or addr + length > self._end:
            raise MemoryAccessError(
                f"access [{addr}, {addr + length}) outside node {self.node_id} "
                f"range [{self.base}, {self.end})"
            )
        return off

    # -- raw memory operations (instantaneous; timing lives in verbs) ---

    def read_bytes(self, addr: int, length: int) -> bytes:
        off = self._offset(addr, length)
        return bytes(self._memory[off : off + length])

    def write_bytes(self, addr: int, data: bytes) -> None:
        off = self._offset(addr, len(data))
        self._memory[off : off + len(data)] = data

    def read_u64(self, addr: int) -> int:
        off = self._offset(addr, 8)
        return _U64.unpack_from(self._memory, off)[0]

    def write_u64(self, addr: int, value: int) -> None:
        off = self._offset(addr, 8)
        _U64.pack_into(self._memory, off, value & 0xFFFFFFFFFFFFFFFF)

    def compare_and_swap(self, addr: int, expected: int, new: int) -> int:
        """Atomically swap if current == expected; returns the *old* value."""
        old = self.read_u64(addr)
        if old == expected:
            self.write_u64(addr, new)
        return old

    def fetch_and_add(self, addr: int, delta: int) -> int:
        """Atomically add (mod 2^64); returns the *old* value."""
        old = self.read_u64(addr)
        self.write_u64(addr, (old + delta) & 0xFFFFFFFFFFFFFFFF)
        return old


class MemoryPool:
    """The memory pool: a set of MNs forming one global address space."""

    def __init__(self, nodes: Optional[List[MemoryNode]] = None):
        self.nodes: List[MemoryNode] = list(nodes or [])
        self._check_disjoint()

    def _check_disjoint(self) -> None:
        spans = sorted((n.base, n.end) for n in self.nodes)
        for (_, prev_end), (next_base, _) in zip(spans, spans[1:]):
            if next_base < prev_end:
                raise ValueError("memory node address ranges overlap")

    def add(self, node: MemoryNode) -> None:
        self.nodes.append(node)
        self._check_disjoint()

    def remove(self, node: MemoryNode) -> None:
        """Detach a node (elastic removal); its range stops resolving."""
        self.nodes.remove(node)

    def node_for(self, addr: int, length: int = 1) -> MemoryNode:
        for node in self.nodes:
            if node.contains(addr, length):
                return node
        raise MemoryAccessError(f"address {addr} not in any memory node")

    @property
    def total_size(self) -> int:
        return sum(node.size for node in self.nodes)
