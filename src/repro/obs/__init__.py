"""``repro.obs`` — unified observability for the simulated cluster.

Three pillars (see DESIGN.md §3.3):

- **Metrics** (:mod:`repro.obs.metrics`): labeled counters, gauges, and
  bounded-memory streaming histograms with a deterministic JSON snapshot.
- **Tracing** (:mod:`repro.obs.trace`): sim-time spans around RDMA verbs,
  controller RPCs, client operations, allocator calls, and fault windows,
  exported as Chrome/Perfetto ``trace_event`` JSON.
- **Timelines** (:mod:`repro.obs.sampler`): NIC-slot, MN-CPU, and lock-wait
  utilization sampled from ``sim.resources`` inside measurement windows.

Everything is inert unless a hub is activated — via the bench layer's
``--trace`` flag, :func:`activate`, or ``REPRO_TRACE=<dir>``.  With no hub,
instrumented components hold ``tracer = None`` and skip all observability
code, keeping experiment outputs byte-identical to an uninstrumented run.

Analysis lives in :mod:`repro.obs.report` (``python -m repro.obs.report``).
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .observer import Observability, activate, current, deactivate
from .sampler import WatchedResource, window_sample_times
from .trace import (
    FAULT_TID_BASE,
    EventBudget,
    SpanTracer,
    chrome_document,
    validate_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "activate",
    "current",
    "deactivate",
    "WatchedResource",
    "window_sample_times",
    "FAULT_TID_BASE",
    "EventBudget",
    "SpanTracer",
    "chrome_document",
    "validate_trace",
    "write_chrome_trace",
]
