"""Metrics registry: counters, gauges, and streaming histograms with labels.

Components register named instruments instead of keeping ad-hoc tallies, and
the registry renders one deterministic JSON-safe snapshot at the end of a run
(attached to cached benchmark results by the parallel runner).  Instruments
are identified by ``(name, labels)``: registering the same identity twice
returns the same instrument, so independent components can share a series
(e.g. every client records into the ``op.latency{verb=get}`` histogram).

Labels are free-form string pairs; the conventional keys in this repository
are ``component`` (client / controller / nic / allocator), ``client`` and
``verb``.  Histograms are :class:`repro.sim.stats.StreamingHistogram` —
bounded memory regardless of sample count, with p50/p90/p99 in snapshots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.stats import StreamingHistogram

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A labeled streaming histogram (bounded memory, approximate tails)."""

    __slots__ = ("name", "labels", "hist")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.hist = StreamingHistogram()

    def record(self, value: float, count: int = 1) -> None:
        self.hist.record(value, count)

    @property
    def count(self) -> int:
        return self.hist.count

    def percentile(self, p: float) -> float:
        return self.hist.percentile(p)

    def summary(self) -> Dict[str, float]:
        return self.hist.summary()


class MetricsRegistry:
    """Get-or-create instrument store with a deterministic snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _labelset(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _labelset(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, _labelset(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1])
        return instrument

    @staticmethod
    def _rows(instruments: Iterable, render) -> List[Dict]:
        rows = [
            {"name": i.name, "labels": dict(i.labels), **render(i)}
            for i in instruments
        ]
        rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return rows

    def snapshot(self) -> Dict[str, List[Dict]]:
        """JSON-safe dump of every instrument, deterministically ordered."""
        return {
            "counters": self._rows(
                self._counters.values(), lambda c: {"value": c.value}
            ),
            "gauges": self._rows(
                self._gauges.values(), lambda g: {"value": g.value}
            ),
            "histograms": self._rows(
                self._histograms.values(), lambda h: dict(h.summary())
            ),
        }

    def find(
        self, kind: str, name: str, **labels: str
    ) -> Optional[object]:
        """Look an instrument up without creating it (tests, reports)."""
        store = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }[kind]
        return store.get((name, _labelset(labels)))
