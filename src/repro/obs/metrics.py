"""Metrics registry: counters, gauges, and streaming histograms with labels.

Components register named instruments instead of keeping ad-hoc tallies, and
the registry renders one deterministic JSON-safe snapshot at the end of a run
(attached to cached benchmark results by the parallel runner).  Instruments
are identified by ``(name, labels)``: registering the same identity twice
returns the same instrument, so independent components can share a series
(e.g. every client records into the ``op.latency{verb=get}`` histogram).

Labels are free-form string pairs; the conventional keys in this repository
are ``component`` (client / controller / nic / allocator), ``client`` and
``verb``.  Histograms are :class:`repro.sim.stats.StreamingHistogram` —
bounded memory regardless of sample count, with p50/p90/p99 in snapshots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.stats import StreamingHistogram

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A labeled streaming histogram (bounded memory, approximate tails)."""

    __slots__ = ("name", "labels", "hist")

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self.hist = StreamingHistogram()

    def record(self, value: float, count: int = 1) -> None:
        self.hist.record(value, count)

    @property
    def count(self) -> int:
        return self.hist.count

    def percentile(self, p: float) -> float:
        return self.hist.percentile(p)

    def summary(self) -> Dict[str, float]:
        return self.hist.summary()


def _histogram_row(hist: Histogram) -> Dict[str, float]:
    """Summary fields for a snapshot row, strictly JSON-safe.

    A pre-bound histogram that never saw a sample summarises to NaN/inf
    sentinels; those are not valid JSON and poison shard files and the
    ``__stats__`` payload, so an empty instrument renders as all zeros.
    """
    if hist.count == 0:
        return {"count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0}
    return dict(hist.summary())


class MetricsRegistry:
    """Get-or-create instrument store with a deterministic snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _labelset(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _labelset(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, _labelset(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1])
        return instrument

    @staticmethod
    def _rows(instruments: Iterable, render) -> List[Dict]:
        rows = [
            {"name": i.name, "labels": dict(i.labels), **render(i)}
            for i in instruments
        ]
        rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return rows

    def snapshot(self) -> Dict[str, List[Dict]]:
        """JSON-safe dump of every instrument, deterministically ordered."""
        return {
            "counters": self._rows(
                self._counters.values(), lambda c: {"value": c.value}
            ),
            "gauges": self._rows(
                self._gauges.values(), lambda g: {"value": g.value}
            ),
            "histograms": self._rows(
                self._histograms.values(), _histogram_row
            ),
        }

    def find(
        self, kind: str, name: str, **labels: str
    ) -> Optional[object]:
        """Look an instrument up without creating it (tests, reports)."""
        store = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }[kind]
        return store.get((name, _labelset(labels)))


def _prom_name(name: str, suffix: str = "") -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    base = "".join(out)
    if base and base[0].isdigit():
        base = "_" + base
    return base + suffix


def _prom_escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    pairs = ",".join(
        f'{_prom_name(k)}="{_prom_escape(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + pairs + "}"


def render_prometheus(
    snapshot: Dict[str, List[Dict]], extra_labels: Optional[Dict[str, str]] = None
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` (or a ``__stats__`` RPC's
    ``metrics`` payload) in the Prometheus text exposition format.

    Counters become ``<name>_total``; gauges keep their name; histogram
    summaries become ``<name>{quantile=...}`` series plus ``_count`` and
    ``_sum`` (reconstructed as mean*count).  ``extra_labels`` (e.g.
    ``node="mn0"``) are stamped on every series so one scrape can union
    several nodes' snapshots.
    """
    lines: List[str] = []
    seen_types: set = set()

    def emit_type(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for row in snapshot.get("counters", []):
        name = _prom_name(row["name"], "_total")
        emit_type(name, "counter")
        lines.append(
            f"{name}{_prom_labels(row.get('labels', {}), extra_labels)} "
            f"{row['value']}"
        )
    for row in snapshot.get("gauges", []):
        name = _prom_name(row["name"])
        emit_type(name, "gauge")
        lines.append(
            f"{name}{_prom_labels(row.get('labels', {}), extra_labels)} "
            f"{row['value']}"
        )
    for row in snapshot.get("histograms", []):
        name = _prom_name(row["name"])
        emit_type(name, "summary")
        labels = row.get("labels", {})
        count = row.get("count", 0)
        mean = row.get("mean", 0.0)
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            if key in row:
                lines.append(
                    f"{name}"
                    f"{_prom_labels(labels, {**(extra_labels or {}), 'quantile': quantile})}"
                    f" {row[key]}"
                )
        lines.append(
            f"{name}_count{_prom_labels(labels, extra_labels)} {count}"
        )
        lines.append(
            f"{name}_sum{_prom_labels(labels, extra_labels)} {mean * count}"
        )
    return "\n".join(lines) + ("\n" if lines else "")
