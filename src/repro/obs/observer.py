"""The observability hub and its process-wide runtime switch.

:class:`Observability` owns the metrics registry, one
:class:`~repro.obs.trace.SpanTracer` per bound engine, and the set of watched
resources whose utilization timelines get sampled inside measurement windows.
Clusters and harnesses pick the hub up from :func:`current` at construction
time, so existing experiments need no signature changes.

The runtime contract keeps instrumentation inert by default:

- :func:`current` returns ``None`` unless observability was explicitly
  :func:`activate`'d (by the bench layer's ``--trace`` flag, a test, or the
  ``REPRO_TRACE`` environment variable).
- With no hub active, every instrumented component carries ``tracer = None``
  and a ``None`` metrics handle — the hot path executes zero extra code and
  experiment outputs are byte-identical to an uninstrumented build.

Setting ``REPRO_TRACE=<dir>`` activates a hub at first use and registers an
``atexit`` hook that writes ``trace.json`` and ``metrics.json`` into that
directory, so any entry point can be traced without plumbing flags through.
"""

from __future__ import annotations

import atexit
import json
import os
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry
from .sampler import WatchedResource, window_sample_times
from .trace import EventBudget, SpanTracer, chrome_document, write_chrome_trace


class Observability:
    """Bundle of tracers, metrics, and resource timelines for one run."""

    def __init__(
        self,
        tracing: bool = True,
        sample_interval_us: float = 1000.0,
        max_events: int = 1_000_000,
        trace_dir: Optional[str] = None,
    ):
        """``max_events`` bounds the *total* buffered events across every
        tracer this hub binds — verb-dense sweeps record a truncated (still
        valid) trace with a drop count rather than an unloadable multi-GB
        one."""
        self.tracing = tracing
        self.sample_interval_us = sample_interval_us
        self.max_events = max_events
        self.trace_dir = trace_dir
        self.registry = MetricsRegistry()
        self._budget = EventBudget(max_events)
        self._tracers: List[SpanTracer] = []
        self._watched: List[WatchedResource] = []
        self._bridges: List = []  # (CounterSet, labels) folded into snapshots

    # -- tracer management -------------------------------------------------

    def bind(self, engine: Any, label: str = "") -> Optional[SpanTracer]:
        """Create (or reuse) the tracer for ``engine``; None if tracing off."""
        if not self.tracing:
            return None
        for tracer in self._tracers:
            if tracer.engine is engine:
                return tracer
        tracer = SpanTracer(
            engine,
            pid=len(self._tracers),
            label=label,
            budget=self._budget,
        )
        self._tracers.append(tracer)
        # Tracing lanes are per-process bookkeeping the engine's storm-mode
        # fast path does not model; pin the engine to the scalar loop.
        disable = getattr(engine, "disable_batch", None)
        if disable is not None:
            disable("tracing")
        return tracer

    def tracer_for(self, engine: Any) -> Optional[SpanTracer]:
        """The tracer already bound to ``engine``, if any (no creation)."""
        for tracer in reversed(self._tracers):
            if tracer.engine is engine:
                return tracer
        return None

    # -- resource timelines ------------------------------------------------

    def watch(self, name: str, resource: Any, engine: Any) -> WatchedResource:
        """Register a resource for window sampling; name should be unique."""
        watched = WatchedResource(name, resource, engine)
        self._watched.append(watched)
        return watched

    def _sample_all(self, engine: Any) -> None:
        tracer = self.tracer_for(engine)
        now = engine._now
        for watched in self._watched:
            if watched.engine is not engine:
                continue
            values = watched.take_sample()
            if tracer is not None:
                tracer.counter(
                    watched.name, now,
                    {k: float(v) for k, v in values.items()},
                )

    def schedule_window_samples(
        self, engine: Any, start_us: float, end_us: float
    ) -> int:
        """Pre-schedule bounded one-shot samples across a measurement window.

        One-shot ``call_at`` callbacks (not a periodic process) so the engine
        heap still drains — ``bench.runner.preload`` runs the engine to heap
        exhaustion and must not hang.  Returns the number of points scheduled.
        """
        if not any(w.engine is engine for w in self._watched):
            return 0
        times = window_sample_times(
            max(start_us, engine._now), end_us, self.sample_interval_us
        )
        for when in times:
            engine.call_at(when, self._sample_all, engine)
        return len(times)

    # -- legacy-counter bridge ---------------------------------------------

    def bridge_counters(self, counters: Any, **labels: str) -> None:
        """Fold a ``CounterSet``'s totals into metric snapshots at dump time.

        The RDMA/cache layers keep their hot-path ``CounterSet`` tallies (one
        dict op per event); bridging copies the end-of-run totals into the
        registry instead of double-counting on the hot path.
        """
        self._bridges.append((counters, labels))

    def _drain_bridges(self) -> None:
        for counters, labels in self._bridges:
            for name, value in sorted(counters.as_dict().items()):
                instrument = self.registry.counter(name, **labels)
                instrument.value = value

    # -- export --------------------------------------------------------------

    def chrome_document(self) -> Dict[str, Any]:
        return chrome_document(self._tracers)

    def export_chrome(self, path: str) -> None:
        """Write the merged Chrome trace for all bound engines."""
        write_chrome_trace(self._tracers, path)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe end-of-run dump: metrics, timelines, trace stats."""
        self._drain_bridges()
        return {
            "metrics": self.registry.snapshot(),
            "timelines": [w.summary() for w in self._watched],
            "trace": {
                "tracers": len(self._tracers),
                "events": sum(len(t.events) for t in self._tracers),
                "dropped": sum(t.dropped for t in self._tracers),
            },
        }


# -- process-wide runtime ----------------------------------------------------

_current: Optional[Observability] = None
_env_checked = False


def activate(obs: Optional[Observability] = None) -> Observability:
    """Install ``obs`` (or a fresh hub) as the process-wide observability."""
    global _current
    if obs is None:
        obs = Observability()
    _current = obs
    return obs


def deactivate() -> None:
    """Remove the process-wide hub; components built afterwards are inert."""
    global _current
    _current = None


def _atexit_export(obs: Observability, directory: str) -> None:
    if not obs._tracers and not obs._watched:
        return
    os.makedirs(directory, exist_ok=True)
    obs.export_chrome(os.path.join(directory, "trace.json"))
    with open(os.path.join(directory, "metrics.json"), "w",
              encoding="utf-8") as fh:
        json.dump(obs.snapshot(), fh, indent=2, sort_keys=True)


def current() -> Optional[Observability]:
    """The active hub, or None (the inert default).

    First call honours ``REPRO_TRACE=<dir>``: it activates a hub and arranges
    for the trace and metrics to be written into ``<dir>`` at interpreter
    exit.
    """
    global _env_checked, _current
    if _current is None and not _env_checked:
        _env_checked = True
        directory = os.environ.get("REPRO_TRACE")
        if directory:
            obs = activate(Observability(trace_dir=directory))
            atexit.register(_atexit_export, obs, directory)
    return _current
