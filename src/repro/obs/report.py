"""Trace analysis: span aggregates, flamegraphs, and the report CLI.

Works on the Chrome ``trace_event`` JSON written by
:meth:`repro.obs.observer.Observability.export_chrome`.  All durations are
**simulated microseconds** — the flamegraph shows where simulated time goes
(NIC queueing, controller CPU, client think time), not where the host CPU
goes; that is what the paper's latency-breakdown figures reason about.

The same machinery works on **wall-clock** traces from the real
substrate: ``--merge DIR`` aligns the per-process shards that
``repro.obs.runtime`` exports (one per launcher / memory node / loadgen
process, see ``REPRO_TRACE``) onto a common epoch origin and emits a
single Chrome trace with one lane group per process, chaos fault
windows included.  ``--validate``, ``--top``, and ``--flamegraph`` then
apply to the merged document.

Usage::

    python -m repro.obs.report .traces/fig02.trace.json --top 15
    python -m repro.obs.report trace.json --validate
    python -m repro.obs.report trace.json --flamegraph out.folded
    flamegraph.pl out.folded > flame.svg   # or any collapsed-stack viewer

    python -m repro.obs.report --merge .rtraces           # writes merged.trace.json
    python -m repro.obs.report --merge .rtraces --validate
    python -m repro.obs.report --merge .rtraces --per-node-flamegraphs flames/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from .trace import validate_trace


def load_trace(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _lane_spans(doc: Dict[str, Any]) -> Dict[Tuple, List[Tuple[float, float, str]]]:
    """Complete spans grouped per (pid, tid) lane, sorted for a nesting walk."""
    lanes: Dict[Tuple, List[Tuple[float, float, str]]] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        lanes.setdefault((event["pid"], event["tid"]), []).append(
            (float(event["ts"]), float(event.get("dur", 0.0)), event["name"])
        )
    for spans in lanes.values():
        spans.sort(key=lambda s: (s[0], -s[1]))
    return lanes


def aggregate_spans(doc: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Per-span-name totals: count, total_us, self_us, mean_us, max_us.

    ``self_us`` subtracts time covered by nested child spans, so a
    ``op.get`` span's self time is client-side work not already attributed
    to the ``rdma.*`` spans it encloses.
    """
    stats: Dict[str, Dict[str, float]] = {}

    def charge(name: str, dur: float, self_us: float) -> None:
        row = stats.setdefault(
            name,
            {"count": 0.0, "total_us": 0.0, "self_us": 0.0, "max_us": 0.0},
        )
        row["count"] += 1
        row["total_us"] += dur
        row["self_us"] += self_us
        if dur > row["max_us"]:
            row["max_us"] = dur

    for spans in _lane_spans(doc).values():
        stack: List[List] = []  # [end, name, dur, child_us]
        def drain(until: float) -> None:
            while stack and until >= stack[-1][0] - 1e-6:
                end, name, dur, child_us = stack.pop()
                charge(name, dur, max(dur - child_us, 0.0))
                if stack:
                    stack[-1][3] += dur
        for start, dur, name in spans:
            drain(start)
            stack.append([start + dur, name, dur, 0.0])
        drain(float("inf"))

    for row in stats.values():
        row["mean_us"] = row["total_us"] / row["count"] if row["count"] else 0.0
    return stats


def flamegraph_folded(doc: Dict[str, Any]) -> List[str]:
    """Collapsed-stack lines (``a;b;c <self_us>``) for flamegraph tooling.

    Stacks follow span nesting within each lane; weights are self time in
    (integer) simulated microseconds, so the rendered flame shows where
    simulated time is spent at each nesting depth.
    """
    weights: Dict[Tuple[str, ...], float] = {}
    for spans in _lane_spans(doc).values():
        stack: List[List] = []  # [end, name, dur, child_us]
        def drain(until: float) -> None:
            while stack and until >= stack[-1][0] - 1e-6:
                end, name, dur, child_us = stack.pop()
                path = tuple(frame[1] for frame in stack) + (name,)
                self_us = max(dur - child_us, 0.0)
                weights[path] = weights.get(path, 0.0) + self_us
                if stack:
                    stack[-1][3] += dur
        for start, dur, name in spans:
            drain(start)
            stack.append([start + dur, name, dur, 0.0])
        drain(float("inf"))
    return [
        f"{';'.join(path)} {int(round(weight))}"
        for path, weight in sorted(weights.items())
        if weight >= 0.5
    ]


def counter_summaries(doc: Dict[str, Any]) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per counter-name, per-field mean/max over its sampled timeline."""
    series: Dict[str, Dict[str, List[float]]] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") != "C":
            continue
        fields = series.setdefault(event["name"], {})
        for key, value in (event.get("args") or {}).items():
            fields.setdefault(key, []).append(float(value))
    return {
        name: {
            key: {"mean": sum(vals) / len(vals), "max": max(vals)}
            for key, vals in sorted(fields.items())
        }
        for name, fields in sorted(series.items())
    }


def process_names(doc: Dict[str, Any]) -> Dict[int, str]:
    """pid → human name from ``process_name`` metadata events."""
    names: Dict[int, str] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event["pid"]] = (event.get("args") or {}).get(
                "name", f"pid {event['pid']}"
            )
    return names


def split_by_process(doc: Dict[str, Any]) -> Dict[int, Dict[str, Any]]:
    """One sub-document per pid, metadata events carried into each."""
    docs: Dict[int, Dict[str, Any]] = {}
    for event in doc.get("traceEvents", ()):
        sub = docs.setdefault(
            event["pid"], {"traceEvents": [], "displayTimeUnit": "ms"}
        )
        sub["traceEvents"].append(event)
    return docs


def render_report(doc: Dict[str, Any], top: int = 20) -> str:
    """Human-readable summary: hottest spans by self time, then counters."""
    lines: List[str] = []
    stats = aggregate_spans(doc)
    rows = sorted(stats.items(), key=lambda kv: -kv[1]["self_us"])[:top]
    lines.append(
        f"{'span':<28} {'count':>10} {'self_us':>14} {'total_us':>14}"
        f" {'mean_us':>10} {'max_us':>10}"
    )
    for name, row in rows:
        lines.append(
            f"{name:<28} {int(row['count']):>10} {row['self_us']:>14.1f}"
            f" {row['total_us']:>14.1f} {row['mean_us']:>10.2f}"
            f" {row['max_us']:>10.1f}"
        )
    counters = counter_summaries(doc)
    if counters:
        lines.append("")
        lines.append("resource timelines (mean / max per sampled field):")
        for name, fields in counters.items():
            parts = ", ".join(
                f"{key}={agg['mean']:.2f}/{agg['max']:.2f}"
                for key, agg in fields.items()
            )
            lines.append(f"  {name}: {parts}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a simulated-time Chrome trace.",
    )
    parser.add_argument("trace", nargs="?", default="",
                        help="path to a *.trace.json file")
    parser.add_argument(
        "--merge", metavar="DIR",
        help="merge the per-process shard-*.json files under DIR "
             "(a REPRO_TRACE directory) into one wall-clock trace and "
             "operate on that instead of a trace file",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="with --merge: where to write the merged trace "
             "(default DIR/merged.trace.json)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="check trace schema and span nesting; nonzero exit on problems",
    )
    parser.add_argument(
        "--flamegraph", metavar="OUT",
        help="write collapsed-stack lines (flamegraph.pl input) to OUT",
    )
    parser.add_argument(
        "--per-node-flamegraphs", metavar="OUTDIR",
        help="write one collapsed-stack file per process lane to OUTDIR",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="rows in the span table (default 20)",
    )
    args = parser.parse_args(argv)
    if bool(args.trace) == bool(args.merge):
        parser.error("exactly one of TRACE or --merge DIR is required")

    if args.merge:
        from .runtime import merge_shards

        doc, info = merge_shards(args.merge)
        if not info["shards"]:
            print(f"no shard-*.json files under {args.merge}",
                  file=sys.stderr)
            return 1
        out_path = args.out or os.path.join(args.merge, "merged.trace.json")
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.write("\n")
        label = out_path
        print(f"merged {len(info['shards'])} shards "
              f"({len(doc.get('traceEvents', []))} events) -> {out_path}")
        for skipped in info.get("skipped", ()):
            print(f"skipped unreadable shard: {skipped}", file=sys.stderr)
    else:
        doc = load_trace(args.trace)
        label = args.trace

    if args.validate:
        problems = validate_trace(doc)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"{label}: valid "
              f"({len(doc.get('traceEvents', []))} events)")
    if args.flamegraph:
        lines = flamegraph_folded(doc)
        with open(args.flamegraph, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        print(f"wrote {len(lines)} stacks to {args.flamegraph}")
    if args.per_node_flamegraphs:
        os.makedirs(args.per_node_flamegraphs, exist_ok=True)
        names = process_names(doc)
        for pid, sub in sorted(split_by_process(doc).items()):
            lines = flamegraph_folded(sub)
            if not lines:
                continue
            name = names.get(pid, f"pid-{pid}")
            safe = "".join(
                ch if ch.isalnum() or ch in "-_" else "-" for ch in name
            ).strip("-") or f"pid-{pid}"
            path = os.path.join(args.per_node_flamegraphs, f"{safe}.folded")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + "\n")
            print(f"wrote {len(lines)} stacks to {path}")
    if not (args.validate or args.flamegraph or args.per_node_flamegraphs):
        print(render_report(doc, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
