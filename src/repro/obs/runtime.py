"""Wall-clock observability for real-substrate processes.

The sim observability stack (:mod:`repro.obs.observer`) is built around
one discrete-event engine in one process.  The real substrate is many
processes — the ``repro.serve`` launcher, one ``repro.runtime.server``
per memory node, loadgen clients — each with its own wall clock and its
own exit path (clean return, SIGTERM drain, SIGKILL).  This module is
their per-process twin:

- :class:`WallTracer` — a :class:`~repro.obs.trace.SpanTracer` stamped
  from ``time.perf_counter()`` instead of engine sim-time, with explicit
  lane (``tid``) selection because there is no engine-active process to
  infer a lane from.  Concurrent asyncio actors (loadgen clients, server
  connections) each get their own lane so per-lane spans stay properly
  nested and the existing validator/flamegraph machinery applies as-is.

- :class:`ProcessObs` — one per process: a WallTracer plus a
  :class:`~repro.obs.metrics.MetricsRegistry`, exported as a *shard*
  file ``shard-<role>-<pid>.json`` in the ``REPRO_TRACE`` directory.
  Shard writes are atomic (tmp + rename) and idempotent, so flushing
  from a SIGTERM drain path and again from atexit is safe, and a
  SIGKILLed process leaves either its last complete shard or nothing —
  never a torn file that poisons the merge.

- :func:`merge_shards` — aligns every shard in a directory onto one
  clock and emits a single Chrome trace with one ``pid`` lane per
  process.  Alignment: the first process to arm observability (the
  launcher) publishes its start instant as ``REPRO_TRACE_EPOCH``;
  children inherit it through the environment and record it in their
  shards, so offsets are exact differences of ``CLOCK_REALTIME``
  captures on one host.  Shards lacking a common epoch fall back to
  aligning on the earliest shard's origin.  Cross-host NTP-class skew is
  out of scope (DESIGN §3.9).

Activation mirrors the sim contract: everything is inert unless
``REPRO_TRACE=<dir>`` is set (or :func:`init` is called explicitly with
a directory).  With no hub, :func:`current` returns ``None`` and
instrumented components hold ``None`` handles — zero observability code
runs on hot frames, which a conformance test asserts.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from contextlib import contextmanager
from glob import glob
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .trace import FAULT_TID_BASE, EventBudget, SpanTracer

#: Default per-process event budget; override with REPRO_TRACE_EVENTS.
DEFAULT_MAX_EVENTS = 300_000

#: Shard schema version (bumped on incompatible layout changes).
SHARD_SCHEMA = 1

_SHARD_GLOB = "shard-*.json"


class _WallClock:
    """The engine facets :class:`~repro.obs.trace.SpanTracer` reads,
    backed by the wall clock: ``_now`` in microseconds since construction
    and no active process (lanes are chosen explicitly)."""

    __slots__ = ("_t0",)

    _active = None

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    @property
    def _now(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6


class WallTracer(SpanTracer):
    """A SpanTracer on the wall clock with caller-chosen lanes.

    ``complete`` gains an explicit ``tid``: wall-clock processes run
    concurrent actors (asyncio tasks, connections), so the lane cannot
    be inferred — each actor records onto its own lane to preserve the
    per-lane nesting invariant the validator checks.
    """

    def __init__(self, label: str = "", max_events: int = DEFAULT_MAX_EVENTS,
                 budget: Optional[EventBudget] = None):
        super().__init__(_WallClock(), pid=0, label=label,
                         max_events=max_events, budget=budget)

    def now_us(self) -> float:
        return self.engine._now

    # Same name/shape as SpanTracer.complete plus the lane; wall-clock
    # call sites always pass their lane explicitly.
    def complete(self, name: str, cat: str, start_us: float,  # type: ignore[override]
                 tid: int = 0, args: Optional[Dict[str, Any]] = None) -> None:
        if self._admit():
            self.events.append(
                (
                    "X", name, cat, start_us,
                    max(self.engine._now - start_us, 0.0), tid, args,
                )
            )


class ProcessObs:
    """Per-process observability: wall tracer + metrics + shard export."""

    def __init__(
        self,
        directory: str,
        role: str,
        common_epoch_s: Optional[float] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ):
        self.directory = directory
        self.role = role
        self.pid = os.getpid()
        #: CLOCK_REALTIME at tracer start: the shard's alignment anchor.
        self.t0_epoch_s = time.time()
        self.common_epoch_s = common_epoch_s
        self.registry = MetricsRegistry()
        self.tracer = WallTracer(label=role, max_events=max_events)
        self._next_lane = 0
        self._lane_by_name: Dict[str, int] = {}
        self._bridges: List[Tuple[Any, Dict[str, str]]] = []

    # -- clocks ------------------------------------------------------------

    def now_us(self) -> float:
        return self.tracer.now_us()

    def ts_from_epoch(self, epoch_s: float) -> float:
        """Map a ``time.time()`` instant onto this tracer's timeline.

        Used for schedules expressed in absolute time (the chaos gate's
        common arm origin): windows land where they actually fall on this
        process's lane, modulo sub-millisecond realtime/monotonic drift.
        """
        return (epoch_s - self.t0_epoch_s) * 1e6

    # -- lanes -------------------------------------------------------------

    def lane(self, name: str) -> int:
        """Allocate (and label) a fresh lane for one sequential actor."""
        self._next_lane += 1
        self.tracer.name_lane(self._next_lane, name)
        return self._next_lane

    def lane_named(self, name: str) -> int:
        """The memoized lane for ``name`` (one shared lane per actor name).

        Used by components whose spans must not share lane 0 with phase
        spans they can overlap — e.g. the harness's kill/restart spans
        run concurrently with the loadgen's ``load`` phase span.
        """
        tid = self._lane_by_name.get(name)
        if tid is None:
            tid = self.lane(name)
            self._lane_by_name[name] = tid
        return tid

    @contextmanager
    def span(self, name: str, cat: str = "runtime", tid: int = 0,
             args: Optional[Dict[str, Any]] = None):
        t0 = self.tracer.now_us()
        try:
            yield self
        finally:
            self.tracer.complete(name, cat, t0, tid=tid, args=args)

    # -- legacy-counter bridge ---------------------------------------------

    def bridge_counters(self, counters: Any, **labels: str) -> None:
        """Fold a ``CounterSet``'s totals into the shard metrics at flush."""
        self._bridges.append((counters, labels))

    def _drain_bridges(self) -> None:
        for counters, labels in self._bridges:
            for name, value in sorted(counters.as_dict().items()):
                self.registry.counter(name, **labels).value = value

    # -- export ------------------------------------------------------------

    def shard_path(self) -> str:
        safe_role = "".join(
            ch if ch.isalnum() or ch in "._" else "-" for ch in self.role
        )
        return os.path.join(
            self.directory, f"shard-{safe_role}-{self.pid}.json"
        )

    def shard_document(self) -> Dict[str, Any]:
        self._drain_bridges()
        return {
            "schema": SHARD_SCHEMA,
            "role": self.role,
            "pid": self.pid,
            "origin_epoch_s": self.t0_epoch_s,
            "common_epoch_s": self.common_epoch_s,
            "clock": "wall-us",
            "traceEvents": list(self.tracer.chrome_events()),
            "dropped": self.tracer.dropped,
            "metrics": self.registry.snapshot(),
        }

    def flush(self) -> str:
        """Write the shard atomically; safe to call repeatedly.

        The rename is the commit point: a crash mid-write leaves the old
        complete shard (or nothing) in place, never a truncated JSON.
        """
        os.makedirs(self.directory, exist_ok=True)
        path = self.shard_path()
        tmp = f"{path}.tmp.{self.pid}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.shard_document(), fh, separators=(",", ":"))
        os.replace(tmp, path)
        return path


# -- fault-window overlay ----------------------------------------------------


def record_fault_windows(proc: ProcessObs, plan: Any,
                         t0_epoch_s: float) -> int:
    """Overlay a (wall-compiled) FaultPlan's windows onto fault lanes.

    One lane per window, starting at :data:`FAULT_TID_BASE` — windows may
    legitimately overlap each other, so they never share a lane.  ``plan``
    only needs ``to_dict()`` (any :class:`~repro.sim.faults.FaultPlan`);
    entries without a window (instant kinds) are skipped.  Returns the
    number of windows recorded.
    """
    tracer = proc.tracer
    recorded = 0
    base_ts = proc.ts_from_epoch(t0_epoch_s)
    for kind, items in sorted(plan.to_dict().items()):
        if kind == "seed" or not isinstance(items, list):
            continue
        for item in items:
            if not isinstance(item, dict) or "start_us" not in item:
                continue
            start = base_ts + float(item["start_us"])
            dur = float(item.get("end_us", item["start_us"])) - float(
                item["start_us"]
            )
            tid = FAULT_TID_BASE + recorded
            label = kind.rstrip("s")
            node = item.get("node_id")
            lane_name = f"fault:{label}" + (
                f"@mn{node}" if node is not None else ""
            )
            tracer.name_lane(tid, lane_name)
            tracer.complete_at(
                f"fault.{label}", "fault", start, max(dur, 0.0), tid=tid,
                args={k: v for k, v in item.items() if v is not None},
            )
            recorded += 1
    return recorded


# -- shard merge -------------------------------------------------------------


def load_shard(path: str) -> Optional[Dict[str, Any]]:
    """Parse one shard; None for anything unusable (partial/foreign file)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict):
        return None
    if not isinstance(doc.get("traceEvents"), list):
        return None
    if not isinstance(doc.get("origin_epoch_s"), (int, float)):
        return None
    return doc


def merge_shards(directory: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Merge every shard in ``directory`` into one Chrome trace document.

    Returns ``(doc, info)``: the merged ``trace_event`` document (one
    ``pid`` per shard, timestamps realigned onto the common origin) and a
    summary — per-shard roles/pids/event counts/offsets plus the files
    that were skipped as unparsable (e.g. a partial write surviving a
    SIGKILL outside the atomic-rename window, or a stray file).
    """
    paths = sorted(glob(os.path.join(directory, _SHARD_GLOB)))
    shards: List[Tuple[str, Dict[str, Any]]] = []
    skipped: List[str] = []
    for path in paths:
        doc = load_shard(path)
        if doc is None:
            skipped.append(os.path.basename(path))
        else:
            shards.append((os.path.basename(path), doc))

    commons = {
        shard.get("common_epoch_s")
        for _name, shard in shards
        if shard.get("common_epoch_s") is not None
    }
    if len(commons) == 1 and len(shards) > 0 and all(
        shard.get("common_epoch_s") is not None for _n, shard in shards
    ):
        base = commons.pop()
    else:
        base = min(
            (shard["origin_epoch_s"] for _n, shard in shards), default=0.0
        )

    # Deterministic pid assignment: sort by (role, start instant, pid).
    shards.sort(key=lambda item: (
        str(item[1].get("role", "")),
        float(item[1]["origin_epoch_s"]),
        int(item[1].get("pid", 0)),
    ))

    events: List[Dict[str, Any]] = []
    info_shards: List[Dict[str, Any]] = []
    dropped = 0
    for pid, (name, shard) in enumerate(shards):
        offset_us = (float(shard["origin_epoch_s"]) - base) * 1e6
        count = 0
        for event in shard["traceEvents"]:
            if not isinstance(event, dict):
                continue
            out = dict(event)
            out["pid"] = pid
            if out.get("ph") == "M":
                if out.get("name") == "process_name":
                    out["args"] = {
                        "name": f"{shard.get('role', name)} "
                                f"[pid {shard.get('pid', '?')}]"
                    }
            else:
                ts = out.get("ts")
                if isinstance(ts, (int, float)):
                    out["ts"] = ts + offset_us
                count += 1
            events.append(out)
        dropped += int(shard.get("dropped", 0) or 0)
        info_shards.append({
            "file": name,
            "role": shard.get("role"),
            "pid": shard.get("pid"),
            "merged_pid": pid,
            "events": count,
            "offset_us": offset_us,
        })

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "wall-us-since-epoch-origin",
            "epoch_origin_s": base,
            "shards": len(shards),
            "skipped_shards": skipped,
            "dropped_events": dropped,
        },
    }
    info = {
        "directory": directory,
        "epoch_origin_s": base,
        "shards": info_shards,
        "skipped": skipped,
    }
    return doc, info


# -- post-run digest ---------------------------------------------------------

#: Client-side retry/fault counters surfaced in digests, in print order.
RETRY_COUNTER_KEYS = (
    "conn_resend",
    "cas_fate_resolved",
    "fault_verb_timeout",
    "fault_node_unavailable",
    "breaker_trip",
    "fenced_post_dropped",
    "fault_post_dropped",
)


def build_digest(report: Dict[str, Any]) -> Dict[str, Any]:
    """Condense a loadgen/chaos report into the post-run metrics digest.

    The digest is the at-a-glance health readout ``repro.runtime.validate``
    and ``run_chaos`` print and persist next to their verdict: per-verb
    p50/p99, retry/resend/breaker counts, and (when a chaos section is
    present) the per-node fault-gate verdict counts and sweep outcome.
    """
    counters = report.get("counters", {}) or {}
    digest: Dict[str, Any] = {
        "ops": report.get("ops"),
        "failed_ops": report.get("failed_ops"),
        "ops_per_s": report.get("ops_per_s"),
        "latency_us": {
            "get": {"p50": report.get("get_p50_us"),
                    "p99": report.get("get_p99_us")},
            "set": {"p50": report.get("set_p50_us"),
                    "p99": report.get("set_p99_us")},
        },
        "retries": {
            key: counters.get(key, 0) for key in RETRY_COUNTER_KEYS
        },
    }
    chaos = report.get("chaos")
    if isinstance(chaos, dict):
        digest["chaos"] = {
            key: chaos[key]
            for key in (
                "verdicts", "adopted_grants", "repaired_slots", "sweep",
                "killed_at_s", "restarted_at_s",
            )
            if key in chaos
        }
    return digest


def format_digest(digest: Dict[str, Any]) -> str:
    """Human-readable digest block (one screen, stable order)."""
    lines = ["-- post-run digest --"]
    lines.append(
        f"ops={digest.get('ops')} failed={digest.get('failed_ops')} "
        f"ops/s={digest.get('ops_per_s')}"
    )
    latency = digest.get("latency_us", {})
    for verb in sorted(latency):
        row = latency[verb]
        p50, p99 = row.get("p50"), row.get("p99")
        if p50 is None and p99 is None:
            continue
        lines.append(f"{verb:<4} p50={p50} us  p99={p99} us")
    retries = digest.get("retries", {})
    busy = {key: val for key, val in retries.items() if val}
    lines.append(f"retries: {busy if busy else 'none'}")
    chaos = digest.get("chaos")
    if chaos:
        verdicts = chaos.get("verdicts")
        if verdicts:
            lines.append(f"chaos verdicts: {verdicts}")
        extra = {
            key: chaos[key]
            for key in ("adopted_grants", "repaired_slots",
                        "killed_at_s", "restarted_at_s")
            if key in chaos
        }
        if extra:
            lines.append(f"chaos: {extra}")
        if "sweep" in chaos:
            lines.append(f"sweep: {chaos['sweep']}")
    return "\n".join(lines)


def persist_digest(digest: Dict[str, Any], path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(digest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# -- process-wide runtime ----------------------------------------------------

_proc: Optional[ProcessObs] = None
_checked = False
_atexit_registered = False


def _flush_at_exit() -> None:
    if _proc is not None:
        try:
            _proc.flush()
        except OSError:  # pragma: no cover - best effort at teardown
            pass


def init(role: Optional[str] = None,
         directory: Optional[str] = None) -> Optional[ProcessObs]:
    """Arm per-process observability if ``REPRO_TRACE`` (or ``directory``)
    names a shard directory; inert (returns None) otherwise.

    The first armed process in a deployment publishes its start instant
    as ``REPRO_TRACE_EPOCH`` so every child it spawns measures from the
    same origin — that is what lets :func:`merge_shards` align lanes
    exactly instead of trusting per-process clocks.  Idempotent: a
    second call returns the existing hub.
    """
    global _proc, _checked, _atexit_registered
    _checked = True
    if _proc is not None:
        return _proc
    directory = directory or os.environ.get("REPRO_TRACE")
    if not directory:
        return None
    common_raw = os.environ.get("REPRO_TRACE_EPOCH")
    try:
        common = float(common_raw) if common_raw else None
    except ValueError:
        common = None
    max_events = DEFAULT_MAX_EVENTS
    try:
        max_events = int(os.environ.get("REPRO_TRACE_EVENTS", max_events))
    except ValueError:
        pass
    proc = ProcessObs(
        directory,
        role or os.environ.get("REPRO_OBS_ROLE") or f"py-{os.getpid()}",
        common_epoch_s=common,
        max_events=max_events,
    )
    if common is None:
        # This process is the deployment's origin; children inherit it.
        proc.common_epoch_s = proc.t0_epoch_s
        os.environ["REPRO_TRACE_EPOCH"] = repr(proc.t0_epoch_s)
    _proc = proc
    if not _atexit_registered:
        _atexit_registered = True
        atexit.register(_flush_at_exit)
    return proc


def current() -> Optional[ProcessObs]:
    """The armed per-process hub, or None (the inert default)."""
    if _proc is None and not _checked:
        return init()
    return _proc


def _reset() -> None:
    """Drop the process-wide hub (tests only; atexit stays registered)."""
    global _proc, _checked
    _proc = None
    _checked = False


@contextmanager
def maybe_span(name: str, cat: str = "runtime", tid: int = 0,
               args: Optional[Dict[str, Any]] = None,
               lane: Optional[str] = None):
    """Span when observability is armed; free pass-through otherwise.

    For control paths (launch, kill, restart, drain) — hot frames use
    pre-bound handles and explicit ``is not None`` guards instead.
    ``lane`` selects a memoized named lane instead of the numeric ``tid``.
    """
    proc = current()
    if proc is None:
        yield None
        return
    if lane is not None:
        tid = proc.lane_named(lane)
    with proc.span(name, cat=cat, tid=tid, args=args):
        yield proc


__all__ = [
    "DEFAULT_MAX_EVENTS",
    "ProcessObs",
    "SHARD_SCHEMA",
    "WallTracer",
    "build_digest",
    "current",
    "format_digest",
    "init",
    "load_shard",
    "maybe_span",
    "merge_shards",
    "persist_digest",
    "record_fault_windows",
    "RETRY_COUNTER_KEYS",
]
