"""Resource-utilization timelines sampled from ``sim.resources``.

A :class:`WatchedResource` pairs a name like ``mn0.nic`` with any object
exposing ``sample() -> dict`` (``Resource``, ``RateLimiter``, ``Lock``,
``MemoryBudget``).  Samples are **pre-scheduled** as bounded one-shot engine
callbacks inside known measurement windows rather than driven by an immortal
periodic process: the bench layer's ``preload`` runs the engine until the
event heap drains, and a self-rescheduling sampler would keep the heap
populated forever.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple


class WatchedResource:
    """One sampled resource: identity, sample source, and its timeline."""

    __slots__ = ("name", "resource", "engine", "timeline")

    def __init__(self, name: str, resource: Any, engine: Any):
        self.name = name
        self.resource = resource
        self.engine = engine
        #: ``(sim_ts_us, sample dict)`` pairs in sample order.
        self.timeline: List[Tuple[float, Dict[str, float]]] = []

    def take_sample(self) -> Dict[str, float]:
        """Record one sample at the engine's current simulated time."""
        values = self.resource.sample()
        self.timeline.append((self.engine._now, values))
        return values

    def summary(self) -> Dict[str, Any]:
        """Per-field mean/max over the timeline (JSON-safe)."""
        out: Dict[str, Any] = {"name": self.name, "samples": len(self.timeline)}
        if not self.timeline:
            return out
        fields: Dict[str, List[float]] = {}
        for _ts, values in self.timeline:
            for key, value in values.items():
                fields.setdefault(key, []).append(float(value))
        out["fields"] = {
            key: {
                "mean": sum(series) / len(series),
                "max": max(series),
            }
            for key, series in sorted(fields.items())
        }
        return out


def window_sample_times(
    start_us: float, end_us: float, interval_us: float, max_points: int = 1000
) -> List[float]:
    """Sample timestamps covering ``[start_us, end_us]``, bounded in count.

    The interval is widened if needed so a long window never schedules more
    than ``max_points`` callbacks.
    """
    if end_us <= start_us or interval_us <= 0:
        return [start_us]
    span = end_us - start_us
    points = int(span / interval_us) + 1
    if points > max_points:
        interval_us = span / (max_points - 1)
        points = max_points
    return [min(start_us + i * interval_us, end_us) for i in range(points)]
