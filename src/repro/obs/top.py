"""``python -m repro.obs.top`` — live per-node view of a real cluster.

Polls every memory node's ``__stats__`` control RPC (the same throwaway-
socket channel the harness uses for chaos arm/disarm, so it works
against any cluster a descriptor file points at — including one this
process did not launch) and renders a per-node table: uptime, served-op
counts, per-verb rates computed from counter deltas between polls, and
service-time p50/p99 from the servers' streaming histograms.

Nodes launched without ``REPRO_TRACE`` run dark by design (the zero-cost
contract); ``--arm`` sends ``__stats_arm__`` first, which switches on
metrics-only instrumentation at runtime — no restart, no trace shard.

Example::

    python -m repro.serve --memory-nodes 2 --descriptor /tmp/cluster.json &
    python -m repro.obs.top --descriptor /tmp/cluster.json --arm
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from .metrics import render_prometheus

#: Verb columns in display order (matches the server's _VERB_BY_OP names).
_VERBS = ("read", "write", "cas", "faa", "rpc", "ping")


def fetch_stats(nodes: List[Dict[str, Any]],
                timeout_s: float = 2.0) -> List[Optional[Dict[str, Any]]]:
    """One ``__stats__`` poll per node; ``None`` marks an unreachable one."""
    from ..runtime.harness import control_rpc

    out: List[Optional[Dict[str, Any]]] = []
    for node in nodes:
        try:
            out.append(control_rpc(
                node["host"], node["port"], "__stats__", None, timeout_s
            ))
        except (OSError, RuntimeError):
            out.append(None)
    return out


def arm_stats(nodes: List[Dict[str, Any]], timeout_s: float = 2.0) -> int:
    """Send ``__stats_arm__`` to every reachable node; count successes."""
    from ..runtime.harness import control_rpc

    armed = 0
    for node in nodes:
        try:
            control_rpc(node["host"], node["port"], "__stats_arm__", None,
                        timeout_s)
            armed += 1
        except (OSError, RuntimeError):
            pass
    return armed


def _metric_rows(stats: Dict[str, Any], kind: str) -> List[Dict[str, Any]]:
    metrics = stats.get("metrics") or {}
    return metrics.get(kind, [])


def _verb_counts(stats: Optional[Dict[str, Any]]) -> Dict[str, int]:
    if not stats:
        return {}
    return {
        row["labels"].get("verb", "?"): row["value"]
        for row in _metric_rows(stats, "counters")
        if row["name"] == "verbs"
    }


def _verb_latency(stats: Optional[Dict[str, Any]]) -> Dict[str, Dict]:
    if not stats:
        return {}
    return {
        row["labels"].get("verb", "?"): row
        for row in _metric_rows(stats, "histograms")
        if row["name"] == "verb.service_us"
    }


def render_table(
    nodes: List[Dict[str, Any]],
    stats: List[Optional[Dict[str, Any]]],
    prev: List[Optional[Dict[str, Any]]],
    interval_s: float,
) -> str:
    """The per-node table for one poll.

    Rates are deltas of the servers' per-verb counters against the
    previous poll (absolute totals on the first poll, marked ``Σ``);
    p50/p99 come from the cumulative service-time histograms.
    """
    header = (
        f"{'node':>5} {'pid':>7} {'up_s':>7} {'conns':>5} {'ops':>9} "
        f"{'ops/s':>9} {'jrnl':>5} {'gate':>16} "
        f"{'verb':>5} {'rate/s':>9} {'p50_us':>8} {'p99_us':>8}"
    )
    lines = [header]
    for node, now_stats, prev_stats in zip(nodes, stats, prev):
        node_id = node.get("node_id", "?")
        if now_stats is None:
            lines.append(f"{node_id:>5} {'-':>7} {'DOWN':>7}")
            continue
        counts = _verb_counts(now_stats)
        latency = _verb_latency(now_stats)
        prev_counts = _verb_counts(prev_stats)
        delta_ops = now_stats["ops_served"] - (
            prev_stats["ops_served"] if prev_stats else 0
        )
        rate_mark = "" if prev_stats else "Σ"
        verdicts = now_stats.get("chaos_verdicts") or {}
        gate = (
            ",".join(f"{k}={v}" for k, v in sorted(verdicts.items()) if v)
            or ("armed" if now_stats.get("chaos_armed") else "-")
        )
        base = (
            f"{node_id:>5} {now_stats['pid']:>7} "
            f"{now_stats['uptime_s']:>7.1f} "
            f"{now_stats['connections']:>5} "
            f"{now_stats['ops_served']:>9} "
            f"{rate_mark + str(round(delta_ops / interval_s)):>9} "
            f"{now_stats['journal_entries']:>5} {gate[:16]:>16}"
        )
        verb_lines = []
        for verb in _VERBS:
            total = counts.get(verb)
            if not total:
                continue
            delta = total - prev_counts.get(verb, 0 if prev_stats else 0)
            hist = latency.get(verb, {})
            verb_lines.append(
                f"{verb:>5} "
                f"{rate_mark + str(round(delta / interval_s)):>9} "
                f"{hist.get('p50', 0):>8.0f} {hist.get('p99', 0):>8.0f}"
            )
        if not verb_lines:
            note = (
                "(armed, no verbs yet)"
                if now_stats.get("obs_armed")
                else "(obs dark — run with --arm)"
            )
            lines.append(f"{base} {note}")
        else:
            pad = " " * len(base)
            lines.append(f"{base} {verb_lines[0]}")
            lines.extend(f"{pad} {line}" for line in verb_lines[1:])
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="live per-node stats for a running real-substrate "
                    "cluster",
    )
    parser.add_argument("--descriptor", required=True,
                        help="cluster descriptor JSON written by "
                             "repro.serve --descriptor")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between polls (default 1)")
    parser.add_argument("--count", type=int, default=0,
                        help="number of polls before exiting (0 = forever)")
    parser.add_argument("--arm", action="store_true",
                        help="send __stats_arm__ first: switch on "
                             "metrics-only instrumentation on nodes that "
                             "were launched dark")
    parser.add_argument("--json", action="store_true",
                        help="emit raw __stats__ payloads as JSON lines")
    parser.add_argument("--prometheus", action="store_true",
                        help="emit Prometheus text exposition instead of "
                             "the table")
    parser.add_argument("--timeout", type=float, default=2.0)
    args = parser.parse_args(argv)

    with open(args.descriptor, "r", encoding="utf-8") as fh:
        descriptor = json.load(fh)
    nodes = descriptor.get("nodes", [])
    if not nodes:
        print("descriptor lists no nodes", file=sys.stderr)
        return 2

    if args.arm:
        armed = arm_stats(nodes, args.timeout)
        print(f"# armed {armed}/{len(nodes)} nodes", file=sys.stderr)

    prev: List[Optional[Dict[str, Any]]] = [None] * len(nodes)
    polls = 0
    try:
        while True:
            t0 = time.monotonic()
            stats = fetch_stats(nodes, args.timeout)
            if all(entry is None for entry in stats):
                print("no node reachable", file=sys.stderr)
                return 1
            if args.json:
                print(json.dumps(
                    {"poll": polls, "nodes": stats}, sort_keys=True
                ), flush=True)
            elif args.prometheus:
                for node, entry in zip(nodes, stats):
                    if entry and entry.get("metrics"):
                        sys.stdout.write(render_prometheus(
                            entry["metrics"],
                            {"node": f"mn{node.get('node_id', '?')}"},
                        ))
                sys.stdout.flush()
            else:
                print(render_table(nodes, stats, prev, args.interval),
                      flush=True)
            prev = stats
            polls += 1
            if args.count and polls >= args.count:
                return 0
            time.sleep(max(0.0, args.interval - (time.monotonic() - t0)))
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # downstream pager/head closed the pipe; that's a clean exit
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
