"""Sim-time span tracing with Chrome/Perfetto ``trace_event`` export.

A :class:`SpanTracer` is bound to one engine (one cluster) and collects
*complete* spans — ``(name, category, start, duration)`` — plus instant and
counter events, all stamped in **simulated microseconds**.  Because the
Chrome trace format's ``ts`` unit is also microseconds, a run opens directly
in ``chrome://tracing`` / Perfetto with no unit conversion.

Lane discipline: every simulation :class:`~repro.sim.engine.Process` carries
an engine-unique ``tid``; spans emitted while a process is active land on
that lane.  A process executes strictly sequentially, so spans within a lane
are properly nested by construction — the invariant the validator and the
flamegraph builder rely on.  Lane 0 is for code running outside any process
(harness measurement windows); fault-plan windows, which may legitimately
overlap each other, each get their own lane above :data:`FAULT_TID_BASE`.

Hot-path contract: instrumented layers hold ``tracer = None`` by default and
guard every call with ``if tracer is not None`` — with tracing off, no trace
code executes at all.  When on, one span costs a tuple append; admission is
bounded by an :class:`EventBudget` (shared across every tracer of a hub, so
a 15-cluster sweep cannot record 15× the cap) with a drop counter so a dense
run degrades into a truncated trace instead of exhausting memory or
producing a multi-gigabyte JSON no viewer can open.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Fault-plan windows may overlap; each gets its own lane starting here.
FAULT_TID_BASE = 1_000_000

#: Event kinds stored in the buffer (subset of trace_event phases).
_COMPLETE, _INSTANT, _COUNTER = "X", "i", "C"


class EventBudget:
    """A shared admission counter: total events buffered across tracers.

    Hub-wide rather than per-tracer so experiments that build many clusters
    (fig02 instantiates 15) stay under one bound; exhausted budget means
    later events increment the owning tracer's ``dropped`` count.
    """

    __slots__ = ("remaining",)

    def __init__(self, limit: int):
        self.remaining = limit


class SpanTracer:
    """Collects trace events for one engine; zero-cost when not installed."""

    __slots__ = ("engine", "pid", "label", "budget", "events", "dropped",
                 "_lane_names")

    def __init__(self, engine, pid: int = 0, label: str = "",
                 max_events: int = 1_000_000,
                 budget: Optional[EventBudget] = None):
        self.engine = engine
        self.pid = pid
        self.label = label or f"engine-{pid}"
        self.budget = budget if budget is not None else EventBudget(max_events)
        #: Buffered events: (ph, name, cat, ts, dur, tid, args) tuples.
        self.events: List[Tuple] = []
        self.dropped = 0
        self._lane_names: Dict[int, str] = {0: "main"}

    # -- recording ---------------------------------------------------------

    def _admit(self) -> bool:
        budget = self.budget
        if budget.remaining > 0:
            budget.remaining -= 1
            return True
        self.dropped += 1
        return False

    def _tid(self) -> int:
        active = self.engine._active
        if active is None:
            return 0
        tid = active.tid
        if tid not in self._lane_names:
            self._lane_names[tid] = active.name or f"process-{tid}"
        return tid

    def complete(self, name: str, cat: str, start_us: float,
                 args: Optional[Dict[str, Any]] = None) -> None:
        """Emit a span from ``start_us`` to *now* on the active lane."""
        if self._admit():
            self.events.append(
                (_COMPLETE, name, cat, start_us,
                 self.engine._now - start_us, self._tid(), args)
            )

    def complete_at(self, name: str, cat: str, start_us: float, dur_us: float,
                    tid: int = 0, args: Optional[Dict[str, Any]] = None) -> None:
        """Emit a span with explicit bounds and lane (windows, annotations)."""
        if self._admit():
            self.events.append(
                (_COMPLETE, name, cat, start_us, dur_us, tid, args)
            )

    def instant(self, name: str, cat: str,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Emit a zero-duration marker at *now* on the active lane."""
        if self._admit():
            self.events.append(
                (_INSTANT, name, cat, self.engine._now, 0.0, self._tid(), args)
            )

    def instant_at(self, name: str, cat: str, ts_us: float, tid: int = 0,
                   args: Optional[Dict[str, Any]] = None) -> None:
        if self._admit():
            self.events.append((_INSTANT, name, cat, ts_us, 0.0, tid, args))

    def counter(self, name: str, ts_us: float,
                values: Dict[str, float]) -> None:
        """Emit a counter sample (resource-utilization timelines)."""
        if self._admit():
            self.events.append(
                (_COUNTER, name, "resource", ts_us, 0.0, 0, values)
            )

    def name_lane(self, tid: int, name: str) -> None:
        """Label a lane that never emits through a process (windows etc.)."""
        self._lane_names.setdefault(tid, name)

    # -- export ------------------------------------------------------------

    def chrome_events(self) -> Iterator[Dict[str, Any]]:
        """Yield ``trace_event`` dicts for this tracer (metadata first)."""
        yield {
            "ph": "M", "name": "process_name", "pid": self.pid, "tid": 0,
            "ts": 0, "args": {"name": self.label},
        }
        for tid, name in sorted(self._lane_names.items()):
            yield {
                "ph": "M", "name": "thread_name", "pid": self.pid, "tid": tid,
                "ts": 0, "args": {"name": name},
            }
        for ph, name, cat, ts, dur, tid, args in self.events:
            event: Dict[str, Any] = {
                "ph": ph, "name": name, "cat": cat, "ts": ts,
                "pid": self.pid, "tid": tid,
            }
            if ph == _COMPLETE:
                event["dur"] = dur
            elif ph == _INSTANT:
                event["s"] = "t"
            if args is not None:
                event["args"] = args
            yield event


def chrome_document(tracers) -> Dict[str, Any]:
    """Merge tracers (one per engine/cluster) into one Chrome trace doc."""
    events: List[Dict[str, Any]] = []
    dropped = 0
    for tracer in tracers:
        events.extend(tracer.chrome_events())
        dropped += tracer.dropped
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated-us", "dropped_events": dropped},
    }


def write_chrome_trace(tracers, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_document(tracers), fh, separators=(",", ":"))


# -- validation ------------------------------------------------------------

#: Fields every event must carry to load in chrome://tracing.
REQUIRED_FIELDS = ("ph", "ts", "pid", "tid", "name")

#: Tolerance for float jitter when checking span containment.
_EPS = 1e-6


def validate_trace(doc: Dict[str, Any]) -> List[str]:
    """Check a parsed trace document; returns a list of problems (empty=ok).

    Schema: a ``traceEvents`` list whose events all carry
    ``ph``/``ts``/``pid``/``tid``/``name``; complete (``X``) events carry a
    non-negative ``dur``.  Structure: within each ``(pid, tid)`` lane,
    complete spans must be properly nested — overlap without containment
    means two spans claim the same sequential process, which is how a broken
    instrumentation point shows up.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    lanes: Dict[Tuple[int, int], List[Tuple[float, float, str]]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [f for f in REQUIRED_FIELDS if f not in event]
        if missing:
            problems.append(f"event {i} ({event.get('name')!r}): missing {missing}")
            continue
        if not isinstance(event["ts"], (int, float)):
            problems.append(f"event {i} ({event['name']!r}): non-numeric ts")
            continue
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event {i} ({event['name']!r}): X event needs dur >= 0"
                )
                continue
            lanes.setdefault((event["pid"], event["tid"]), []).append(
                (float(event["ts"]), float(dur), event["name"])
            )
    for (pid, tid), spans in sorted(lanes.items()):
        # Sort by start; ties put the longer (enclosing) span first.
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: List[Tuple[float, float, str]] = []
        for start, dur, name in spans:
            end = start + dur
            while stack and start >= stack[-1][1] - _EPS:
                stack.pop()
            if stack and end > stack[-1][1] + _EPS:
                problems.append(
                    f"lane pid={pid} tid={tid}: span {name!r} "
                    f"[{start}, {end}) overlaps {stack[-1][2]!r} "
                    f"ending at {stack[-1][1]} without nesting"
                )
                continue
            stack.append((start, end, name))
    return problems
