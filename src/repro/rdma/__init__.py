"""Simulated one-sided RDMA fabric (verbs, NIC model, timing parameters)."""

from .params import DEFAULT_PARAMS, NetworkParams
from .verbs import (
    NodeUnavailable,
    RdmaEndpoint,
    RdmaFaultError,
    StaleEpoch,
    VerbTimeout,
)

__all__ = [
    "DEFAULT_PARAMS",
    "NetworkParams",
    "NodeUnavailable",
    "RdmaEndpoint",
    "RdmaFaultError",
    "StaleEpoch",
    "VerbTimeout",
]
