"""Simulated one-sided RDMA fabric (verbs, NIC model, timing parameters)."""

from .params import DEFAULT_PARAMS, NetworkParams
from .verbs import RdmaEndpoint

__all__ = ["DEFAULT_PARAMS", "NetworkParams", "RdmaEndpoint"]
