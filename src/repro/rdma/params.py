"""Timing parameters of the simulated RDMA fabric.

The numbers are calibrated against the paper's testbed (100 Gbps ConnectX-6,
~2 us small-message RTT) so that Ditto saturates at roughly 13 Mops with 256
clients, as in Figure 14.  Absolute values are configuration, not claims: all
experiments report shapes relative to baselines running on the same fabric.

Cost model per one-sided verb (client side):

    latency = RTT + NIC queueing + NIC service + payload / bandwidth

The NIC of a memory node is a serial message processor with a bounded message
rate; CAS and FAA consume more NIC service time than READ/WRITE to reflect the
internal atomics locks of real RNICs (Kalia et al., ATC'16) — the effect the
paper's FC cache exists to mitigate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class NetworkParams:
    """All knobs of the simulated fabric, in microseconds/bytes."""

    #: Base round-trip propagation + PCIe + client NIC time for small messages.
    rtt_us: float = 1.8
    #: Memory-node RNIC message rate in million messages/second.  Each verb
    #: occupies the NIC pipe for ``verb_cost / rate`` microseconds.
    nic_rate_mops: float = 80.0
    #: Network bandwidth in bytes per microsecond (100 Gbps ~ 12500 B/us).
    bandwidth_bytes_per_us: float = 12500.0
    #: Relative NIC service cost per verb (1.0 = one plain message).
    verb_costs: Dict[str, float] = field(
        default_factory=lambda: {
            "read": 1.0,
            "write": 1.0,
            "cas": 2.0,  # RNIC-internal atomics lock
            "faa": 2.0,
            "rpc": 2.0,  # send + completion
        }
    )
    #: Client-side CPU overhead charged per issued verb (posting, polling).
    client_overhead_us: float = 0.15
    #: Controller CPU time for trivial RPC dispatch (handler adds its own).
    rpc_dispatch_cpu_us: float = 0.3
    #: Completion timeout: how long a client waits for a verb whose response
    #: never arrives before declaring it failed.  Only reachable under fault
    #: injection — the healthy fabric always completes verbs.
    verb_timeout_us: float = 100.0
    #: Optional per-verb timeout overrides, e.g. ``{"rpc": 500.0}``.
    verb_timeout_overrides: Optional[Dict[str, float]] = None

    def timeout_us(self, verb: str) -> float:
        """Completion timeout for one verb kind."""
        if self.verb_timeout_overrides:
            return self.verb_timeout_overrides.get(verb, self.verb_timeout_us)
        return self.verb_timeout_us

    def nic_service_us(self, verb: str, payload_bytes: int = 0) -> float:
        """NIC pipe occupancy for one verb of ``payload_bytes``."""
        base = self.verb_costs[verb] / self.nic_rate_mops
        return base + payload_bytes / self.bandwidth_bytes_per_us

    def one_way_us(self) -> float:
        return self.rtt_us / 2.0


DEFAULT_PARAMS = NetworkParams()
