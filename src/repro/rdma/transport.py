"""The verb-level transport interface shared by both substrates.

Everything above this line — :class:`~repro.core.client.DittoClient`, the
allocators, the migrator, crash recovery, the consensus client — speaks one
narrow surface: *verbs as generators*.  A verb generator yields opaque
commands its substrate knows how to execute and returns the verb's result;
callers compose them with ``yield from`` and never look at the yielded
commands.  That discipline is what lets the very same client code run on
two substrates:

* the **sim substrate** (:class:`~repro.rdma.verbs.RdmaEndpoint`) yields
  :class:`~repro.sim.Timeout` commands against the discrete-event engine,
  with NIC queueing and verb latency fully cost-modelled;
* the **real substrate** (:class:`~repro.runtime.client.RealEndpoint`)
  yields awaitables that an asyncio driver executes against live
  memory-node processes over sockets and ``multiprocessing.shared_memory``.

The contract every implementation must honour (DESIGN §3.7):

* ``read``/``write``/``cas``/``faa`` address one global byte-addressable
  space; CAS/FAA act on little-endian 8-byte words and return the *old*
  value (CAS succeeded iff old == expected; FAA wraps mod 2^64).
* ``rpc(node, op, payload)`` invokes a named controller operation on one
  memory node and returns its result; controller-side errors surface as
  the same exception types on both substrates
  (:class:`~repro.memory.controller.OutOfMemoryError`,
  :class:`~repro.rdma.verbs.StaleEpoch`).
* Failures surface *inside* the generator at the yield point —
  :class:`~repro.rdma.verbs.VerbTimeout` for a lost completion,
  :class:`~repro.rdma.verbs.NodeUnavailable` for a dead node — so client
  retry machinery is substrate-blind.
* The ``fence`` slot holds an :class:`~repro.core.elasticity.EpochFence`
  (or None); verbs check it client-side *before* address resolution and
  NACK with :class:`~repro.rdma.verbs.StaleEpoch`.
* The ``consensus`` slot holds a
  :class:`~repro.core.consensus.GroupClient` (or None) for routing
  metadata commands through a replicated controller group.
* ``post_write``/``post_faa`` are fire-and-forget: spawned on the
  substrate's engine, with injected faults and fence NACKs swallowed.

``charge`` (timing-only NIC accounting for cost-modelled baselines) and
``read_burst`` doorbell batching are sim-substrate extras, not part of the
portable contract — portable code must not rely on them.

Clusters hand out transports via ``cluster.make_endpoint(client)``, the
single seam where the substrate is chosen.
"""

from __future__ import annotations

from typing import Generator


class VerbTransport:
    """Abstract verb surface; see the module docstring for the contract.

    Implementations also expose ``engine`` (an object with ``now``/``_now``
    in microseconds and ``spawn(generator)``), ``counters`` (a
    :class:`~repro.sim.CounterSet`), and the mutable ``fence``/``tracer``/
    ``consensus`` slots.
    """

    __slots__ = ()

    def read(self, addr: int, length: int) -> Generator:
        """READ: returns ``length`` bytes from remote memory."""
        raise NotImplementedError

    def write(self, addr: int, data: bytes) -> Generator:
        """WRITE: stores ``data`` at ``addr``."""
        raise NotImplementedError

    def cas(self, addr: int, expected: int, new: int) -> Generator:
        """CAS on an 8-byte word; returns the old value."""
        raise NotImplementedError

    def faa(self, addr: int, delta: int) -> Generator:
        """FAA on an 8-byte word (mod 2^64); returns the old value."""
        raise NotImplementedError

    def rpc(self, node, op: str, payload=None, size: int = 64) -> Generator:
        """Invoke controller operation ``op`` on ``node``; returns its result."""
        raise NotImplementedError

    def post_write(self, addr: int, data: bytes):
        """Fire-and-forget WRITE; returns the spawned background handle."""
        raise NotImplementedError

    def post_faa(self, addr: int, delta: int):
        """Fire-and-forget FAA; returns the spawned background handle."""
        raise NotImplementedError
