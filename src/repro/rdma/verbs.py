"""One-sided RDMA verbs over simulated memory nodes.

Every verb is a generator meant to run inside a simulation process
(``yield from endpoint.read(...)``).  The timing of a verb is::

    client overhead -> half RTT -> MN NIC queue + service -> half RTT

The three legs are folded into a single engine event via the NIC's
virtual-time booking (see :class:`repro.sim.RateLimiter.serve`): the booking
order equals issue order, queueing delay is exact for a FIFO pipe, and the
process resumes when the response lands.  Memory mutations (WRITE/CAS/FAA)
execute at resume time — a constant half-RTT after NIC service for every
client — so atomics linearize across concurrent clients in NIC-service
order, exactly as on hardware.

``post_*`` variants are fire-and-forget: they spawn the verb as a background
process and return immediately, modelling unsignalled/asynchronous posts the
paper uses for metadata updates.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..memory.node import MemoryNode, MemoryPool
from ..sim import CounterSet, Engine, Process, Timeout
from ..sim.faults import DROP, OK, FaultInjector
from .params import NetworkParams
from .transport import VerbTransport

_COUNTER_KEYS = {
    verb: f"rdma_{verb}" for verb in ("read", "write", "cas", "faa", "rpc")
}


class RdmaFaultError(RuntimeError):
    """Base of the injected-failure hierarchy: a verb did not complete."""

    def __init__(self, message: str, verb: str = "", node_id: int = -1):
        super().__init__(message)
        self.verb = verb
        self.node_id = node_id


class VerbTimeout(RdmaFaultError):
    """The verb (or its response) was lost; no completion within the timeout."""


class NodeUnavailable(RdmaFaultError):
    """The target memory node is down; the verb cannot complete."""


class StaleEpoch(RdmaFaultError):
    """The verb was fenced: the client's cached membership epoch is stale.

    Raised when a verb targets memory whose ownership changed under an
    epoch bump (a memory node draining out or already retired).  Unlike a
    timeout, the rejection is immediate — the MN NACKs the request against
    its current epoch — so the client should refresh its membership view
    and retry, bounded by ``DittoConfig.epoch_retries``.  Subclassing
    :class:`RdmaFaultError` keeps any unhandled path on the existing
    degrade-not-crash fault machinery.
    """

    def __init__(self, message: str, verb: str = "", node_id: int = -1,
                 epoch: int = 0):
        super().__init__(message, verb=verb, node_id=node_id)
        self.epoch = epoch


class RdmaEndpoint(VerbTransport):
    """A client-side RDMA endpoint (one per simulated client thread).

    The sim implementation of :class:`~repro.rdma.transport.VerbTransport`:
    every verb's timing is cost-modelled against the discrete-event engine.
    """

    __slots__ = (
        "engine",
        "pool",
        "params",
        "counters",
        "faults",
        "tracer",
        "fence",
        "_single_node",
        "_lead",
        "_lag",
        "_inv_bw",
        "_base_read",
        "_base_write",
        "_base_cas8",
        "_base_faa8",
        "_base_rpc",
        "consensus",
    )

    def __init__(
        self,
        engine: Engine,
        pool: MemoryPool,
        params: Optional[NetworkParams] = None,
        counters: Optional[CounterSet] = None,
        faults: Optional[FaultInjector] = None,
        tracer=None,
    ):
        self.engine = engine
        self.pool = pool
        self.params = params or NetworkParams()
        self.counters = counters if counters is not None else CounterSet()
        #: Fault injector; None (the default) keeps every verb on the
        #: zero-overhead healthy path.
        self.faults = faults
        #: Span tracer (repro.obs); None keeps verbs span-free.
        self.tracer = tracer
        #: Epoch fence (repro.core.elasticity.EpochFence); None — the
        #: default until a cluster's first membership change — keeps every
        #: verb on the unfenced fast path.  Checked at issue time: a fenced
        #: verb is NACKed immediately with :class:`StaleEpoch` instead of
        #: reaching the NIC pipe.
        self.fence = None
        #: Replicated-controller handle (repro.core.consensus.GroupClient);
        #: None — the default — keeps metadata RPCs on the direct
        #: single-controller path.  When set, segment-management RPCs route
        #: through the raft group instead of a single controller.
        self.consensus = None
        # Pre-resolved fast path for the common single-MN pool.
        self._single_node = pool.nodes[0] if len(pool.nodes) == 1 else None
        self._lead = self.params.client_overhead_us + self.params.one_way_us()
        self._lag = self.params.one_way_us()
        # Per-verb NIC service costs, precomputed once: params are immutable
        # after endpoint construction, and verbs run millions of times per
        # experiment, so the dict lookup + division in nic_service_us() is
        # pure per-call overhead.  CAS/FAA always carry 8-byte payloads, so
        # their full cost folds into one constant.
        p = self.params
        rate = p.nic_rate_mops
        self._inv_bw = 1.0 / p.bandwidth_bytes_per_us
        self._base_read = p.verb_costs["read"] / rate
        self._base_write = p.verb_costs["write"] / rate
        self._base_cas8 = p.verb_costs["cas"] / rate + 8.0 * self._inv_bw
        self._base_faa8 = p.verb_costs["faa"] / rate + 8.0 * self._inv_bw
        self._base_rpc = p.verb_costs["rpc"] / rate

    def _node_for(self, addr: int, length: int) -> MemoryNode:
        node = self._single_node
        if node is not None and node.contains(addr, length):
            return node
        return self.pool.node_for(addr, length)

    # -- fault injection ---------------------------------------------------

    def _fault_gate(self, node: MemoryNode, verb: str) -> Generator:
        """Consult the injector; returns extra lead latency or raises.

        A failed verb burns the configured completion timeout in simulated
        time before raising — the client is blocked polling for a completion
        that never comes.  Dropped/failed verbs never reach the NIC pipe.
        """
        kind, extra = self.faults.verb_outcome(node.node_id, verb)
        if kind == OK:
            if extra:
                self.counters.add("fault_latency_spike")
            return extra
        timeout_us = self.params.timeout_us(verb)
        yield Timeout(timeout_us)
        if self.tracer is not None:
            self.tracer.instant(
                "fault.verb_timeout", "fault",
                {"verb": verb, "node": node.node_id},
            )
        if kind == DROP:
            self.counters.add("fault_verb_timeout")
            raise VerbTimeout(
                f"{verb} to node {node.node_id} timed out after {timeout_us}us",
                verb=verb,
                node_id=node.node_id,
            )
        self.counters.add("fault_node_unavailable")
        raise NodeUnavailable(
            f"node {node.node_id} is unreachable ({verb} timed out after "
            f"{timeout_us}us)",
            verb=verb,
            node_id=node.node_id,
        )

    def _post_safely(self, gen: Generator) -> Generator:
        """Background posts must swallow injected faults: an unsignalled
        write that vanishes costs nothing but the update it carried.  The
        same goes for epoch-fenced posts — a best-effort metadata update
        aimed at a draining node is simply dropped."""
        try:
            yield from gen
        except StaleEpoch:
            self.counters.add("fenced_post_dropped")
        except RdmaFaultError:
            self.counters.add("fault_post_dropped")

    # -- one-sided verbs ---------------------------------------------------

    def read(self, addr: int, length: int) -> Generator:
        """RDMA_READ: returns ``length`` bytes from remote memory."""
        # Fence before address resolution: a retired node has left the pool,
        # so a stale pointer must NACK as StaleEpoch, not unwind as a
        # MemoryAccessError from the routing lookup.
        if self.fence is not None:
            self.fence.check_read(addr, "read", -1)
        node = self._node_for(addr, length)
        self.counters.add("rdma_read")
        tracer = self.tracer
        t0 = self.engine._now if tracer is not None else 0.0
        lead = self._lead
        if self.faults is not None:
            lead += yield from self._fault_gate(node, "read")
        yield Timeout(
            node.nic.book(
                self._base_read + length * self._inv_bw, lead, self._lag
            )
        )
        if tracer is not None:
            tracer.complete("rdma.read", "rdma", t0)
        return node.read_bytes(addr, length)

    def write(self, addr: int, data: bytes) -> Generator:
        """RDMA_WRITE: stores ``data`` at ``addr``."""
        if self.fence is not None:
            self.fence.check_write(addr, "write", -1)
        node = self._node_for(addr, len(data))
        self.counters.add("rdma_write")
        tracer = self.tracer
        t0 = self.engine._now if tracer is not None else 0.0
        lead = self._lead
        if self.faults is not None:
            lead += yield from self._fault_gate(node, "write")
        yield Timeout(
            node.nic.book(
                self._base_write + len(data) * self._inv_bw, lead, self._lag
            )
        )
        if tracer is not None:
            tracer.complete("rdma.write", "rdma", t0)
        node.write_bytes(addr, data)

    def cas(self, addr: int, expected: int, new: int) -> Generator:
        """RDMA_CAS on an 8-byte word; returns the old value.

        The swap succeeded iff the returned value equals ``expected``.
        """
        if self.fence is not None:
            self.fence.check_write(addr, "cas", -1)
        node = self._node_for(addr, 8)
        self.counters.add("rdma_cas")
        tracer = self.tracer
        t0 = self.engine._now if tracer is not None else 0.0
        lead = self._lead
        if self.faults is not None:
            lead += yield from self._fault_gate(node, "cas")
        yield Timeout(node.nic.book(self._base_cas8, lead, self._lag))
        if tracer is not None:
            tracer.complete("rdma.cas", "rdma", t0)
        return node.compare_and_swap(addr, expected, new)

    def faa(self, addr: int, delta: int) -> Generator:
        """RDMA_FAA on an 8-byte word; returns the old value."""
        if self.fence is not None:
            self.fence.check_write(addr, "faa", -1)
        node = self._node_for(addr, 8)
        self.counters.add("rdma_faa")
        tracer = self.tracer
        t0 = self.engine._now if tracer is not None else 0.0
        lead = self._lead
        if self.faults is not None:
            lead += yield from self._fault_gate(node, "faa")
        yield Timeout(node.nic.book(self._base_faa8, lead, self._lag))
        if tracer is not None:
            tracer.complete("rdma.faa", "rdma", t0)
        return node.fetch_and_add(addr, delta)

    def read_burst(self, addr: int, length: int, count: int) -> Generator:
        """``count`` doorbell-batched READs of one region; returns the bytes
        of the final read.

        Models posting a chain of work requests with a single signalled
        completion: the NIC serves all ``count`` messages back-to-back
        (:meth:`RateLimiter.book_burst`) and the client resumes once, so a
        whole burst costs one engine event.  Falls back to ``count``
        individually awaited READs whenever faults, tracing, or an epoch
        fence are armed — those paths gate on per-verb state the batched
        booking skips.
        """
        if count <= 1 or self.faults is not None or self.tracer is not None \
                or self.fence is not None or not self.engine.batch_enabled:
            data = b""
            for _ in range(max(count, 1)):
                data = yield from self.read(addr, length)
            return data
        node = self._node_for(addr, length)
        self.counters.add("rdma_read", count)
        yield Timeout(
            node.nic.book_burst(
                self._base_read + length * self._inv_bw,
                count,
                self._lead,
                self._lag,
            )
        )
        return node.read_bytes(addr, length)

    def charge(self, node: MemoryNode, verb: str, payload: int = 8) -> Generator:
        """Timing-only verb: full latency/NIC accounting, no memory access.

        Baseline systems whose *remote state* is cost-modelled (e.g. the
        CliqueMap server structures) use this so their verbs contend for the
        same NIC as everything else without maintaining byte layouts.
        """
        self.counters.add(_COUNTER_KEYS[verb])
        tracer = self.tracer
        t0 = self.engine._now if tracer is not None else 0.0
        yield Timeout(
            node.nic.book(
                self.params.nic_service_us(verb, payload), self._lead, self._lag
            )
        )
        if tracer is not None:
            tracer.complete("rdma.charge", "rdma", t0, {"verb": verb})

    # -- RPC to the memory-node controller --------------------------------

    def rpc(self, node: MemoryNode, op: str, payload=None, size: int = 64) -> Generator:
        """RDMA-based RPC served by the (weak) controller CPU of ``node``."""
        if node.controller is None:
            raise RuntimeError(f"memory node {node.node_id} has no controller")
        if self.fence is not None:
            self.fence.check_rpc(node.node_id, "rpc")
        self.counters.add("rdma_rpc")
        tracer = self.tracer
        t0 = self.engine._now if tracer is not None else 0.0
        lead = self._lead
        if self.faults is not None:
            lead += yield from self._fault_gate(node, "rpc")
        yield Timeout(
            node.nic.book(self._base_rpc + size * self._inv_bw, lead, 0.0)
        )
        result = yield from node.controller.serve(op, payload)
        yield Timeout(
            node.nic.book(self._base_write + size * self._inv_bw, 0.0, self._lag)
        )
        if tracer is not None:
            tracer.complete("rdma.rpc", "rdma", t0, {"op": op})
        return result

    # -- asynchronous (unsignalled) posts ---------------------------------

    def post_write(self, addr: int, data: bytes) -> Process:
        """Fire-and-forget WRITE; returns the background process."""
        # Always wrapped: a fence can be armed after the post is spawned but
        # before it executes (first membership change), and an unsignalled
        # post must never unwind the engine.
        return self.engine.spawn(
            self._post_safely(self.write(addr, data)), name="post_write"
        )

    def post_faa(self, addr: int, delta: int) -> Process:
        """Fire-and-forget FAA; returns the background process."""
        return self.engine.spawn(
            self._post_safely(self.faa(addr, delta)), name="post_faa"
        )
