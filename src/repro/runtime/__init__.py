"""The real-process substrate (DESIGN §3.7).

Runs the *same* :class:`~repro.core.client.DittoClient`, allocator,
controller, and memory-node code as the simulator, but on live operating-
system processes: each memory node is a separate process whose heap is a
``multiprocessing.shared_memory`` segment, verbs travel as length-prefixed
frames over loopback sockets served by a single-threaded asyncio loop (so
CAS/FAA linearize by construction, like the NIC serialization point in the
sim), and clients drive their verb generators with an asyncio driver that
maps sim commands onto awaitables.

Layout:

- :mod:`.wire` — framed wire protocol (opcodes, request-id multiplexing);
- :mod:`.server` — the memory-node server process
  (``python -m repro.runtime.server``);
- :mod:`.client` — :class:`WallClockRuntime`, :class:`RealEndpoint`, and
  the :func:`drive` generator driver;
- :mod:`.cluster` — :class:`RealCluster`, the client-side deployment
  façade that :class:`~repro.core.client.DittoClient` plugs into;
- :mod:`.harness` — :class:`RealClusterHarness`, spawning and reaping
  node processes with leak accounting;
- :mod:`.loadgen` — concurrent load generator with wall-clock latency
  histograms (``python -m repro.runtime.loadgen``);
- :mod:`.validate` — the sim-vs-real throughput-ordering harness
  (``python -m repro.runtime.validate``).

``python -m repro.serve`` is the user-facing launcher over all of this.
"""

from .client import RealEndpoint, WallClockRuntime, drive
from .cluster import RealCluster
from .harness import RealClusterHarness

__all__ = [
    "RealCluster",
    "RealClusterHarness",
    "RealEndpoint",
    "WallClockRuntime",
    "drive",
]
