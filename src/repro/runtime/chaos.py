"""Wall-clock chaos: the sim's fault model executed against live processes.

The simulator's robustness story is seed-driven and declarative: a
:class:`~repro.sim.faults.FaultPlan` describes verb drops, latency
spikes, and node outages, and the engine's fault injector answers point
queries at verb-issue time.  This module brings the *same plans* to the
real substrate:

- :class:`ChaosGate` — the wall-clock twin of
  :class:`~repro.sim.faults.FaultInjector`, armed inside each memory-node
  server.  Plans are compiled from sim-time to wall-clock with
  :func:`repro.sim.faults.compile_wall` and consulted per request frame:
  a DROP swallows the request *before it executes* (the client times out
  — the sim's drop semantics exactly), a node-outage window closes the
  connection before executing (``NodeUnavailable``), and a latency spike
  delays execution+response without blocking the multiplexed stream.

- :func:`run_chaos` — the chaos harness: drives the standard load
  generator under an armed plan (optionally SIGKILLing and
  restart-adopting a memory node mid-load), then quiesces, reconciles
  orphaned grants through the same ``list_segments`` diff crash recovery
  uses, runs lease-repair scrubs, and finishes with the memory-accounting
  sweep (:mod:`repro.core.invariants`) evaluated over the *real* shared-
  memory heaps.

What maps 1:1, what is approximated, and the compilation rule are
documented in DESIGN §3.8.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Dict, List, Optional, Tuple

from ..core import invariants
from ..obs import runtime as obs_runtime
from ..obs.runtime import maybe_span
from ..sim.faults import (
    DOWN,
    DROP,
    OK,
    DropWindow,
    FaultPlan,
    NodeOutage,
    compile_wall,
)
from .client import NodeHandle, drive
from .cluster import RealCluster
from .loadgen import run_load

_INF = float("inf")

#: Retry knobs the chaos loadgen overlays on the cluster config: wall-clock
#: backoff (the sim defaults are microsecond-scale) with enough budget that
#: a Set rides through a ~250 ms outage window or a kill/restart gap via
#: bounded retries instead of erroring (worst-case backoff sum ~0.8 s).
CHAOS_CLIENT_CONFIG = {
    "fault_retries": 16,
    "retry_backoff_us": 2_000.0,
    "retry_backoff_max_us": 60_000.0,
}

#: Per-verb timeout under chaos.  Loopback verbs complete in micro- to
#: milliseconds, so a timeout this much larger implies a gate drop — which
#: is what keeps "timed out" equivalent to the sim's "never executed".
CHAOS_TIMEOUT_S = 0.25

#: The canonical drop+outage plan, authored in *sim* microseconds against
#: a ~30 ms simulated run; :func:`compile_wall` at :data:`DEFAULT_TIME_SCALE`
#: turns it into a ~1.3 s wall-clock schedule.  One JSON, two substrates.
CANNED_PLAN = FaultPlan(
    drops=(DropWindow(2_000.0, 20_000.0, prob=0.04),),
    outages=(NodeOutage(1, 8_000.0, 13_000.0),),
    seed=902,
)

DEFAULT_TIME_SCALE = 50.0


class ChaosGate:
    """A wall-clock :class:`~repro.sim.faults.FaultInjector` for one node.

    Lives inside the memory-node server and is consulted once per request
    frame, before the operation executes — so a dropped verb *never ran*,
    exactly like a sim drop that never reached the NIC.  Time is wall-
    clock microseconds since :meth:`arm`; the arm instant is broadcast as
    an epoch timestamp so every node (including one restarted mid-run)
    measures windows from the same origin.

    Divergence from the sim, by necessity: the sim draws probabilistic
    drops from one global RNG in verb-issue order; separate server
    processes cannot share that stream, so each gate seeds its own RNG
    from ``(plan seed, node id)``.  Drop *rates* and windows match; the
    exact per-verb coin flips do not.
    """

    def __init__(self, plan: FaultPlan, node_id: int):
        self.node_id = node_id
        self.rng = random.Random(plan.seed * 1_000_003 + node_id)
        # Controller RPC failures are verb drops scoped to "rpc", the same
        # folding FaultInjector.load performs.
        self._drops = plan.drops + tuple(
            DropWindow(r.start_us, r.end_us, r.prob, r.node_id, ("rpc",))
            for r in plan.rpc_failures
        )
        self._spikes = plan.spikes
        self._outages = tuple(
            o for o in plan.outages if o.node_id == node_id
        )
        windows = [
            (w.start_us, w.end_us)
            for w in (*self._drops, *self._spikes, *self._outages)
        ]
        self._active_from = min((s for s, _ in windows), default=_INF)
        self._active_until = max((e for _, e in windows), default=-_INF)
        self.t0: Optional[float] = None
        #: Always-on fate tally, reported by the server's ``__stats__``
        #: RPC and folded into the chaos digest (plain dict increments;
        #: cheap enough to keep unconditioned).
        self.verdicts: Dict[str, int] = {
            "ok": 0, "drop": 0, "down": 0, "spike": 0,
        }

    def arm(self, t0_epoch: Optional[float] = None) -> float:
        """Start the clock; returns the epoch origin actually used."""
        self.t0 = time.time() if t0_epoch is None else float(t0_epoch)
        return self.t0

    def now_us(self) -> float:
        return (time.time() - self.t0) * 1e6

    def verb_outcome(self, verb: str) -> Tuple[int, float]:
        """Fate of one verb arriving *now*: ``(OK|DROP|DOWN, extra_us)``.

        Mirrors :meth:`FaultInjector.verb_outcome`, including the RNG
        discipline (one draw per matching probabilistic verb).
        """
        if self.t0 is None:
            return OK, 0.0
        now = self.now_us()
        if not self._active_from <= now < self._active_until:
            self.verdicts["ok"] += 1
            return OK, 0.0
        for outage in self._outages:
            if outage.start_us <= now < outage.end_us:
                self.verdicts["down"] += 1
                return DOWN, 0.0
        for w in self._drops:
            if (
                w.start_us <= now < w.end_us
                and (w.node_id is None or w.node_id == self.node_id)
                and (w.verbs is None or verb in w.verbs)
                and (w.prob >= 1.0 or self.rng.random() < w.prob)
            ):
                self.verdicts["drop"] += 1
                return DROP, 0.0
        extra = 0.0
        for s in self._spikes:
            if (
                s.start_us <= now < s.end_us
                and (s.node_id is None or s.node_id == self.node_id)
                and (s.verbs is None or verb in s.verbs)
            ):
                extra += s.extra_us
        self.verdicts["spike" if extra > 0.0 else "ok"] += 1
        return OK, extra


# -- post-run reconciliation and the real-heap sweep -----------------------


async def reconcile_grants(cluster: RealCluster) -> List[Tuple[int, int, int]]:
    """Adopt grants the servers hold but no client recorded.

    The same diff step 2 of crash recovery performs
    (:meth:`repro.core.cache.DittoCluster.recover_client`): per client and
    node, ``list_segments(owner)`` against the client's own grant records.
    A surplus server-side grant is an alloc RPC that executed but whose
    response was lost to a drop, reset, or SIGKILL; the client re-ran the
    op and got a different segment.  Recording the orphan as *spare* puts
    it back under the accounting sweep.  Returns the adopted
    ``(client_id, addr, size)`` triples.
    """
    adopted: List[Tuple[int, int, int]] = []
    for client in cluster.clients:
        for node in cluster.nodes:
            allocator = client.alloc.allocator_for_node(node)
            known = set(allocator.segments)
            granted = await drive(
                client.ep.rpc(node, "list_segments", client.client_id)
            )
            for addr, size in granted:
                if (addr, size) not in known:
                    allocator.record_segment(addr, size)
                    adopted.append((client.client_id, addr, size))
    return adopted


async def repair_sweep(cluster: RealCluster, passes: int = 2) -> int:
    """Scrub the table for half-installed slots (lost metadata posts).

    Two full scans separated by the repair lease: the first pass marks
    suspects, the second reclaims those whose atomic word never moved.
    Returns the number of repaired slots (counter delta).
    """
    scrubber = cluster.clients[0]
    before = cluster.counters.get("lease_repair")
    lease_s = scrubber.config.repair_lease_us / 1e6
    for index in range(passes):
        await drive(scrubber.repair_scan())
        if index + 1 < passes:
            await asyncio.sleep(2.0 * lease_s + 0.005)
    return cluster.counters.get("lease_repair") - before


class _SweepController:
    def __init__(self, grants: Dict[int, list]):
        self._grants = grants

    def granted_segments(self) -> Dict[int, list]:
        return self._grants


class _SweepNode:
    """Duck-typed memory node for the offline sweep: address range, the
    grant log fetched over RPC, and (node 0 only) ``read_bytes`` served
    straight from the attached shared-memory heap."""

    def __init__(self, handle: NodeHandle, grants: Dict[int, list]):
        self._handle = handle
        self.node_id = handle.node_id
        self.base = handle.base
        self.end = handle.end
        self.controller = _SweepController(grants)

    def read_bytes(self, addr: int, length: int) -> bytes:
        return self._handle.read_direct(addr, length)


class _SweepView:
    """The cluster facets :func:`repro.core.invariants.sweep` reads."""

    def __init__(self, cluster: RealCluster,
                 grants_by_node: Dict[int, Dict[int, list]]):
        self.clients = cluster.clients
        self.budget = cluster.budget
        self.layout = cluster.layout
        self.nodes = [
            _SweepNode(handle, grants_by_node[handle.node_id])
            for handle in cluster.nodes
        ]
        self.node = self.nodes[0]


async def sweep_real(cluster: RealCluster) -> Dict[str, int]:
    """Run the memory-accounting sweep over the live cluster's real heaps.

    Grant logs come from each node's ``granted_segments`` RPC (journal-
    backed, so they are crash-consistent); hash-table slots are read
    directly out of node 0's shared-memory segment.  The cluster must be
    quiesced: loadgen finished, background posts drained, grants
    reconciled.  Raises
    :class:`~repro.core.invariants.InvariantViolation` on any lost grant,
    leaked block, or budget drift.
    """
    ep = cluster.clients[0].ep
    grants_by_node: Dict[int, Dict[int, list]] = {}
    for node in cluster.nodes:
        grants_by_node[node.node_id] = await drive(
            ep.rpc(node, "granted_segments", None)
        )
    node0 = cluster.node
    attached_here = node0._seg is None
    node0.attach()
    try:
        return invariants.sweep(_SweepView(cluster, grants_by_node))
    finally:
        if attached_here:
            node0.detach()


# -- the chaos harness ------------------------------------------------------


async def _arm_gates(cluster: RealCluster, wall_plan: FaultPlan,
                     t0: float) -> None:
    ep = cluster.clients[0].ep
    payload = (wall_plan.to_dict(), t0)
    for node in cluster.nodes:
        await drive(ep.rpc(node, "__chaos_load__", payload))


async def _disarm_gates(cluster: RealCluster) -> None:
    ep = cluster.clients[0].ep
    for node in cluster.nodes:
        await drive(ep.rpc(node, "__chaos_stop__", None))


async def run_chaos(
    harness,
    plan: FaultPlan = CANNED_PLAN,
    *,
    time_scale: float = DEFAULT_TIME_SCALE,
    clients: int = 16,
    ops: int = 5000,
    n_keys: int = 2000,
    read_ratio: float = 0.95,
    value_bytes: int = 232,
    preload: int = 500,
    seed: int = 7,
    kill_node_id: Optional[int] = None,
    kill_at_s: float = 0.8,
    restart_after_s: float = 0.3,
    timeout_s: float = CHAOS_TIMEOUT_S,
) -> Dict:
    """Drive the loadgen under ``plan`` against ``harness``'s live cluster.

    The full chaos protocol: compile the sim-time plan to wall-clock, arm
    every node's gate at a common epoch origin right as the measured
    window opens, optionally SIGKILL ``kill_node_id`` mid-load and
    restart it against the surviving heap, then quiesce, reconcile,
    repair, and sweep.  Returns the loadgen report extended with a
    ``chaos`` section; raises on an invariant violation.
    """
    wall_plan, dropped = compile_wall(plan, time_scale)
    if dropped:
        raise ValueError(
            f"plan kinds {dropped} are sim-only and cannot run on the real "
            "substrate (DESIGN §3.8)"
        )
    if kill_node_id == 0:
        raise ValueError(
            "node 0 hosts the in-process membership/weights handlers; "
            "kill a data node instead"
        )

    descriptor = dict(harness.descriptor())
    descriptor["config"] = {
        **descriptor.get("config", {}), **CHAOS_CLIENT_CONFIG,
    }
    cluster = RealCluster(descriptor, timeout_s=timeout_s)
    #: Arms the clients' lease-repair path, exactly as a sim cluster with
    #: an injector attached would.
    cluster.fault_injector = wall_plan

    tasks: List[asyncio.Task] = []
    killed: Dict[str, float] = {}

    async def _watchdog() -> None:
        # Reap dead children and surface NodeUnavailable immediately via
        # the health view, instead of every op burning its full timeout.
        while True:
            for node_id in harness.reap():
                cluster.health.report_down(node_id)
            await asyncio.sleep(0.05)

    async def _killer(t0: float) -> None:
        await asyncio.sleep(kill_at_s)
        harness.kill_node(kill_node_id)
        cluster.health.report_down(kill_node_id)
        killed["killed_at_s"] = time.time() - t0
        await asyncio.sleep(restart_after_s)
        await asyncio.to_thread(
            harness.restart_node, kill_node_id,
            chaos=(wall_plan.to_dict(), t0),
        )
        killed["restarted_at_s"] = time.time() - t0

    obs = obs_runtime.current()

    async def _on_start() -> None:
        t0 = time.time()
        killed["_t0_epoch"] = t0
        await _arm_gates(cluster, wall_plan, t0)
        if obs is not None:
            # Overlay the plan's fault windows on the launcher's trace
            # (each armed server shard overlays its own copy too) and
            # mark the common arm origin.
            obs_runtime.record_fault_windows(obs, wall_plan, t0)
            obs.tracer.instant_at(
                "chaos.armed", "chaos", obs.ts_from_epoch(t0), tid=0,
                args={"time_scale": time_scale},
            )
        tasks.append(asyncio.create_task(_watchdog(), name="chaos-watchdog"))
        if kill_node_id is not None:
            tasks.append(
                asyncio.create_task(_killer(t0), name="chaos-killer")
            )

    try:
        report = await run_load(
            descriptor,
            clients=clients,
            ops=ops,
            n_keys=n_keys,
            read_ratio=read_ratio,
            value_bytes=value_bytes,
            preload=preload,
            seed=seed,
            timeout_s=timeout_s,
            cluster=cluster,
            on_start=_on_start,
        )
        # The killer must have finished (kill + restart) before quiesce.
        for task in tasks:
            if task.get_name() == "chaos-killer":
                await task
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        tasks.clear()

        # Collect per-node gate verdict tallies before disarm drops the
        # gates (the servers also fold them for later __stats__ polls).
        verdicts = await _collect_verdicts(cluster)
        await _disarm_gates(cluster)
        with maybe_span("chaos.quiesce", "chaos"):
            await cluster.engine.drain_background()
            with maybe_span("chaos.reconcile_grants", "chaos"):
                adopted = await reconcile_grants(cluster)
            with maybe_span("chaos.repair_sweep", "chaos"):
                repaired = await repair_sweep(cluster)
            await cluster.engine.drain_background()
            with maybe_span("chaos.invariant_sweep", "chaos"):
                summary = await sweep_real(cluster)
    finally:
        for task in tasks:
            task.cancel()
        await cluster.aclose()

    killed.pop("_t0_epoch", None)
    report["chaos"] = {
        "plan": plan.to_dict(),
        "time_scale": time_scale,
        "verdicts": verdicts,
        "adopted_grants": len(adopted),
        "repaired_slots": repaired,
        "sweep": summary,
        **killed,
    }
    report["digest"] = obs_runtime.build_digest(report)
    return report


async def _collect_verdicts(cluster: RealCluster) -> Dict[str, int]:
    """Sum every node's chaos-gate fate tally via the ``__stats__`` RPC."""
    ep = cluster.clients[0].ep
    totals: Dict[str, int] = {}
    for node in cluster.nodes:
        try:
            stats = await drive(ep.rpc(node, "__stats__", None))
        except Exception:  # noqa: BLE001 — verdicts are best-effort info
            continue
        for kind, count in (stats.get("chaos_verdicts") or {}).items():
            if count:
                totals[kind] = totals.get(kind, 0) + count
    return totals


__all__ = [
    "CANNED_PLAN",
    "CHAOS_CLIENT_CONFIG",
    "CHAOS_TIMEOUT_S",
    "ChaosGate",
    "DEFAULT_TIME_SCALE",
    "reconcile_grants",
    "repair_sweep",
    "run_chaos",
    "sweep_real",
]
