"""Client side of the real substrate: endpoint, connections, and driver.

The portable layers (:class:`~repro.core.client.DittoClient`, allocators,
recovery) are written as generators that ``yield`` commands to their
substrate.  On the sim substrate every command is a
:class:`~repro.sim.Timeout` executed by the discrete-event engine; here
the commands are either Timeouts (client backoff — mapped onto
``asyncio.sleep``) or *coroutine objects* produced by
:class:`RealEndpoint` verbs, awaited by :func:`drive` against live
memory-node processes.  Failures are thrown back *into* the generator at
the yield point as the very same exception types the sim raises
(:class:`~repro.rdma.verbs.VerbTimeout`,
:class:`~repro.rdma.verbs.NodeUnavailable`, ...), so the client's retry
machinery cannot tell the substrates apart.
"""

from __future__ import annotations

import asyncio
import pickle
import random
import time
from multiprocessing import shared_memory
from typing import Callable, Dict, FrozenSet, Generator, List, Optional

from ..core.retry import backoff_s
from ..memory.controller import OutOfMemoryError
from ..memory.node import MemoryAccessError
from ..obs import runtime as obs_runtime
from ..rdma.transport import VerbTransport
from ..rdma.verbs import NodeUnavailable, StaleEpoch, VerbTimeout
from ..sim import CounterSet, Timeout
from . import wire
from .journal import unregister_shm

#: Default per-verb wall-clock timeout.  Generous: loopback sockets
#: complete in microseconds; this only bounds a wedged server.
DEFAULT_TIMEOUT_S = 10.0

#: Transparent resend attempts inside one verb when the connection dies
#: mid-flight, before the failure surfaces as ``NodeUnavailable`` to the
#: portable retry layer (which applies its own, coarser backoff).
RESEND_ATTEMPTS = 4
RESEND_BACKOFF_S = 0.005
RESEND_BACKOFF_MAX_S = 0.04


class RequestNotSent(ConnectionError):
    """The connection died before the request hit the socket.

    The server cannot have executed the verb, so a resend is safe for
    *every* opcode — unlike the ambiguous "response lost" case
    (``ConnectionResetError`` after the request was written), where only
    idempotent verbs, token-deduplicated RPCs, and fate-resolved CAS may
    be retried transparently.
    """


class WallClockRuntime:
    """The real substrate's 'engine': wall-clock time + asyncio tasks.

    Presents the engine facets portable code actually touches — ``now`` /
    ``_now`` in microseconds and ``spawn(generator)`` — so
    :class:`~repro.core.client.DittoClient` timestamps and fire-and-forget
    posts work unchanged.  Time is wall-clock microseconds since runtime
    construction (the sim measures microseconds since engine start).
    """

    def __init__(self):
        self._t0 = time.perf_counter()
        self._background = set()

    @property
    def now(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    # The hot paths read engine._now directly; same clock here.
    _now = now

    def spawn(self, gen: Generator, name: str = "") -> asyncio.Task:
        """Run a verb generator as a background task (unsignalled posts)."""
        task = asyncio.get_running_loop().create_task(drive(gen), name=name)
        self._background.add(task)
        task.add_done_callback(self._background.discard)
        return task

    async def drain_background(self, timeout_s: float = 10.0) -> int:
        """Await outstanding background posts; returns how many remained."""
        pending = [t for t in self._background if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=timeout_s)
        return len(pending)


async def drive(gen: Generator, runtime: Optional[WallClockRuntime] = None):
    """Drive one verb-layer generator to completion on asyncio.

    The real-substrate counterpart of ``Engine.run_process``: Timeouts
    sleep on the wall clock, endpoint coroutines are awaited, and any
    failure is thrown into the generator at its yield point.
    """
    value = None
    error: Optional[BaseException] = None
    while True:
        try:
            if error is not None:
                exc, error = error, None
                command = gen.throw(exc)
            else:
                command = gen.send(value)
        except StopIteration as stop:
            return stop.value
        value = None
        if isinstance(command, Timeout):
            await asyncio.sleep(command.delay / 1e6)
        elif asyncio.iscoroutine(command):
            try:
                value = await command
            except Exception as exc:  # surfaced inside the generator
                error = exc
        else:
            raise RuntimeError(
                f"the real substrate cannot execute {command!r}; only "
                "Timeout and endpoint awaitables are portable (DESIGN §3.7)"
            )


class NodeHandle:
    """Client-side stand-in for a remote memory node.

    Quacks enough like :class:`~repro.memory.node.MemoryNode` for the
    portable layers — ``node_id``/``base``/``end``/``contains`` for
    address routing — plus the endpoint coordinates (host, port) and the
    heap's shared-memory name for the optional direct-read fast path.
    """

    __slots__ = ("node_id", "base", "size", "host", "port", "shm", "_seg")

    def __init__(self, node_id: int, base: int, size: int, host: str,
                 port: int, shm: str = ""):
        self.node_id = node_id
        self.base = base
        self.size = size
        self.host = host
        self.port = port
        self.shm = shm
        self._seg: Optional[shared_memory.SharedMemory] = None

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base <= addr and addr + length <= self.end

    # -- direct shared-memory reads (optional fast path) ------------------

    def attach(self) -> None:
        """Map the node's heap read-only into this process."""
        if self._seg is None and self.shm:
            self._seg = shared_memory.SharedMemory(name=self.shm)
            # Attaching registers the segment with *this* process's
            # resource tracker, whose exit sweep would unlink the live
            # server's heap.  Readers never own the segment.
            unregister_shm(self._seg)

    def read_direct(self, addr: int, length: int) -> bytes:
        off = addr - self.base
        return bytes(self._seg.buf[off : off + length])

    def detach(self) -> None:
        if self._seg is not None:
            self._seg.close()  # never unlink: the server owns the segment
            self._seg = None

    def as_dict(self) -> Dict:
        return {
            "node_id": self.node_id, "base": self.base, "size": self.size,
            "host": self.host, "port": self.port, "shm": self.shm,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "NodeHandle":
        return cls(data["node_id"], data["base"], data["size"],
                   data["host"], data["port"], data.get("shm", ""))


class Connection:
    """One multiplexed stream to a memory node.

    Requests carry per-connection ids; a single reader task resolves
    response futures in arrival order, so a client's foreground op and its
    fire-and-forget posts can share the stream with requests in flight
    concurrently.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._broken: Optional[BaseException] = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await wire.read_frame(self._reader)
                req_id, status = wire.RESP.unpack_from(frame)
                future = self._pending.pop(req_id, None)
                if future is not None and not future.done():
                    future.set_result((status, frame[wire.RESP.size :]))
        except (
            wire.IncompleteReadError,  # peer closed mid-frame / clean EOF
            ConnectionError,
            OSError,
            ValueError,  # oversized/garbled frame header
        ) as exc:
            self._fail(exc)
        except asyncio.CancelledError:
            self._fail(ConnectionResetError("connection closed"))
            raise

    def _fail(self, exc: BaseException) -> None:
        self._broken = exc
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ConnectionResetError(str(exc)))
        self._pending.clear()

    async def request(self, op: int, body: bytes, timeout_s: float):
        """Send one request; returns ``(status, payload)``.

        Raises :class:`RequestNotSent` when the connection was already
        dead before the request bytes were handed to the transport (safe
        to retry on a fresh connection, any opcode), TimeoutError on
        expiry (the late response, if any, is dropped by the reader), and
        plain ConnectionResetError when the peer died *after* the send —
        the ambiguous "response lost" case where the server may or may
        not have executed the request.
        """
        if self._broken is not None:
            raise RequestNotSent(str(self._broken))
        if self._writer.is_closing():
            raise RequestNotSent("connection is closing")
        self._next_id += 1
        req_id = self._next_id
        future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        # From the write() call on, bytes may have reached the peer even
        # if drain() or the response wait fails — everything after this
        # point is "response lost", never "not sent".
        self._writer.write(wire.request_frame(op, req_id, body))
        try:
            await self._writer.drain()
            return await asyncio.wait_for(future, timeout_s)
        except asyncio.TimeoutError:
            self._pending.pop(req_id, None)
            raise
        except (ConnectionError, OSError) as exc:
            self._pending.pop(req_id, None)
            raise ConnectionResetError(str(exc)) from exc

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        except (wire.IncompleteReadError, ConnectionError, OSError, ValueError):
            pass  # the loop's own failure surfaced through cancellation
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class NodeHealth:
    """Cluster-shared circuit breaker over memory-node liveness.

    The wall-clock analogue of the sim's instantaneous outage knowledge:
    once any endpoint observes a node refusing/resetting connections —
    or the harness reaps a dead child — every client sharing this view
    fails fast with :class:`~repro.rdma.verbs.NodeUnavailable` instead
    of burning a full verb timeout per op.  While a node is marked down,
    one probe request per :attr:`probe_interval_s` is let through
    (half-open breaker); the first success marks the node up again.
    Listeners (the cluster) are notified on every transition so they can
    steer allocators away from, and back to, the node.
    """

    def __init__(self, probe_interval_s: float = 0.1,
                 counters: Optional[CounterSet] = None):
        self.probe_interval_s = probe_interval_s
        #: node_id -> monotonic time of the last allowed probe.
        self._down: Dict[int, float] = {}
        self._listeners: List[Callable[[], None]] = []
        #: Optional shared tally: each down transition counts one
        #: ``breaker_trip`` (surfaced in load reports and digests).
        self.counters = counters

    def add_listener(self, callback: Callable[[], None]) -> None:
        self._listeners.append(callback)

    def _notify(self) -> None:
        for callback in self._listeners:
            callback()

    def down_ids(self) -> FrozenSet[int]:
        return frozenset(self._down)

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down

    def report_down(self, node_id: int) -> None:
        if node_id not in self._down:
            # First probe is due immediately: a refused connect is cheap
            # and recovery should be noticed fast.
            self._down[node_id] = -1e9
            if self.counters is not None:
                self.counters.add("breaker_trip")
            self._notify()

    def mark_up(self, node_id: int) -> None:
        if self._down.pop(node_id, None) is not None:
            self._notify()

    def allow_probe(self, node_id: int) -> bool:
        """True if the caller may issue a request to ``node_id`` now."""
        last = self._down.get(node_id)
        if last is None:
            return True
        now = time.monotonic()
        if now - last >= self.probe_interval_s:
            self._down[node_id] = now
            return True
        return False


class RealEndpoint(VerbTransport):
    """Verb transport over sockets + shared memory (one per client).

    Mirrors :class:`~repro.rdma.verbs.RdmaEndpoint` behind the
    :class:`~repro.rdma.transport.VerbTransport` contract: verbs are
    generators, fence checks happen client-side before the request is
    issued, and failures surface as the sim's exception types.  With
    ``shm_reads`` enabled, READs that hit an attached node bypass the
    socket and copy straight out of the shared-memory heap ("direct
    shared-memory access where safe": reads tolerate the benign torn-read
    race because object decoding and fingerprints already reject garbage;
    atomics always go through the node's serialization point).
    """

    __slots__ = (
        "engine", "nodes", "counters", "tracer", "fence", "consensus",
        "timeout_s", "shm_reads", "health", "_conns", "_single_node",
        "_rng", "_rpc_salt", "_rpc_seq", "_obs_proc", "_obs_hist",
    )

    def __init__(
        self,
        engine: WallClockRuntime,
        nodes: List[NodeHandle],
        counters: Optional[CounterSet] = None,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        shm_reads: bool = False,
        health: Optional[NodeHealth] = None,
    ):
        self.engine = engine
        self.nodes = list(nodes)
        self.counters = counters if counters is not None else CounterSet()
        self.tracer = None
        self.fence = None
        self.consensus = None
        self.timeout_s = timeout_s
        self.shm_reads = shm_reads
        self.health = health
        self._conns: Dict[int, Connection] = {}
        self._single_node = nodes[0] if len(nodes) == 1 else None
        self._rng = random.Random()
        # RPC dedup tokens: unique per endpoint lifetime (random salt)
        # and per call (sequence) — never reused, never colliding with
        # another client's across a shared server memo.
        self._rpc_salt = random.getrandbits(31) << 32
        self._rpc_seq = 0
        # Bound once at construction: None when observability is disarmed,
        # so the roundtrip hot path pays exactly one identity test and
        # never touches a registry (the zero-cost conformance contract).
        self._obs_proc = obs_runtime.current()
        self._obs_hist: Dict[str, object] = {}
        if shm_reads:
            for node in self.nodes:
                node.attach()

    def _next_token(self) -> int:
        self._rpc_seq += 1
        return self._rpc_salt | self._rpc_seq

    def _node_for(self, addr: int, length: int) -> NodeHandle:
        node = self._single_node
        if node is not None and node.contains(addr, length):
            return node
        for node in self.nodes:
            if node.contains(addr, length):
                return node
        raise MemoryAccessError(f"address {addr} not in any memory node")

    # -- the socket round trip --------------------------------------------

    async def _connect(self, node: NodeHandle) -> Connection:
        conn = self._conns.get(node.node_id)
        if conn is not None and conn._broken is None:
            return conn
        try:
            reader, writer = await asyncio.open_connection(
                node.host, node.port
            )
        except (ConnectionError, OSError) as exc:
            if self.health is not None:
                self.health.report_down(node.node_id)
            self.counters.add("fault_node_unavailable")
            raise NodeUnavailable(
                f"node {node.node_id} is unreachable ({exc})",
                node_id=node.node_id,
            ) from exc
        conn = Connection(reader, writer)
        self._conns[node.node_id] = conn
        return conn

    def _decode(self, node: NodeHandle, verb: str, status: int,
                payload: bytes) -> bytes:
        if status == wire.ST_OK:
            return payload
        if status == wire.ST_ACCESS:
            raise MemoryAccessError(pickle.loads(payload))
        if status == wire.ST_OOM:
            raise OutOfMemoryError(pickle.loads(payload))
        if status == wire.ST_STALE:
            message, node_id, epoch = pickle.loads(payload)
            raise StaleEpoch(message, verb=verb, node_id=node_id, epoch=epoch)
        name, message = pickle.loads(payload)
        raise RuntimeError(f"node {node.node_id} {verb} failed: "
                           f"{name}: {message}")

    async def _roundtrip(self, node: NodeHandle, verb: str, op: int,
                         body: bytes) -> bytes:
        """One verb against one node, riding through connection churn.

        A verb that *times out* surfaces as :class:`VerbTimeout`
        immediately — on this substrate a timeout means the request was
        swallowed (chaos drop) or the server is wedged, and the sim's
        drop semantics (client blocks its full timeout, then the
        portable layer decides) must hold.  A connection that *dies*
        mid-verb is retried transparently on a fresh connection within a
        small budget: unconditionally when the request never left this
        process (:class:`RequestNotSent`), and for ambiguous "response
        lost" failures only when a duplicate execution is provably
        harmless — READ/WRITE/PING are idempotent here
        (:data:`~repro.runtime.wire.RESEND_SAFE_OPS`), RPCs replay
        deduplicated under their token, FAA's only target is the history
        clock (a rare double increment shifts a heuristic, not
        correctness), and CAS resolves its fate by re-reading the target
        word.  Persistent churn marks the node down in the shared health
        view and surfaces as :class:`NodeUnavailable`, exactly like a
        sim outage window.
        """
        obs = self._obs_proc
        start_pc = time.perf_counter() if obs is not None else 0.0
        health = self.health
        probing = False
        if health is not None and health.is_down(node.node_id):
            if not health.allow_probe(node.node_id):
                self.counters.add("fault_node_unavailable")
                raise NodeUnavailable(
                    f"node {node.node_id} is marked down ({verb})",
                    verb=verb, node_id=node.node_id,
                )
            probing = True
        last_exc: Optional[BaseException] = None
        for attempt in range(1, RESEND_ATTEMPTS + 1):
            conn = await self._connect(node)
            try:
                status, payload = await conn.request(
                    op, body, self.timeout_s
                )
            except asyncio.TimeoutError:
                self.counters.add("fault_verb_timeout")
                raise VerbTimeout(
                    f"{verb} to node {node.node_id} timed out after "
                    f"{self.timeout_s}s",
                    verb=verb, node_id=node.node_id,
                ) from None
            except RequestNotSent as exc:
                last_exc = exc
            except (ConnectionError, OSError) as exc:
                if op == wire.OP_CAS:
                    return await self._resolve_cas(node, verb, body)
                last_exc = exc
                if op not in wire.RESEND_SAFE_OPS and op not in (
                    wire.OP_RPC, wire.OP_FAA
                ):
                    break  # no safe replay for this opcode (OP_SHUTDOWN)
            else:
                if probing:
                    health.mark_up(node.node_id)
                if obs is not None:
                    self._obs_record(
                        verb, (time.perf_counter() - start_pc) * 1e6
                    )
                return self._decode(node, verb, status, payload)
            if attempt < RESEND_ATTEMPTS:
                self.counters.add("conn_resend")
                await asyncio.sleep(backoff_s(
                    attempt, base_s=RESEND_BACKOFF_S,
                    ceiling_s=RESEND_BACKOFF_MAX_S,
                    jitter=0.25, rng=self._rng,
                ))
        if health is not None:
            health.report_down(node.node_id)
        self.counters.add("fault_node_unavailable")
        raise NodeUnavailable(
            f"node {node.node_id} is unreachable ({verb}: {last_exc})",
            verb=verb, node_id=node.node_id,
        ) from last_exc

    def _obs_record(self, verb: str, roundtrip_us: float) -> None:
        """Record one successful roundtrip (armed processes only).

        Histograms are bound lazily per verb string and cached, so the
        steady state is one dict hit + one record; labels use the verb
        base (``rpc:alloc_segment`` → ``rpc``) to keep cardinality flat.
        """
        hist = self._obs_hist.get(verb)
        if hist is None:
            hist = self._obs_proc.registry.histogram(
                "verb.roundtrip_us", verb=verb.split(":", 1)[0]
            )
            self._obs_hist[verb] = hist
        hist.record(roundtrip_us)

    async def _resolve_cas(self, node: NodeHandle, verb: str,
                           body: bytes) -> bytes:
        """Disambiguate a CAS whose response was lost by reading the word.

        If the word now holds ``new``, the CAS (or an equivalent one)
        applied — report success by returning ``expected`` (a CAS's
        result is the pre-swap value).  If it still holds ``expected``,
        the CAS provably has not applied yet, so resending is safe.  Any
        other value means a competitor won — return it as the ordinary
        failure result.  The known blind spot is ABA (the word left
        ``expected`` and came back) — impossible for this codebase's CAS
        targets, which are monotonic version words and pointer installs
        of never-reused fresh blocks.
        """
        self.counters.add("cas_fate_resolved")
        addr, expected, new = wire.CAS_BODY.unpack(body)
        raw = await self._roundtrip(
            node, f"{verb}:fate", wire.OP_READ, wire.READ_BODY.pack(addr, 8)
        )
        (observed,) = wire.U64.unpack(raw)
        if observed == expected and expected != new:
            return await self._roundtrip(node, verb, wire.OP_CAS, body)
        if observed == new:
            return wire.U64.pack(expected)
        return wire.U64.pack(observed)

    # -- verbs (generators, same surface as RdmaEndpoint) -----------------

    def read(self, addr: int, length: int) -> Generator:
        if self.fence is not None:
            self.fence.check_read(addr, "read", -1)
        node = self._node_for(addr, length)
        self.counters.add("rdma_read")
        if self.shm_reads and node._seg is not None:
            self.counters.add("shm_direct_read")
            return node.read_direct(addr, length)
        payload = yield self._roundtrip(
            node, "read", wire.OP_READ, wire.READ_BODY.pack(addr, length)
        )
        return payload

    def write(self, addr: int, data: bytes) -> Generator:
        if self.fence is not None:
            self.fence.check_write(addr, "write", -1)
        node = self._node_for(addr, len(data))
        self.counters.add("rdma_write")
        yield self._roundtrip(
            node, "write", wire.OP_WRITE,
            wire.WRITE_HDR.pack(addr) + bytes(data),
        )

    def cas(self, addr: int, expected: int, new: int) -> Generator:
        if self.fence is not None:
            self.fence.check_write(addr, "cas", -1)
        node = self._node_for(addr, 8)
        self.counters.add("rdma_cas")
        payload = yield self._roundtrip(
            node, "cas", wire.OP_CAS,
            wire.CAS_BODY.pack(
                addr, expected & 0xFFFFFFFFFFFFFFFF, new & 0xFFFFFFFFFFFFFFFF
            ),
        )
        return wire.U64.unpack(payload)[0]

    def faa(self, addr: int, delta: int) -> Generator:
        if self.fence is not None:
            self.fence.check_write(addr, "faa", -1)
        node = self._node_for(addr, 8)
        self.counters.add("rdma_faa")
        payload = yield self._roundtrip(
            node, "faa", wire.OP_FAA, wire.FAA_BODY.pack(addr, delta)
        )
        return wire.U64.unpack(payload)[0]

    def read_burst(self, addr: int, length: int, count: int) -> Generator:
        """No doorbell batching over sockets; serve the burst as reads."""
        data = b""
        for _ in range(max(count, 1)):
            data = yield from self.read(addr, length)
        return data

    def rpc(self, node: NodeHandle, op: str, payload=None,
            size: int = 64) -> Generator:
        """Controller RPC; ``size`` (a sim cost-model hint) is ignored."""
        if self.fence is not None:
            self.fence.check_rpc(node.node_id, "rpc")
        self.counters.add("rdma_rpc")
        # Dedup token (0 for chaos/debug control RPCs, which are
        # idempotent by construction): a resent frame carries the same
        # token, so the server replays the memoized first result instead
        # of executing twice.
        token = 0 if op.startswith("__") else self._next_token()
        raw = yield self._roundtrip(
            node, f"rpc:{op}", wire.OP_RPC, wire.pack_rpc(op, payload, token)
        )
        return pickle.loads(raw)

    # -- asynchronous (unsignalled) posts ---------------------------------

    def _post_safely(self, gen: Generator) -> Generator:
        from ..rdma.verbs import RdmaFaultError

        try:
            yield from gen
        except StaleEpoch:
            self.counters.add("fenced_post_dropped")
        except RdmaFaultError:
            self.counters.add("fault_post_dropped")

    def post_write(self, addr: int, data: bytes):
        return self.engine.spawn(
            self._post_safely(self.write(addr, data)), name="post_write"
        )

    def post_faa(self, addr: int, delta: int):
        return self.engine.spawn(
            self._post_safely(self.faa(addr, delta)), name="post_faa"
        )

    # -- lifecycle ---------------------------------------------------------

    async def aclose(self) -> None:
        for conn in self._conns.values():
            await conn.close()
        self._conns.clear()
        if self.shm_reads:
            for node in self.nodes:
                node.detach()
