"""Client side of the real substrate: endpoint, connections, and driver.

The portable layers (:class:`~repro.core.client.DittoClient`, allocators,
recovery) are written as generators that ``yield`` commands to their
substrate.  On the sim substrate every command is a
:class:`~repro.sim.Timeout` executed by the discrete-event engine; here
the commands are either Timeouts (client backoff — mapped onto
``asyncio.sleep``) or *coroutine objects* produced by
:class:`RealEndpoint` verbs, awaited by :func:`drive` against live
memory-node processes.  Failures are thrown back *into* the generator at
the yield point as the very same exception types the sim raises
(:class:`~repro.rdma.verbs.VerbTimeout`,
:class:`~repro.rdma.verbs.NodeUnavailable`, ...), so the client's retry
machinery cannot tell the substrates apart.
"""

from __future__ import annotations

import asyncio
import pickle
import time
from multiprocessing import shared_memory
from typing import Dict, Generator, List, Optional

from ..memory.controller import OutOfMemoryError
from ..memory.node import MemoryAccessError
from ..rdma.transport import VerbTransport
from ..rdma.verbs import NodeUnavailable, StaleEpoch, VerbTimeout
from ..sim import CounterSet, Timeout
from . import wire

#: Default per-verb wall-clock timeout.  Generous: loopback sockets
#: complete in microseconds; this only bounds a wedged server.
DEFAULT_TIMEOUT_S = 10.0


class WallClockRuntime:
    """The real substrate's 'engine': wall-clock time + asyncio tasks.

    Presents the engine facets portable code actually touches — ``now`` /
    ``_now`` in microseconds and ``spawn(generator)`` — so
    :class:`~repro.core.client.DittoClient` timestamps and fire-and-forget
    posts work unchanged.  Time is wall-clock microseconds since runtime
    construction (the sim measures microseconds since engine start).
    """

    def __init__(self):
        self._t0 = time.perf_counter()
        self._background = set()

    @property
    def now(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    # The hot paths read engine._now directly; same clock here.
    _now = now

    def spawn(self, gen: Generator, name: str = "") -> asyncio.Task:
        """Run a verb generator as a background task (unsignalled posts)."""
        task = asyncio.get_running_loop().create_task(drive(gen), name=name)
        self._background.add(task)
        task.add_done_callback(self._background.discard)
        return task

    async def drain_background(self, timeout_s: float = 10.0) -> int:
        """Await outstanding background posts; returns how many remained."""
        pending = [t for t in self._background if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=timeout_s)
        return len(pending)


async def drive(gen: Generator, runtime: Optional[WallClockRuntime] = None):
    """Drive one verb-layer generator to completion on asyncio.

    The real-substrate counterpart of ``Engine.run_process``: Timeouts
    sleep on the wall clock, endpoint coroutines are awaited, and any
    failure is thrown into the generator at its yield point.
    """
    value = None
    error: Optional[BaseException] = None
    while True:
        try:
            if error is not None:
                exc, error = error, None
                command = gen.throw(exc)
            else:
                command = gen.send(value)
        except StopIteration as stop:
            return stop.value
        value = None
        if isinstance(command, Timeout):
            await asyncio.sleep(command.delay / 1e6)
        elif asyncio.iscoroutine(command):
            try:
                value = await command
            except Exception as exc:  # surfaced inside the generator
                error = exc
        else:
            raise RuntimeError(
                f"the real substrate cannot execute {command!r}; only "
                "Timeout and endpoint awaitables are portable (DESIGN §3.7)"
            )


class NodeHandle:
    """Client-side stand-in for a remote memory node.

    Quacks enough like :class:`~repro.memory.node.MemoryNode` for the
    portable layers — ``node_id``/``base``/``end``/``contains`` for
    address routing — plus the endpoint coordinates (host, port) and the
    heap's shared-memory name for the optional direct-read fast path.
    """

    __slots__ = ("node_id", "base", "size", "host", "port", "shm", "_seg")

    def __init__(self, node_id: int, base: int, size: int, host: str,
                 port: int, shm: str = ""):
        self.node_id = node_id
        self.base = base
        self.size = size
        self.host = host
        self.port = port
        self.shm = shm
        self._seg: Optional[shared_memory.SharedMemory] = None

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base <= addr and addr + length <= self.end

    # -- direct shared-memory reads (optional fast path) ------------------

    def attach(self) -> None:
        """Map the node's heap read-only into this process."""
        if self._seg is None and self.shm:
            self._seg = shared_memory.SharedMemory(name=self.shm)

    def read_direct(self, addr: int, length: int) -> bytes:
        off = addr - self.base
        return bytes(self._seg.buf[off : off + length])

    def detach(self) -> None:
        if self._seg is not None:
            self._seg.close()  # never unlink: the server owns the segment
            self._seg = None

    def as_dict(self) -> Dict:
        return {
            "node_id": self.node_id, "base": self.base, "size": self.size,
            "host": self.host, "port": self.port, "shm": self.shm,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "NodeHandle":
        return cls(data["node_id"], data["base"], data["size"],
                   data["host"], data["port"], data.get("shm", ""))


class Connection:
    """One multiplexed stream to a memory node.

    Requests carry per-connection ids; a single reader task resolves
    response futures in arrival order, so a client's foreground op and its
    fire-and-forget posts can share the stream with requests in flight
    concurrently.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._broken: Optional[BaseException] = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await wire.read_frame(self._reader)
                req_id, status = wire.RESP.unpack_from(frame)
                future = self._pending.pop(req_id, None)
                if future is not None and not future.done():
                    future.set_result((status, frame[wire.RESP.size :]))
        except (wire.IncompleteReadError, ConnectionError, OSError) as exc:
            self._fail(exc)
        except asyncio.CancelledError:
            self._fail(ConnectionResetError("connection closed"))
            raise

    def _fail(self, exc: BaseException) -> None:
        self._broken = exc
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ConnectionResetError(str(exc)))
        self._pending.clear()

    async def request(self, op: int, body: bytes, timeout_s: float):
        """Send one request; returns ``(status, payload)``.

        Raises TimeoutError on expiry (the late response, if any, is
        dropped by the reader) and ConnectionResetError on a dead peer.
        """
        if self._broken is not None:
            raise ConnectionResetError(str(self._broken))
        self._next_id += 1
        req_id = self._next_id
        future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        self._writer.write(wire.request_frame(op, req_id, body))
        await self._writer.drain()
        try:
            return await asyncio.wait_for(future, timeout_s)
        except asyncio.TimeoutError:
            self._pending.pop(req_id, None)
            raise

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class RealEndpoint(VerbTransport):
    """Verb transport over sockets + shared memory (one per client).

    Mirrors :class:`~repro.rdma.verbs.RdmaEndpoint` behind the
    :class:`~repro.rdma.transport.VerbTransport` contract: verbs are
    generators, fence checks happen client-side before the request is
    issued, and failures surface as the sim's exception types.  With
    ``shm_reads`` enabled, READs that hit an attached node bypass the
    socket and copy straight out of the shared-memory heap ("direct
    shared-memory access where safe": reads tolerate the benign torn-read
    race because object decoding and fingerprints already reject garbage;
    atomics always go through the node's serialization point).
    """

    __slots__ = (
        "engine", "nodes", "counters", "tracer", "fence", "consensus",
        "timeout_s", "shm_reads", "_conns", "_single_node",
    )

    def __init__(
        self,
        engine: WallClockRuntime,
        nodes: List[NodeHandle],
        counters: Optional[CounterSet] = None,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        shm_reads: bool = False,
    ):
        self.engine = engine
        self.nodes = list(nodes)
        self.counters = counters if counters is not None else CounterSet()
        self.tracer = None
        self.fence = None
        self.consensus = None
        self.timeout_s = timeout_s
        self.shm_reads = shm_reads
        self._conns: Dict[int, Connection] = {}
        self._single_node = nodes[0] if len(nodes) == 1 else None
        if shm_reads:
            for node in self.nodes:
                node.attach()

    def _node_for(self, addr: int, length: int) -> NodeHandle:
        node = self._single_node
        if node is not None and node.contains(addr, length):
            return node
        for node in self.nodes:
            if node.contains(addr, length):
                return node
        raise MemoryAccessError(f"address {addr} not in any memory node")

    # -- the socket round trip --------------------------------------------

    async def _connect(self, node: NodeHandle) -> Connection:
        conn = self._conns.get(node.node_id)
        if conn is not None and conn._broken is None:
            return conn
        try:
            reader, writer = await asyncio.open_connection(
                node.host, node.port
            )
        except (ConnectionError, OSError) as exc:
            raise NodeUnavailable(
                f"node {node.node_id} is unreachable ({exc})",
                node_id=node.node_id,
            ) from exc
        conn = Connection(reader, writer)
        self._conns[node.node_id] = conn
        return conn

    async def _roundtrip(self, node: NodeHandle, verb: str, op: int,
                         body: bytes) -> bytes:
        conn = await self._connect(node)
        try:
            status, payload = await conn.request(op, body, self.timeout_s)
        except asyncio.TimeoutError:
            self.counters.add("fault_verb_timeout")
            raise VerbTimeout(
                f"{verb} to node {node.node_id} timed out after "
                f"{self.timeout_s}s",
                verb=verb, node_id=node.node_id,
            ) from None
        except (ConnectionError, OSError) as exc:
            self.counters.add("fault_node_unavailable")
            raise NodeUnavailable(
                f"node {node.node_id} is unreachable ({verb}: {exc})",
                verb=verb, node_id=node.node_id,
            ) from exc
        if status == wire.ST_OK:
            return payload
        if status == wire.ST_ACCESS:
            raise MemoryAccessError(pickle.loads(payload))
        if status == wire.ST_OOM:
            raise OutOfMemoryError(pickle.loads(payload))
        if status == wire.ST_STALE:
            message, node_id, epoch = pickle.loads(payload)
            raise StaleEpoch(message, verb=verb, node_id=node_id, epoch=epoch)
        name, message = pickle.loads(payload)
        raise RuntimeError(f"node {node.node_id} {verb} failed: "
                           f"{name}: {message}")

    # -- verbs (generators, same surface as RdmaEndpoint) -----------------

    def read(self, addr: int, length: int) -> Generator:
        if self.fence is not None:
            self.fence.check_read(addr, "read", -1)
        node = self._node_for(addr, length)
        self.counters.add("rdma_read")
        if self.shm_reads and node._seg is not None:
            self.counters.add("shm_direct_read")
            return node.read_direct(addr, length)
        payload = yield self._roundtrip(
            node, "read", wire.OP_READ, wire.READ_BODY.pack(addr, length)
        )
        return payload

    def write(self, addr: int, data: bytes) -> Generator:
        if self.fence is not None:
            self.fence.check_write(addr, "write", -1)
        node = self._node_for(addr, len(data))
        self.counters.add("rdma_write")
        yield self._roundtrip(
            node, "write", wire.OP_WRITE,
            wire.WRITE_HDR.pack(addr) + bytes(data),
        )

    def cas(self, addr: int, expected: int, new: int) -> Generator:
        if self.fence is not None:
            self.fence.check_write(addr, "cas", -1)
        node = self._node_for(addr, 8)
        self.counters.add("rdma_cas")
        payload = yield self._roundtrip(
            node, "cas", wire.OP_CAS,
            wire.CAS_BODY.pack(
                addr, expected & 0xFFFFFFFFFFFFFFFF, new & 0xFFFFFFFFFFFFFFFF
            ),
        )
        return wire.U64.unpack(payload)[0]

    def faa(self, addr: int, delta: int) -> Generator:
        if self.fence is not None:
            self.fence.check_write(addr, "faa", -1)
        node = self._node_for(addr, 8)
        self.counters.add("rdma_faa")
        payload = yield self._roundtrip(
            node, "faa", wire.OP_FAA, wire.FAA_BODY.pack(addr, delta)
        )
        return wire.U64.unpack(payload)[0]

    def read_burst(self, addr: int, length: int, count: int) -> Generator:
        """No doorbell batching over sockets; serve the burst as reads."""
        data = b""
        for _ in range(max(count, 1)):
            data = yield from self.read(addr, length)
        return data

    def rpc(self, node: NodeHandle, op: str, payload=None,
            size: int = 64) -> Generator:
        """Controller RPC; ``size`` (a sim cost-model hint) is ignored."""
        if self.fence is not None:
            self.fence.check_rpc(node.node_id, "rpc")
        self.counters.add("rdma_rpc")
        raw = yield self._roundtrip(
            node, f"rpc:{op}", wire.OP_RPC, wire.pack_rpc(op, payload)
        )
        return pickle.loads(raw)

    # -- asynchronous (unsignalled) posts ---------------------------------

    def _post_safely(self, gen: Generator) -> Generator:
        from ..rdma.verbs import RdmaFaultError

        try:
            yield from gen
        except StaleEpoch:
            self.counters.add("fenced_post_dropped")
        except RdmaFaultError:
            self.counters.add("fault_post_dropped")

    def post_write(self, addr: int, data: bytes):
        return self.engine.spawn(
            self._post_safely(self.write(addr, data)), name="post_write"
        )

    def post_faa(self, addr: int, delta: int):
        return self.engine.spawn(
            self._post_safely(self.faa(addr, delta)), name="post_faa"
        )

    # -- lifecycle ---------------------------------------------------------

    async def aclose(self) -> None:
        for conn in self._conns.values():
            await conn.close()
        self._conns.clear()
        if self.shm_reads:
            for node in self.nodes:
                node.detach()
