"""Client-side deployment façade for the real substrate.

:class:`RealCluster` plays the role :class:`~repro.core.cache.DittoCluster`
plays on the sim substrate: it provides everything a
:class:`~repro.core.client.DittoClient` reads from its cluster — layout,
config, budget, node handles, counters — and implements the
``make_endpoint`` seam with :class:`~repro.runtime.client.RealEndpoint`,
so the *identical* client code paths (SFHT lookups, two-level allocation,
sampled adaptive eviction, lazy weight updates) execute against live
memory-node processes.

A RealCluster is built from a *descriptor*: the construction scalars plus
the node endpoints announced by the launcher
(:class:`~repro.runtime.harness.RealClusterHarness`).  Geometry is
recomputed locally through :func:`repro.core.geometry.plan_cluster`, the
same arithmetic the launcher used to size the heaps, so client and server
agree on every address without shipping the layout over the wire.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.client import DittoClient
from ..core.config import DittoConfig
from ..core.geometry import plan_cluster
from ..memory.allocator import MemoryBudget
from ..obs.metrics import MetricsRegistry
from ..sim import CounterSet
from .client import NodeHandle, NodeHealth, RealEndpoint, WallClockRuntime


class _RegistryShim:
    """Quacks like an Observability hub for the one facet clients use
    (``obs.registry``); histograms fill with wall-clock microseconds."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()


class RealCluster:
    """A Ditto deployment over live processes, from the client's seat."""

    def __init__(
        self,
        descriptor: Dict,
        runtime: Optional[WallClockRuntime] = None,
        registry: Optional[MetricsRegistry] = None,
        timeout_s: float = 10.0,
        shm_reads: bool = False,
    ):
        self.descriptor = descriptor
        config_kwargs = dict(descriptor.get("config", {}))
        if "policies" in config_kwargs:
            config_kwargs["policies"] = tuple(config_kwargs["policies"])
        self.config = DittoConfig(**config_kwargs)
        if not (self.config.use_sfht and self.config.use_lwh):
            # The ablation paths read node memory in-process (no verb
            # layer); they exist to probe the paper's design points on the
            # sim substrate and are not portable.
            raise ValueError(
                "the real substrate requires use_sfht and use_lwh "
                "(ablation configs are sim-only)"
            )
        plan = plan_cluster(
            descriptor["capacity_objects"],
            descriptor["object_bytes"],
            descriptor["num_clients"],
            config=self.config,
            num_memory_nodes=len(descriptor["nodes"]),
            segment_bytes=descriptor["segment_bytes"],
            max_capacity_objects=descriptor.get("max_capacity_objects"),
        )
        self.plan = plan
        self.layout = plan.layout
        self.ext_fields = plan.ext_fields
        self.history_size = plan.history_size
        self.segment_bytes = plan.segment_bytes
        self.block_bytes_per_object = plan.block_bytes_per_object
        #: The budget is client-local admission control, exactly as on the
        #: sim substrate where it models the out-of-band quota service.
        self.budget = MemoryBudget(plan.budget_bytes)
        self.remote_history = None

        self.engine = runtime if runtime is not None else WallClockRuntime()
        self.counters = CounterSet()
        self.obs = _RegistryShim(registry)
        self.tracer = None
        self.fence = None
        self.consensus = None
        self.fault_injector = None
        self.membership = None
        self.timeout_s = timeout_s
        self.shm_reads = shm_reads
        #: One liveness view shared by every endpoint: the first client
        #: (or the harness reaper) to notice a dead node spares all the
        #: others their timeouts, and recovery steers allocation back.
        self.health = NodeHealth(counters=self.counters)
        self.health.add_listener(self._on_health_change)

        self.nodes: List[NodeHandle] = [
            NodeHandle.from_dict(entry) for entry in descriptor["nodes"]
        ]
        expected = {
            (node_id, base, size) for node_id, base, size in plan.node_ranges
        }
        actual = {(n.node_id, n.base, n.size) for n in self.nodes}
        if expected != actual:
            raise ValueError(
                f"descriptor node ranges {sorted(actual)} do not match the "
                f"geometry plan {sorted(expected)}; launcher and client "
                "disagree on construction parameters"
            )
        self.node = self.nodes[0]
        self.seed = descriptor.get("seed", 0)
        self.object_count = 0
        self.clients: List[DittoClient] = []
        self._next_client_id = 0

    # -- the substrate seam ------------------------------------------------

    def make_endpoint(self, client) -> RealEndpoint:
        return RealEndpoint(
            self.engine,
            self.nodes,
            counters=self.counters,
            timeout_s=self.timeout_s,
            shm_reads=self.shm_reads,
            health=self.health,
        )

    def _on_health_change(self) -> None:
        """Steer every client's striped allocator off down nodes.

        New blocks land on live nodes while a node is out (its cached
        objects surface as clean misses and get re-admitted elsewhere);
        when the node returns — outage window over, or restarted and
        adopted — allocation resumes across the full stripe.  If *every*
        node is down there is nothing to steer to, so leave the active
        set alone and let verbs fail on their own.
        """
        down = self.health.down_ids()
        active = [n.node_id for n in self.nodes if n.node_id not in down]
        if not active:
            return
        for client in self.clients:
            client.alloc.set_active(active)

    def add_clients(self, n: int) -> List[DittoClient]:
        """Join ``n`` client threads, each with its own endpoint (and
        therefore its own socket per memory node it touches)."""
        new = []
        for _ in range(n):
            client = DittoClient(
                self, client_id=self._next_client_id, seed=self.seed
            )
            self._next_client_id += 1
            new.append(client)
        self.clients.extend(new)
        return new

    async def aclose(self) -> None:
        """Drain background posts and close every client connection."""
        await self.engine.drain_background()
        for client in self.clients:
            await client.ep.aclose()

    # -- aggregated statistics (mirrors DittoCluster) ----------------------

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.clients)

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.clients)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
            "objects": self.object_count,
            "evictions": sum(c.evictions for c in self.clients),
            "regrets": sum(c.regrets for c in self.clients),
            "used_bytes": self.budget.used_bytes,
            "limit_bytes": self.budget.limit_bytes,
            "wall_time_us": self.engine.now,
            **{k: float(v) for k, v in self.counters.as_dict().items()},
        }
