"""Launch and reap a real-substrate cluster: N memory-node processes.

:class:`RealClusterHarness` is the deployment counterpart of
:class:`~repro.core.cache.DittoCluster.__init__`: it sizes the cluster
with the shared geometry plan (:mod:`repro.core.geometry`), spawns one
``python -m repro.runtime.server`` process per memory node (node 0 with
the reserve for fixed structures plus the global-weights and membership
handlers), collects each server's ready line for its port and shared-
memory name, and produces the *descriptor* dict a
:class:`~repro.runtime.cluster.RealCluster` (in this or any other
process) builds from.

Shutdown is part of the contract, not an afterthought: ``shutdown()``
sends every node a clean OP_SHUTDOWN, escalates to SIGTERM/SIGKILL on
stragglers, and :meth:`leak_report` verifies zero leftover child
processes and zero leftover shared-memory segments — the assertion the CI
smoke job runs.

Chaos additions: :meth:`kill_node` SIGKILLs one memory node mid-run (its
shared-memory heap survives on purpose), :meth:`restart_node` respawns it
on the *same port* with ``--adopt`` so it rebuilds grant state from the
surviving journal and existing clients reconnect transparently, and
:meth:`reap` reports children that died since the last call so the
cluster's health view can fail clients over immediately instead of every
op burning its full timeout.  :meth:`unlink_leaked` is the last-resort
sweep for segments a crashed-and-never-restarted node left behind — run
it *after* :meth:`leak_report`, which is the assertion.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import subprocess
import sys
import time
import uuid
from typing import Dict, List, Optional, Set, Tuple

from ..core.config import DittoConfig
from ..core.geometry import plan_cluster
from ..obs.runtime import maybe_span
from . import wire
from .server import shm_name

_READY_PREFIX = "DITTO-NODE "
_READY_TIMEOUT_S = 30.0


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = b""
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            raise ConnectionResetError("peer closed during control RPC")
        chunks += chunk
    return chunks


def control_rpc(host: str, port: int, op: str, payload=None,
                timeout_s: float = 5.0):
    """One synchronous control RPC over a throwaway socket.

    The out-of-band channel for anything that must not ride the async
    client stack: harness chaos arm/stop, and ``repro.obs.top`` polling
    ``__stats__`` on a cluster it did not launch.
    """
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.settimeout(timeout_s)
        sock.sendall(wire.request_frame(
            wire.OP_RPC, 1, wire.pack_rpc(op, payload)
        ))
        header = _recv_exact(sock, wire.HEADER.size)
        (length,) = wire.HEADER.unpack(header)
        frame = _recv_exact(sock, length)
        _req_id, status = wire.RESP.unpack_from(frame)
        body = frame[wire.RESP.size:]
        if status != wire.ST_OK:
            raise RuntimeError(
                f"control RPC {op!r} failed with status {status}: "
                f"{pickle.loads(body)}"
            )
        return pickle.loads(body)


def _shm_dir() -> str:
    return "/dev/shm" if os.path.isdir("/dev/shm") else ""


class RealClusterHarness:
    """Owns the server processes of one real-substrate deployment."""

    def __init__(
        self,
        capacity_objects: int = 4096,
        object_bytes: int = 256,
        num_clients: int = 16,
        num_memory_nodes: int = 1,
        segment_bytes: int = 256 * 1024,
        max_capacity_objects: Optional[int] = None,
        seed: int = 0,
        run_id: Optional[str] = None,
        **config_kwargs,
    ):
        self.config = DittoConfig(**config_kwargs)
        self.plan = plan_cluster(
            capacity_objects, object_bytes, num_clients,
            config=self.config, num_memory_nodes=num_memory_nodes,
            segment_bytes=segment_bytes,
            max_capacity_objects=max_capacity_objects,
        )
        self.seed = seed
        self.run_id = run_id or uuid.uuid4().hex[:8]
        self.num_clients = num_clients
        #: Every child ever spawned (restarts append); dead entries stay
        #: for leak accounting.
        self.procs: List[subprocess.Popen] = []
        self.node_entries: List[Dict] = []
        self._proc_by_node: Dict[int, subprocess.Popen] = {}
        self._reaped: Set[int] = set()
        self._config_kwargs = dict(config_kwargs)
        self._shut_down = False

    # -- launch ------------------------------------------------------------

    def _spawn(self, node_id: int, base: int, size: int,
               extra_argv: List[str]) -> subprocess.Popen:
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        )))
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        argv = [
            sys.executable, "-m", "repro.runtime.server",
            "--node-id", str(node_id),
            "--base", str(base),
            "--size", str(size),
            "--run-id", self.run_id,
            *extra_argv,
        ]
        proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        self.procs.append(proc)
        self._proc_by_node[node_id] = proc
        return proc

    def _node0_argv(self) -> List[str]:
        membership = ",".join(
            str(node_id) for node_id, _b, _s in self.plan.node_ranges
        )
        return [
            "--reserve", str(self.plan.reserve),
            "--experts", str(len(self.config.policies)),
            "--learning-rate", str(self.config.learning_rate),
            "--membership", membership,
        ]

    def launch(self, timeout_s: float = _READY_TIMEOUT_S) -> Dict:
        """Spawn the node servers; returns the cluster descriptor."""
        if self.procs:
            raise RuntimeError("harness already launched")
        with maybe_span("harness.launch", "runtime", lane="harness",
                        args={"nodes": len(self.plan.node_ranges)}):
            try:
                spawned = []
                for node_id, base, size in self.plan.node_ranges:
                    extra = self._node0_argv() if node_id == 0 else []
                    spawned.append(self._spawn(node_id, base, size, extra))
                for proc, (node_id, base, size) in zip(
                    spawned, self.plan.node_ranges
                ):
                    entry = self._await_ready(proc, node_id, timeout_s)
                    self.node_entries.append(entry)
            except Exception:
                self.shutdown()
                raise
        return self.descriptor()

    def _await_ready(self, proc, node_id: int, timeout_s: float) -> Dict:
        deadline = time.monotonic() + timeout_s
        line = ""
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if line.startswith(_READY_PREFIX):
                break
            if proc.poll() is not None:
                stderr = proc.stderr.read()
                raise RuntimeError(
                    f"memory-node {node_id} exited with "
                    f"{proc.returncode} before readiness:\n{stderr}"
                )
        else:
            raise TimeoutError(f"memory-node {node_id} never became ready")
        fields = dict(
            part.split("=", 1) for part in line[len(_READY_PREFIX):].split()
        )
        return {
            "node_id": int(fields["node_id"]),
            "base": int(fields["base"]),
            "size": int(fields["size"]),
            "host": "127.0.0.1",
            "port": int(fields["port"]),
            "shm": fields["shm"],
        }

    def descriptor(self) -> Dict:
        """Everything a client process needs to join this cluster."""
        return {
            "run_id": self.run_id,
            "capacity_objects": self.plan.capacity_objects,
            "max_capacity_objects": self.plan.max_capacity_objects,
            "object_bytes": self.plan.object_bytes,
            "segment_bytes": self.plan.segment_bytes,
            "num_clients": self.num_clients,
            "seed": self.seed,
            "config": {
                "policies": list(self.config.policies),
                **self._config_kwargs,
            },
            "nodes": list(self.node_entries),
        }

    def write_descriptor(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.descriptor(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    # -- chaos: kill, reap, restart-and-adopt ------------------------------

    def entry_for(self, node_id: int) -> Dict:
        for entry in self.node_entries:
            if entry["node_id"] == node_id:
                return entry
        raise KeyError(f"no launched node {node_id}")

    def kill_node(self, node_id: int) -> bool:
        """SIGKILL one memory node — no drain, no unlink; the shared-
        memory heap (data + grant journal) survives for adoption.
        Returns False if the child was already gone."""
        proc = self._proc_by_node.get(node_id)
        if proc is None or proc.poll() is not None:
            return False
        with maybe_span("harness.kill", "chaos", lane="harness",
                        args={"node_id": node_id}):
            proc.kill()
            proc.wait()
        return True

    def reap(self) -> List[int]:
        """Node ids whose child died since the last call (intentional
        kills included).  Poll this to feed the cluster's health view so
        clients fail over immediately instead of burning timeouts."""
        dead = []
        for node_id, proc in self._proc_by_node.items():
            if proc.poll() is not None and node_id not in self._reaped:
                self._reaped.add(node_id)
                dead.append(node_id)
        return dead

    def restart_node(
        self,
        node_id: int,
        timeout_s: float = _READY_TIMEOUT_S,
        chaos: Optional[Tuple[Dict, float]] = None,
    ) -> Dict:
        """Respawn a dead node against its surviving heap.

        The replacement binds the *same port* (existing clients simply
        reconnect) and runs ``--adopt``: it attaches the surviving
        shared-memory segment and rebuilds segment-grant state from the
        journal instead of formatting a fresh heap.  ``chaos`` re-arms
        the node's fault gate with ``(wall-plan dict, t0 epoch)`` so a
        mid-plan restart keeps injecting on the common schedule.
        """
        old = self._proc_by_node.get(node_id)
        if old is not None and old.poll() is None:
            raise RuntimeError(f"node {node_id} is still running")
        entry = self.entry_for(node_id)
        _nid, base, size = next(
            r for r in self.plan.node_ranges if r[0] == node_id
        )
        extra = ["--port", str(entry["port"]), "--adopt"]
        if node_id == 0:
            extra += self._node0_argv()
        with maybe_span("harness.restart_adopt", "chaos", lane="harness",
                        args={"node_id": node_id}):
            proc = self._spawn(node_id, base, size, extra)
            reborn = self._await_ready(proc, node_id, timeout_s)
            if (reborn["port"], reborn["shm"]) != (
                entry["port"], entry["shm"]
            ):
                raise RuntimeError(
                    f"restarted node {node_id} came back as {reborn}, "
                    f"expected endpoint {entry}"
                )
            self._reaped.discard(node_id)
            if chaos is not None:
                plan_dict, t0 = chaos
                self.raw_rpc(entry, "__chaos_load__", (plan_dict, t0))
        return reborn

    def raw_rpc(self, entry: Dict, op: str, payload,
                timeout_s: float = 5.0):
        """One synchronous control RPC against a launched node."""
        return control_rpc(
            entry["host"], entry["port"], op, payload, timeout_s
        )

    # -- shutdown and leak accounting --------------------------------------

    def _send_shutdown(self, entry: Dict, timeout_s: float = 5.0) -> bool:
        try:
            with socket.create_connection(
                (entry["host"], entry["port"]), timeout=timeout_s
            ) as sock:
                sock.settimeout(timeout_s)
                sock.sendall(wire.request_frame(wire.OP_SHUTDOWN, 1))
                header = sock.recv(wire.HEADER.size)
                return len(header) == wire.HEADER.size
        except OSError:
            return False

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Stop every node: clean request first, signals for stragglers."""
        if self._shut_down:
            return
        self._shut_down = True
        with maybe_span("harness.shutdown", "runtime", lane="harness",
                        args={"nodes": len(self.node_entries)}):
            for entry in self.node_entries:
                self._send_shutdown(entry)
            deadline = time.monotonic() + timeout_s
            for proc in self.procs:
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    try:
                        proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
            for proc in self.procs:
                # Release the pipe fds now rather than at GC time.
                if proc.stdout:
                    proc.stdout.close()
                if proc.stderr:
                    proc.stderr.close()

    def leak_report(self) -> Dict:
        """Post-shutdown accounting: processes and shm segments left over."""
        live = [proc.pid for proc in self.procs if proc.poll() is None]
        leaked_shm = []
        shm_dir = _shm_dir()
        for node_id, _base, _size in self.plan.node_ranges:
            name = shm_name(self.run_id, node_id)
            if shm_dir and os.path.exists(os.path.join(shm_dir, name)):
                leaked_shm.append(name)
        return {
            "live_processes": live,
            "leaked_shm": leaked_shm,
            "clean": not live and not leaked_shm,
        }

    def unlink_leaked(self) -> List[str]:
        """Remove any surviving ``ditto-*`` segments of this run.

        Cleanup of last resort for a node that was SIGKILLed and never
        restarted (its heap is intentionally left behind for adoption).
        Call *after* :meth:`leak_report` — this is the mop, that is the
        assertion."""
        removed = []
        shm_dir = _shm_dir()
        if not shm_dir:
            return removed
        for node_id, _base, _size in self.plan.node_ranges:
            path = os.path.join(shm_dir, shm_name(self.run_id, node_id))
            try:
                os.unlink(path)
            except FileNotFoundError:
                continue
            removed.append(os.path.basename(path))
        return removed

    def __enter__(self) -> "RealClusterHarness":
        self.launch()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
