"""Durable grant journal: segment-management state that survives SIGKILL.

The real-substrate memory node keeps its heap in a
``multiprocessing.shared_memory`` segment, so the *data* plane already
survives a server crash — but the control plane
(:class:`~repro.memory.controller.SegmentState`: bump pointer, free
lists, the per-owner grant log) lived only in the process.  A crashed
node would come back with its heap intact and no idea which bytes it had
granted, making the memory-accounting sweep (and crash-recovery grant
reconciliation) impossible.

The journal fixes that by appending a small write-through log to the
tail of the same shared-memory segment, past the byte range clients can
address::

    [0, size)                 the node's heap (client-addressable)
    [size, size + JOURNAL)    header + fixed 32-byte grant entries

One entry per granted segment: ``(addr u64, size u64, owner i64,
token u64)``.  Entries are written by the single-threaded server with
``size`` stored *last*, so a SIGKILL at any instant leaves either a
complete entry or one with ``size == 0`` that rebuild ignores; the
header's ``count``/``next_free`` words are updated after the entry, and
rebuild takes ``max(header.next_free, max entry end)`` so a crash
between the stores never loses or double-grants a byte (at worst one
*unacknowledged* grant's address range is leaked until the segment is
unlinked).  A freed segment flips its entry's owner to
:data:`FREE_OWNER` in place (one 8-byte store); reuse of a freed range
rewrites token then owner.

``token`` persists the RPC dedup token of the alloc (see
:mod:`repro.runtime.wire`), so a client resending ``alloc_segment``
across a server crash/restart gets its original grant back instead of a
duplicate.
"""

from __future__ import annotations

import struct
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Dict, Optional, Tuple

from ..memory.controller import OutOfMemoryError, SegmentState, _round_up
from ..memory.node import BLOCK_SIZE


def unregister_shm(shm: shared_memory.SharedMemory) -> None:
    """Opt this process's resource tracker out of managing ``shm``.

    ``SharedMemory`` registers every segment it creates *or attaches*
    with the resource tracker, whose atexit sweep unlinks them.  For
    Ditto heaps that is actively wrong twice over: the tracker survives
    a SIGKILLed server and would destroy the very segment
    restart-and-adopt rides on, and a client process that merely
    attached for direct reads would unlink a live server's heap on
    exit.  Segment ownership is explicit in
    :class:`repro.runtime.server.NodeServer` instead, with the harness
    force-unlinking any survivor at teardown.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker may be absent/foreign
        pass

MAGIC = 0x4449_5454_4F4A_4E4C  # "DITTOJNL"
VERSION = 1

HEADER = struct.Struct("<QQQQ")          # magic, version|capacity, count, next_free
ENTRY = struct.Struct("<QQqQ")           # addr, size, owner, token
ENTRY_SIZE = ENTRY.size

#: Entries this many grants can be journalled per node; segment grants are
#: coarse (256 KiB default), so 4096 covers heaps far larger than any test
#: or CI deployment.  A full journal surfaces as OutOfMemoryError.
DEFAULT_CAPACITY = 4096

#: Owner sentinel marking a freed (recyclable) segment entry.
FREE_OWNER = -(1 << 40)


def journal_bytes(capacity: int = DEFAULT_CAPACITY) -> int:
    """Shared-memory bytes to reserve past the heap for the journal."""
    return HEADER.size + capacity * ENTRY_SIZE


class GrantJournal:
    """The on-shm log itself: fixed entries over a writable memoryview."""

    def __init__(self, buf: memoryview, capacity: int = DEFAULT_CAPACITY):
        if len(buf) < journal_bytes(capacity):
            raise ValueError(
                f"journal buffer holds {len(buf)} bytes, need "
                f"{journal_bytes(capacity)}"
            )
        self._buf = buf
        self.capacity = capacity
        self.count = 0
        #: addr -> entry index, for in-place free/reuse/reassign updates.
        self._index: Dict[int, int] = {}
        #: Optional observability hook, invoked once per journalled
        #: mutation (alloc/free/reassign).  None when obs is disarmed —
        #: the write path then pays a single attribute test.
        self.on_record: Optional[Callable[[], None]] = None

    # -- raw field stores (each a single aligned 8-byte write) -------------

    def _entry_off(self, index: int) -> int:
        return HEADER.size + index * ENTRY_SIZE

    def _store_u64(self, off: int, value: int) -> None:
        self._buf[off : off + 8] = struct.pack("<Q", value)

    def _store_i64(self, off: int, value: int) -> None:
        self._buf[off : off + 8] = struct.pack("<q", value)

    def _entry(self, index: int) -> Tuple[int, int, int, int]:
        off = self._entry_off(index)
        return ENTRY.unpack_from(self._buf, off)

    # -- lifecycle ----------------------------------------------------------

    def initialize(self, next_free: int) -> None:
        """Format a fresh journal (zero entries)."""
        self._buf[: journal_bytes(self.capacity)] = bytes(
            journal_bytes(self.capacity)
        )
        self._store_u64(0, MAGIC)
        self._store_u64(8, (VERSION << 32) | self.capacity)
        self._store_u64(16, 0)
        self._store_u64(24, next_free)
        self.count = 0
        self._index = {}

    @classmethod
    def attach(cls, buf: memoryview) -> "GrantJournal":
        """Bind to an existing journal; raises ValueError on a bad header."""
        magic, vercap, count, _next_free = HEADER.unpack_from(buf, 0)
        if magic != MAGIC:
            raise ValueError(
                f"no grant journal at this offset (magic {magic:#x})"
            )
        version, capacity = vercap >> 32, vercap & 0xFFFFFFFF
        if version != VERSION:
            raise ValueError(f"grant journal version {version} != {VERSION}")
        journal = cls(buf, capacity)
        journal.count = count
        for index in range(count):
            addr, size, _owner, _token = journal._entry(index)
            if size != 0:
                journal._index[addr] = index
        return journal

    @property
    def next_free(self) -> int:
        return HEADER.unpack_from(self._buf, 0)[3]

    # -- mutations (write-through; called by DurableSegmentState) ----------

    def record_alloc(self, addr: int, size: int, owner: int,
                     token: int, next_free: int) -> None:
        if self.on_record is not None:
            self.on_record()
        index = self._index.get(addr)
        if index is not None:
            # Reuse of a freed range: same addr/size, new owner + token.
            off = self._entry_off(index)
            self._store_u64(off + 24, token)
            self._store_i64(off + 16, owner)
            return
        if self.count >= self.capacity:
            raise OutOfMemoryError(
                f"grant journal full ({self.capacity} entries)"
            )
        index = self.count
        off = self._entry_off(index)
        self._store_u64(off, addr)
        self._store_i64(off + 16, owner)
        self._store_u64(off + 24, token)
        self._store_u64(off + 8, size)        # size last: validity gate
        self._store_u64(24, next_free)
        self._store_u64(16, index + 1)        # count last: publish the entry
        self.count = index + 1
        self._index[addr] = index

    def record_free(self, addr: int) -> None:
        if self.on_record is not None:
            self.on_record()
        index = self._index.get(addr)
        if index is None:
            return
        self._store_i64(self._entry_off(index) + 16, FREE_OWNER)

    def record_reassign(self, from_owner: int, to_owner: int) -> None:
        if self.on_record is not None:
            self.on_record()
        for index in range(self.count):
            off = self._entry_off(index)
            _addr, size, owner, _token = self._entry(index)
            if size != 0 and owner == from_owner:
                self._store_i64(off + 16, to_owner)

    # -- rebuild ------------------------------------------------------------

    def entries(self):
        for index in range(self.count):
            addr, size, owner, token = self._entry(index)
            if size != 0:
                yield addr, size, owner, token


class DurableSegmentState(SegmentState):
    """A :class:`SegmentState` mirrored write-through into a grant journal.

    The in-memory state stays authoritative on the serving path (same
    code, same complexity); every state change additionally lands in the
    journal before the RPC response is sent, so :meth:`adopt` can rebuild
    an equivalent state machine from the surviving shared memory after a
    SIGKILL.
    """

    __slots__ = ("journal", "token_grants")

    def __init__(self, node_id: int, start: int, end: int,
                 journal: GrantJournal, fresh: bool = True):
        super().__init__(node_id, start, end)
        self.journal = journal
        #: Durable alloc dedup: token -> granted address.
        self.token_grants: Dict[int, int] = {}
        if fresh:
            journal.initialize(start)

    @classmethod
    def adopt(cls, node_id: int, start: int, end: int,
              buf: memoryview) -> "DurableSegmentState":
        """Rebuild from a surviving journal (crash/restart adoption)."""
        journal = GrantJournal.attach(buf)
        state = cls(node_id, start, end, journal, fresh=False)
        high_water = journal.next_free
        for addr, size, owner, token in journal.entries():
            high_water = max(high_water, addr + size)
            if owner == FREE_OWNER:
                state.free_segments.setdefault(size, []).append(addr)
            else:
                state.grants.setdefault(owner, []).append((addr, size))
                if token:
                    state.token_grants[token] = addr
        state.next_free = high_water
        return state

    # -- journalled commands ------------------------------------------------

    def alloc(self, size: int, owner: int, token: int = 0) -> int:
        if token:
            addr = self.token_grants.get(token)
            if addr is not None:
                return addr  # resent alloc: hand back the original grant
        rounded = _round_up(size, BLOCK_SIZE)
        addr = super().alloc(size, owner)
        self.journal.record_alloc(addr, rounded, owner, token, self.next_free)
        if token:
            self.token_grants[token] = addr
        return addr

    def free(self, addr: int, size: int) -> None:
        super().free(addr, size)
        self.journal.record_free(addr)

    def reassign(self, from_owner: int, to_owner: int) -> int:
        moved = super().reassign(from_owner, to_owner)
        if moved:
            self.journal.record_reassign(from_owner, to_owner)
        return moved


__all__ = [
    "DEFAULT_CAPACITY",
    "DurableSegmentState",
    "FREE_OWNER",
    "GrantJournal",
    "journal_bytes",
    "unregister_shm",
]
