"""Concurrent load generator for the real substrate.

Drives a live cluster (launched by ``python -m repro.serve`` or
:class:`~repro.runtime.harness.RealClusterHarness`) with any number of
concurrent client connections: every logical client is a full
:class:`~repro.core.client.DittoClient` with its own
:class:`~repro.runtime.client.RealEndpoint` (and therefore its own socket
per memory node), running as one asyncio task in a closed loop over a
Zipfian key stream.  Per-op latencies land in ``repro.obs`` streaming
histograms (the same ``op.latency`` metric the sim records, here in
wall-clock microseconds) plus exact
:class:`~repro.sim.stats.LatencyStats` for the report percentiles.

Scales to thousands of clients in one process: connections are plain
asyncio streams (two file descriptors per client per touched node) and
the fd soft limit is raised toward the hard limit on entry.

CLI::

    python -m repro.runtime.loadgen --descriptor cluster.json \\
        --clients 1000 --ops 10000
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Dict, Optional

from ..core.client import CacheOperationError
from ..obs import runtime as obs_runtime
from ..obs.metrics import MetricsRegistry
from ..rdma.verbs import RdmaFaultError
from ..sim.stats import LatencyStats
from ..workloads import ZipfianGenerator
from .client import WallClockRuntime, drive
from .cluster import RealCluster


def raise_fd_limit(want: int) -> int:
    """Best-effort bump of the fd soft limit (thousands of sockets)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return want
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    target = min(max(want, soft), hard)
    if target > soft:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (target, hard))
        except (ValueError, OSError):
            return soft
    return target


class LoadReport(dict):
    """A plain dict with a stable schema; see :func:`run_load`."""


async def _client_loop(
    cluster: RealCluster,
    client,
    ops: int,
    n_keys: int,
    theta: float,
    read_ratio: float,
    value_bytes: int,
    seed: int,
    stats: Dict,
    start_gate: asyncio.Event,
    obs: Optional["obs_runtime.ProcessObs"] = None,
    lane: int = 0,
) -> None:
    keys = ZipfianGenerator(n_keys, theta=theta, seed=seed).sample(ops)
    import random

    rng = random.Random(seed)
    value = bytes(value_bytes)
    get_lat = stats["get_latency"]
    set_lat = stats["set_latency"]
    tracer = obs.tracer if obs is not None else None
    await start_gate.wait()
    for i in range(ops):
        key = b"key-%d" % int(keys[i])
        is_read = rng.random() < read_ratio
        failed = False
        t0 = time.perf_counter()
        try:
            if is_read:
                result = await drive(client.get(key))
                if result is None:
                    # Cache-aside fill, as the sim harness models misses.
                    await drive(client.set(key, value))
            else:
                await drive(client.set(key, value))
        except (CacheOperationError, RdmaFaultError):
            stats["failed_ops"] += 1
            failed = True
        finally:
            stats["ops_done"] += 1
        elapsed_us = (time.perf_counter() - t0) * 1e6
        if tracer is not None:
            # Ops on this task are sequential, so spans nest trivially in
            # the client's own lane.
            tracer.complete_at(
                "op.get" if is_read else "op.set", "op",
                obs.now_us() - elapsed_us, elapsed_us, tid=lane,
                args={"failed": True} if failed else None,
            )
        if not failed:
            (get_lat if is_read else set_lat).record(elapsed_us)


async def run_load(
    descriptor: Dict,
    clients: int = 16,
    ops: int = 5000,
    n_keys: int = 2000,
    theta: float = 0.99,
    read_ratio: float = 0.95,
    value_bytes: int = 232,
    preload: int = 0,
    seed: int = 7,
    shm_reads: bool = False,
    timeout_s: float = 10.0,
    registry: Optional[MetricsRegistry] = None,
    cluster: Optional[RealCluster] = None,
    on_start=None,
) -> LoadReport:
    """Drive ``ops`` total operations from ``clients`` concurrent clients.

    Returns a report dict: throughput, per-verb latency percentiles, hit
    rate, failure counts, and the endpoint counters.

    A caller that needs the cluster afterwards (the chaos harness runs
    its invariant sweep over the same client state) may pass its own
    ``cluster`` — it must have no clients yet and is *not* closed here.
    ``on_start`` is an optional async callback awaited right before the
    start gate opens (chaos uses it to arm fault gates and schedule the
    kill task on the running loop).
    """
    raise_fd_limit(4 * clients + 64)
    obs = obs_runtime.current()
    if obs is not None and registry is None:
        # Armed process: client-side metrics land in the trace shard.
        registry = obs.registry
    owns_cluster = cluster is None
    if owns_cluster:
        runtime = WallClockRuntime()
        cluster = RealCluster(
            descriptor, runtime=runtime, registry=registry,
            timeout_s=timeout_s, shm_reads=shm_reads,
        )
    elif cluster.clients:
        raise ValueError("a caller-provided cluster must have no clients")
    cluster.add_clients(clients)
    if obs is not None:
        obs.bridge_counters(cluster.counters, component="client")
    stats = {
        "ops_done": 0,
        "failed_ops": 0,
        "get_latency": LatencyStats(),
        "set_latency": LatencyStats(),
    }
    if preload:
        loader = cluster.clients[0]
        for key_id in range(preload):
            await drive(loader.set(b"key-%d" % key_id, bytes(value_bytes)))

    per_client = -(-ops // clients)
    start_gate = asyncio.Event()
    tasks = [
        asyncio.ensure_future(
            _client_loop(
                cluster, client, per_client, n_keys, theta, read_ratio,
                value_bytes, seed * 1_000_003 + index, stats, start_gate,
                obs=obs,
                lane=obs.lane(f"client-{index}") if obs is not None else 0,
            )
        )
        for index, client in enumerate(cluster.clients)
    ]
    # Every task parks on the gate after its (cheap) setup, so the measured
    # window starts with all clients running.
    await asyncio.sleep(0)
    if on_start is not None:
        await on_start()
    load_start_us = obs.now_us() if obs is not None else 0.0
    t_start = time.perf_counter()
    start_gate.set()
    await asyncio.gather(*tasks)
    wall_s = time.perf_counter() - t_start
    if obs is not None:
        obs.tracer.complete(
            "load", "phase", load_start_us,
            args={"clients": clients, "ops": ops},
        )
    if owns_cluster:
        await cluster.aclose()

    get_lat = stats["get_latency"]
    set_lat = stats["set_latency"]
    counters = cluster.counters.as_dict()
    return LoadReport(
        clients=clients,
        ops=stats["ops_done"],
        failed_ops=stats["failed_ops"],
        wall_s=round(wall_s, 4),
        ops_per_s=round(stats["ops_done"] / wall_s, 1) if wall_s else 0.0,
        hit_rate=round(cluster.hit_rate(), 4),
        objects=cluster.object_count,
        get_p50_us=round(get_lat.percentile(50), 1) if get_lat.count else None,
        get_p99_us=round(get_lat.percentile(99), 1) if get_lat.count else None,
        set_p50_us=round(set_lat.percentile(50), 1) if set_lat.count else None,
        set_p99_us=round(set_lat.percentile(99), 1) if set_lat.count else None,
        evictions=sum(c.evictions for c in cluster.clients),
        regrets=sum(c.regrets for c in cluster.clients),
        counters={key: counters[key] for key in sorted(counters)},
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Ditto real-substrate load generator"
    )
    parser.add_argument("--descriptor", required=True,
                        help="cluster descriptor JSON from repro.serve")
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--ops", type=int, default=5000)
    parser.add_argument("--keys", type=int, default=2000)
    parser.add_argument("--theta", type=float, default=0.99)
    parser.add_argument("--read-ratio", type=float, default=0.95)
    parser.add_argument("--value-bytes", type=int, default=232)
    parser.add_argument("--preload", type=int, default=0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shm-reads", action="store_true",
                        help="serve READs straight from shared memory")
    parser.add_argument("--json", default="",
                        help="also write the report to this path")
    args = parser.parse_args(argv)
    with open(args.descriptor, "r", encoding="utf-8") as fh:
        descriptor = json.load(fh)
    report = asyncio.run(run_load(
        descriptor, clients=args.clients, ops=args.ops, n_keys=args.keys,
        theta=args.theta, read_ratio=args.read_ratio,
        value_bytes=args.value_bytes, preload=args.preload, seed=args.seed,
        shm_reads=args.shm_reads,
    ))
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
