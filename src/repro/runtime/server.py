"""The real-substrate memory-node server process.

One process per memory node (``python -m repro.runtime.server``): the
node's heap is a ``multiprocessing.shared_memory`` segment, verbs arrive
as :mod:`repro.runtime.wire` frames over a loopback TCP listener, and the
very same :class:`~repro.memory.node.MemoryNode` byte/atomic methods and
:class:`~repro.memory.controller.SegmentState` machine that back the sim
substrate execute them.  The server loop is single-threaded asyncio and
memory operations contain no await points, so CAS/FAA from any number of
connections linearize by construction — the same serialization point the
sim models with the NIC pipe.

Node 0 additionally hosts the cluster-level metadata handlers (the
adaptive ``update_weights`` fold and ``get_membership``), mirroring the
sim cluster where node 0 carries the hash table and global structures.

Lifecycle: the parent (``repro.runtime.harness``) spawns this module,
reads the ``DITTO-NODE ...`` ready line for the bound port and shared-
memory name, and later sends ``OP_SHUTDOWN`` (or SIGTERM).  The shared-
memory segment is always unlinked on the way out — leak-free shutdown is
part of the CI contract.
"""

from __future__ import annotations

import argparse
import asyncio
import pickle
import signal
import sys
from multiprocessing import shared_memory

from ..core.adaptive import GlobalWeights
from ..core.elasticity import ACTIVE
from ..memory.controller import OutOfMemoryError, SegmentState
from ..memory.node import MemoryAccessError, MemoryNode
from ..rdma.verbs import StaleEpoch
from . import wire


def shm_name(run_id: str, node_id: int) -> str:
    return f"ditto-{run_id}-mn{node_id}"


class NodeServer:
    """One memory node served over sockets + shared memory."""

    def __init__(
        self,
        node_id: int,
        base: int,
        size: int,
        reserve: int = 0,
        run_id: str = "dev",
        num_experts: int = 0,
        learning_rate: float = 0.1,
        membership: tuple = (),
    ):
        self.node_id = node_id
        self.run_id = run_id
        self.shm = shared_memory.SharedMemory(
            name=shm_name(run_id, node_id), create=True, size=size
        )
        self.node = MemoryNode(
            None, size=size, base=base, node_id=node_id, buffer=self.shm.buf
        )
        self.segments = SegmentState(node_id, base + reserve, base + size)
        self.weights = (
            GlobalWeights(num_experts, learning_rate) if num_experts else None
        )
        #: Static membership advertised by get_membership (node 0 only);
        #: the real substrate does not yet run elastic node changes.
        self.membership = tuple(membership)
        self._stop = asyncio.Event()
        self._server = None
        self.ops_served = 0

    # -- RPC handlers (mirror Controller's registered operations) ---------

    def _rpc(self, op: str, payload):
        seg = self.segments
        if op == "alloc_segment":
            if seg.draining:
                raise StaleEpoch(
                    f"node {self.node_id} is draining at epoch {seg.epoch}: "
                    "no new segment grants",
                    verb="rpc", node_id=self.node_id, epoch=seg.epoch,
                )
            if isinstance(payload, tuple):
                size, owner = payload
            else:
                size, owner = payload, -1
            return seg.alloc(size, owner)
        if op == "free_segment":
            addr, size = payload
            return seg.free(addr, size)
        if op == "list_segments":
            return seg.list_owner(payload)
        if op == "reassign_grants":
            from_owner, to_owner = payload
            return seg.reassign(from_owner, to_owner)
        if op == "update_weights":
            if self.weights is None:
                raise KeyError(
                    f"node {self.node_id} does not host the global weights"
                )
            return self.weights.handle_update(list(payload))
        if op == "get_membership":
            if not self.membership:
                raise KeyError(
                    f"node {self.node_id} does not host the membership table"
                )
            return (0, tuple((nid, ACTIVE) for nid in self.membership))
        raise KeyError(f"no RPC handler registered for {op!r}")

    # -- frame dispatch ----------------------------------------------------

    def _serve_data(self, op: int, body: bytes):
        node = self.node
        if op == wire.OP_READ:
            addr, length = wire.READ_BODY.unpack(body)
            return wire.ST_OK, node.read_bytes(addr, length)
        if op == wire.OP_WRITE:
            (addr,) = wire.WRITE_HDR.unpack_from(body)
            node.write_bytes(addr, body[wire.WRITE_HDR.size :])
            return wire.ST_OK, b""
        if op == wire.OP_CAS:
            addr, expected, new = wire.CAS_BODY.unpack(body)
            return wire.ST_OK, wire.U64.pack(
                node.compare_and_swap(addr, expected, new)
            )
        if op == wire.OP_FAA:
            addr, delta = wire.FAA_BODY.unpack(body)
            return wire.ST_OK, wire.U64.pack(node.fetch_and_add(addr, delta))
        if op == wire.OP_PING:
            return wire.ST_OK, b""
        raise ValueError(f"unknown opcode {op}")

    async def _serve_rpc(self, body: bytes):
        op_name, payload = wire.unpack_rpc(body)
        if op_name == "__sleep__":
            # Debug/test handler: a stalled controller (timeout surfacing).
            await asyncio.sleep(float(payload))
            return wire.ST_OK, pickle.dumps(None)
        try:
            result = self._rpc(op_name, payload)
        except OutOfMemoryError as err:
            return wire.ST_OOM, pickle.dumps(str(err))
        except StaleEpoch as err:
            return wire.ST_STALE, pickle.dumps(
                (str(err), err.node_id, err.epoch)
            )
        return wire.ST_OK, pickle.dumps(result)

    async def _handle(self, reader, writer):
        try:
            while True:
                frame = await wire.read_frame(reader)
                op, req_id = wire.REQ.unpack_from(frame)
                body = frame[wire.REQ.size :]
                self.ops_served += 1
                if op == wire.OP_SHUTDOWN:
                    writer.write(wire.response_frame(req_id, wire.ST_OK))
                    await writer.drain()
                    self._stop.set()
                    break
                try:
                    if op == wire.OP_RPC:
                        status, out = await self._serve_rpc(body)
                    else:
                        status, out = self._serve_data(op, body)
                except MemoryAccessError as err:
                    status, out = wire.ST_ACCESS, pickle.dumps(str(err))
                except Exception as err:  # noqa: BLE001 — must not kill the loop
                    status, out = wire.ST_ERROR, pickle.dumps(
                        (type(err).__name__, str(err))
                    )
                writer.write(wire.response_frame(req_id, status, out))
                await writer.drain()
        except (wire.IncompleteReadError, ConnectionResetError, OSError):
            pass  # client went away; nothing to clean up per-connection
        finally:
            writer.close()

    # -- lifecycle ---------------------------------------------------------

    async def run(self, announce=print) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        port = self._server.sockets[0].getsockname()[1]
        announce(
            f"DITTO-NODE node_id={self.node_id} port={port} "
            f"shm={self.shm.name} base={self.node.base} size={self.node.size}"
        )
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self.close()

    def close(self) -> None:
        """Release the heap; idempotent, and always unlinks the segment."""
        if self.shm is None:
            return
        self.node._memory.release()
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
        self.shm = None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Ditto real-substrate memory-node server"
    )
    parser.add_argument("--node-id", type=int, required=True)
    parser.add_argument("--base", type=int, required=True)
    parser.add_argument("--size", type=int, required=True)
    parser.add_argument("--reserve", type=int, default=0)
    parser.add_argument("--run-id", default="dev")
    parser.add_argument("--experts", type=int, default=0,
                        help="host the global adaptive weights (node 0)")
    parser.add_argument("--learning-rate", type=float, default=0.1)
    parser.add_argument("--membership", default="",
                        help="comma-separated node ids to advertise")
    args = parser.parse_args(argv)
    membership = tuple(
        int(part) for part in args.membership.split(",") if part != ""
    )
    server = NodeServer(
        args.node_id, args.base, args.size, reserve=args.reserve,
        run_id=args.run_id, num_experts=args.experts,
        learning_rate=args.learning_rate, membership=membership,
    )

    def announce(line: str) -> None:
        print(line, flush=True)

    try:
        asyncio.run(server.run(announce=announce))
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
