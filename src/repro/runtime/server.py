"""The real-substrate memory-node server process.

One process per memory node (``python -m repro.runtime.server``): the
node's heap is a ``multiprocessing.shared_memory`` segment, verbs arrive
as :mod:`repro.runtime.wire` frames over a loopback TCP listener, and the
very same :class:`~repro.memory.node.MemoryNode` byte/atomic methods that
back the sim substrate execute them.  Segment management runs on
:class:`~repro.runtime.journal.DurableSegmentState`, which mirrors every
grant into a write-through journal at the tail of the same shared-memory
segment — so a SIGKILLed node can be restarted with ``--adopt`` against
the surviving heap and resume with its grant log (and alloc-dedup
tokens) intact.  The server loop is single-threaded asyncio and memory
operations contain no await points, so CAS/FAA from any number of
connections linearize by construction — the same serialization point the
sim models with the NIC pipe.

Node 0 additionally hosts the cluster-level metadata handlers (the
adaptive ``update_weights`` fold and ``get_membership``), mirroring the
sim cluster where node 0 carries the hash table and global structures.

Fault injection: a :class:`~repro.runtime.chaos.ChaosGate` can be armed
over RPC (``__chaos_load__``); it is consulted once per request frame,
*before* execution, so a dropped verb never ran — the wall-clock
equivalent of the sim's drop-at-the-NIC semantics.

Lifecycle: the parent (``repro.runtime.harness``) spawns this module,
reads the ``DITTO-NODE ...`` ready line for the bound port and shared-
memory name, and later sends ``OP_SHUTDOWN`` (or SIGTERM/SIGINT, which
drain in-flight requests and close listeners first).  The shared-memory
segment is unlinked only on an *owned, clean* shutdown: a SIGKILL leaves
it behind on purpose (that is what restart-and-adopt rides on), and the
harness force-unlinks any survivor at teardown so nothing leaks.  The
segment is explicitly unregistered from the ``resource_tracker`` —
otherwise the tracker of a killed process (or of a client that merely
attached for direct reads) would unlink a heap that is still live.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import pickle
import signal
import sys
import time
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Optional, Set

from ..core.adaptive import GlobalWeights
from ..core.elasticity import ACTIVE
from ..memory.controller import OutOfMemoryError
from ..memory.node import MemoryAccessError, MemoryNode
from ..obs import runtime as obs_runtime
from ..obs.metrics import MetricsRegistry
from ..rdma.verbs import StaleEpoch
from ..sim.faults import DOWN, DROP, FaultPlan
from . import wire
from .chaos import ChaosGate
from .journal import (
    DurableSegmentState,
    GrantJournal,
    journal_bytes,
    unregister_shm,
)

#: Seconds granted to in-flight requests (and spiked delayed responses)
#: on a graceful shutdown before connections are force-closed.
DRAIN_GRACE_S = 0.5

#: Memoized (status, body) results kept per node for RPC dedup tokens.
RPC_MEMO_LIMIT = 1024

_VERB_BY_OP = {
    wire.OP_READ: "read",
    wire.OP_WRITE: "write",
    wire.OP_CAS: "cas",
    wire.OP_FAA: "faa",
    wire.OP_RPC: "rpc",
    wire.OP_PING: "ping",
}


def shm_name(run_id: str, node_id: int) -> str:
    return f"ditto-{run_id}-mn{node_id}"


class _ServerObs:
    """Pre-bound instruments for the served-frame hot path.

    Built once when observability arms, so a hot frame performs only
    counter adds and histogram records — never a registry lookup or
    allocation.  ``proc`` (the trace-shard exporter) is optional:
    ``__stats_arm__`` can arm metrics-only introspection at runtime on a
    node that was launched without ``REPRO_TRACE``.
    """

    __slots__ = ("registry", "proc", "verb_count", "verb_us",
                 "frame_bytes", "verdict_drop", "verdict_down",
                 "verdict_spike", "journal_writes")

    def __init__(self, registry: MetricsRegistry,
                 proc: Optional["obs_runtime.ProcessObs"] = None):
        self.registry = registry
        self.proc = proc
        self.verb_count = {
            op: registry.counter("verbs", verb=verb)
            for op, verb in _VERB_BY_OP.items()
        }
        self.verb_us = {
            op: registry.histogram("verb.service_us", verb=verb)
            for op, verb in _VERB_BY_OP.items()
        }
        self.frame_bytes = registry.histogram("frame.bytes")
        self.verdict_drop = registry.counter("gate.verdicts", verdict="drop")
        self.verdict_down = registry.counter("gate.verdicts", verdict="down")
        self.verdict_spike = registry.counter("gate.verdicts",
                                              verdict="spike")
        self.journal_writes = registry.counter("journal.writes")


class NodeServer:
    """One memory node served over sockets + shared memory."""

    def __init__(
        self,
        node_id: int,
        base: int,
        size: int,
        reserve: int = 0,
        run_id: str = "dev",
        num_experts: int = 0,
        learning_rate: float = 0.1,
        membership: tuple = (),
        port: int = 0,
        adopt: bool = False,
    ):
        self.node_id = node_id
        self.run_id = run_id
        self.port = port
        total = size + journal_bytes()
        if adopt:
            self.shm = shared_memory.SharedMemory(
                name=shm_name(run_id, node_id), create=False
            )
            if self.shm.size < total:
                self.shm.close()
                raise ValueError(
                    f"surviving segment {self.shm.name} holds "
                    f"{self.shm.size} bytes, adoption needs {total}"
                )
        else:
            self.shm = shared_memory.SharedMemory(
                name=shm_name(run_id, node_id), create=True, size=total
            )
        unregister_shm(self.shm)
        self._owns_shm = True
        self.node = MemoryNode(
            None, size=size, base=base, node_id=node_id, buffer=self.shm.buf
        )
        self._jview = self.shm.buf[size:total]
        try:
            if adopt:
                self.segments = DurableSegmentState.adopt(
                    node_id, base + reserve, base + size, self._jview
                )
            else:
                self.segments = DurableSegmentState(
                    node_id, base + reserve, base + size,
                    GrantJournal(self._jview),
                )
        except ValueError:
            # Failed adoption: never unlink a heap we could not parse.
            self._release_views()
            self.shm.close()
            self.shm = None
            raise
        self.weights = (
            GlobalWeights(num_experts, learning_rate) if num_experts else None
        )
        #: Static membership advertised by get_membership (node 0 only);
        #: the real substrate does not yet run elastic node changes.
        self.membership = tuple(membership)
        self.gate: Optional[ChaosGate] = None
        self._rpc_memo: "OrderedDict[int, tuple]" = OrderedDict()
        self._stop = asyncio.Event()
        self._server = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._delayed: Set[asyncio.Task] = set()
        self.ops_served = 0
        self.started_epoch = time.time()
        #: None until armed (launch-time via REPRO_TRACE, or runtime via
        #: the __stats_arm__ RPC).  Hot paths guard on this being None.
        self._obs: Optional[_ServerObs] = None
        #: Verdict counts of gates already disarmed (__chaos_stop__ folds
        #: them here so a post-drill __stats__ still sees the totals).
        self._chaos_verdicts: dict = {}
        self._conn_seq = 0

    # -- observability -----------------------------------------------------

    def arm_obs(self, proc: Optional["obs_runtime.ProcessObs"]) -> None:
        """Arm per-frame instrumentation; idempotent.

        With a :class:`~repro.obs.runtime.ProcessObs` (``REPRO_TRACE``
        set at launch) spans land in its trace shard; without one (the
        ``__stats_arm__`` RPC on a dark node) a standalone registry
        collects metrics for ``__stats__`` to report.
        """
        if self._obs is not None:
            return
        registry = proc.registry if proc is not None else MetricsRegistry()
        self._obs = _ServerObs(registry, proc)
        self.segments.journal.on_record = self._obs.journal_writes.add

    def _fold_gate_verdicts(self) -> None:
        if self.gate is not None:
            for kind, count in self.gate.verdicts.items():
                if count:
                    self._chaos_verdicts[kind] = (
                        self._chaos_verdicts.get(kind, 0) + count
                    )

    def _stats(self) -> dict:
        """The ``__stats__`` control-RPC payload: health + metrics."""
        verdicts = dict(self._chaos_verdicts)
        if self.gate is not None:
            for kind, count in self.gate.verdicts.items():
                if count:
                    verdicts[kind] = verdicts.get(kind, 0) + count
        out = {
            "node_id": self.node_id,
            "role": f"mn{self.node_id}",
            "pid": os.getpid(),
            "uptime_s": time.time() - self.started_epoch,
            "ops_served": self.ops_served,
            "connections": len(self._conn_tasks),
            "inflight_delayed": len(self._delayed),
            "journal_entries": self.segments.journal.count,
            "grants": sum(
                len(pairs) for pairs in self.segments.grants.values()
            ),
            "chaos_armed": self.gate is not None,
            "chaos_verdicts": verdicts,
            "obs_armed": self._obs is not None,
            "metrics": (
                self._obs.registry.snapshot()
                if self._obs is not None else None
            ),
        }
        return out

    # -- RPC handlers (mirror Controller's registered operations) ---------

    def _rpc(self, op: str, payload, token: int = 0):
        seg = self.segments
        if op == "alloc_segment":
            if seg.draining:
                raise StaleEpoch(
                    f"node {self.node_id} is draining at epoch {seg.epoch}: "
                    "no new segment grants",
                    verb="rpc", node_id=self.node_id, epoch=seg.epoch,
                )
            if isinstance(payload, tuple):
                size, owner = payload
            else:
                size, owner = payload, -1
            return seg.alloc(size, owner, token)
        if op == "free_segment":
            addr, size = payload
            return seg.free(addr, size)
        if op == "list_segments":
            return seg.list_owner(payload)
        if op == "reassign_grants":
            from_owner, to_owner = payload
            return seg.reassign(from_owner, to_owner)
        if op == "granted_segments":
            return {
                owner: list(pairs)
                for owner, pairs in seg.grants.items() if pairs
            }
        if op == "update_weights":
            if self.weights is None:
                raise KeyError(
                    f"node {self.node_id} does not host the global weights"
                )
            return self.weights.handle_update(list(payload))
        if op == "get_membership":
            if not self.membership:
                raise KeyError(
                    f"node {self.node_id} does not host the membership table"
                )
            return (0, tuple((nid, ACTIVE) for nid in self.membership))
        if op == "__chaos_load__":
            plan_dict, t0 = payload
            self._fold_gate_verdicts()
            plan = FaultPlan.from_dict(plan_dict)
            gate = ChaosGate(plan, self.node_id)
            gate.arm(t0)
            self.gate = gate
            obs = self._obs
            if obs is not None and obs.proc is not None:
                # Overlay the armed windows on this node's trace shard so
                # the merged view shows faults against served verbs.
                obs_runtime.record_fault_windows(obs.proc, plan, gate.t0)
                obs.proc.tracer.instant_at(
                    "chaos.armed", "chaos", obs.proc.ts_from_epoch(gate.t0),
                    tid=0,
                )
            return t0
        if op == "__chaos_stop__":
            self._fold_gate_verdicts()
            self.gate = None
            return None
        if op == "__stats__":
            return self._stats()
        if op == "__stats_arm__":
            self.arm_obs(obs_runtime.current())
            return True
        raise KeyError(f"no RPC handler registered for {op!r}")

    # -- frame dispatch ----------------------------------------------------

    def _serve_data(self, op: int, body: bytes):
        node = self.node
        if op == wire.OP_READ:
            addr, length = wire.READ_BODY.unpack(body)
            return wire.ST_OK, node.read_bytes(addr, length)
        if op == wire.OP_WRITE:
            (addr,) = wire.WRITE_HDR.unpack_from(body)
            node.write_bytes(addr, body[wire.WRITE_HDR.size :])
            return wire.ST_OK, b""
        if op == wire.OP_CAS:
            addr, expected, new = wire.CAS_BODY.unpack(body)
            return wire.ST_OK, wire.U64.pack(
                node.compare_and_swap(addr, expected, new)
            )
        if op == wire.OP_FAA:
            addr, delta = wire.FAA_BODY.unpack(body)
            return wire.ST_OK, wire.U64.pack(node.fetch_and_add(addr, delta))
        if op == wire.OP_PING:
            return wire.ST_OK, b""
        raise ValueError(f"unknown opcode {op}")

    async def _serve_rpc(self, body: bytes):
        op_name, payload, token = wire.unpack_rpc(body)
        if token:
            memo = self._rpc_memo.get(token)
            if memo is not None:
                # Resent RPC (response lost): replay the first result.
                self._rpc_memo.move_to_end(token)
                return memo
        if op_name == "__sleep__":
            # Debug/test handler: a stalled controller (timeout surfacing).
            await asyncio.sleep(float(payload))
            return wire.ST_OK, pickle.dumps(None)
        try:
            result = self._rpc(op_name, payload, token)
        except OutOfMemoryError as err:
            out = wire.ST_OOM, pickle.dumps(str(err))
        except StaleEpoch as err:
            out = wire.ST_STALE, pickle.dumps(
                (str(err), err.node_id, err.epoch)
            )
        else:
            out = wire.ST_OK, pickle.dumps(result)
        if token:
            self._rpc_memo[token] = out
            while len(self._rpc_memo) > RPC_MEMO_LIMIT:
                self._rpc_memo.popitem(last=False)
        return out

    async def _execute(self, op: int, body: bytes):
        try:
            if op == wire.OP_RPC:
                return await self._serve_rpc(body)
            return self._serve_data(op, body)
        except MemoryAccessError as err:
            return wire.ST_ACCESS, pickle.dumps(str(err))
        except Exception as err:  # noqa: BLE001 — must not kill the loop
            return wire.ST_ERROR, pickle.dumps(
                (type(err).__name__, str(err))
            )

    def _gate_outcome(self, op: int, body: bytes):
        """Consult the chaos gate for this frame; (kind, extra_us).

        Shutdown frames and the chaos control RPCs themselves are exempt
        — the harness must always be able to disarm or stop a node.
        """
        gate = self.gate
        if gate is None or op == wire.OP_SHUTDOWN:
            return None, 0.0
        if op == wire.OP_RPC and wire.peek_rpc_name(body).startswith("__"):
            # Control RPCs (chaos arm/disarm, __stats__ polling, debug
            # handlers) must keep working while faults are injected.
            return None, 0.0
        return gate.verb_outcome(_VERB_BY_OP.get(op, "rpc"))

    def _spawn_delayed(self, writer, op: int, req_id: int, body: bytes,
                       delay_s: float) -> None:
        """Latency spike: execute + respond after the delay, off the main
        per-connection loop so other multiplexed requests keep flowing —
        the sim's extra-lead-latency semantics (the verb executes at its
        delayed completion time)."""

        async def _later():
            await asyncio.sleep(delay_s)
            status, out = await self._execute(op, body)
            if not writer.is_closing():
                writer.write(wire.response_frame(req_id, status, out))
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass

        task = asyncio.create_task(_later())
        self._delayed.add(task)
        task.add_done_callback(self._delayed.discard)

    async def _handle(self, reader, writer):
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._writers.add(writer)
        self._conn_seq += 1
        conn_id = self._conn_seq
        # Trace lane for this connection, allocated on the first observed
        # frame.  Frames on one connection are handled sequentially, so
        # their spans nest properly within the lane; concurrent
        # connections get distinct lanes.
        lane: Optional[int] = None
        try:
            while True:
                frame = await wire.read_frame(reader)
                op, req_id = wire.REQ.unpack_from(frame)
                body = frame[wire.REQ.size :]
                self.ops_served += 1
                obs = self._obs
                if obs is not None:
                    obs.frame_bytes.record(len(frame))
                kind, extra_us = self._gate_outcome(op, body)
                if kind == DROP:
                    if obs is not None:
                        obs.verdict_drop.add()
                    continue  # swallowed before execution: client times out
                if kind == DOWN:
                    if obs is not None:
                        obs.verdict_down.add()
                    break  # outage window: reset, client sees NodeUnavailable
                if op == wire.OP_SHUTDOWN:
                    writer.write(wire.response_frame(req_id, wire.ST_OK))
                    await writer.drain()
                    self._stop.set()
                    break
                if extra_us > 0.0:
                    if obs is not None:
                        obs.verdict_spike.add()
                        if obs.proc is not None:
                            if lane is None:
                                lane = obs.proc.lane(f"conn-{conn_id}")
                            # The delayed execution overlaps whatever runs
                            # next on this connection: an instant, not a
                            # span, keeps the lane properly nested.
                            obs.proc.tracer.instant_at(
                                f"{_VERB_BY_OP.get(op, 'rpc')}.delayed",
                                "verb", obs.proc.now_us(), tid=lane,
                                args={"extra_us": extra_us},
                            )
                    self._spawn_delayed(
                        writer, op, req_id, bytes(body), extra_us / 1e6
                    )
                    continue
                if obs is None:
                    status, out = await self._execute(op, body)
                else:
                    start_us = (
                        obs.proc.now_us() if obs.proc is not None else 0.0
                    )
                    t0 = time.perf_counter()
                    status, out = await self._execute(op, body)
                    service_us = (time.perf_counter() - t0) * 1e6
                    counter = obs.verb_count.get(op)
                    if counter is not None:
                        counter.add()
                        obs.verb_us[op].record(service_us)
                    if obs.proc is not None:
                        if lane is None:
                            lane = obs.proc.lane(f"conn-{conn_id}")
                        obs.proc.tracer.complete(
                            _VERB_BY_OP.get(op, "rpc"), "verb", start_us,
                            tid=lane, args={"status": status},
                        )
                writer.write(wire.response_frame(req_id, status, out))
                await writer.drain()
        except (wire.IncompleteReadError, ConnectionResetError, OSError):
            pass  # client went away; nothing to clean up per-connection
        finally:
            self._conn_tasks.discard(task)
            self._writers.discard(writer)
            writer.close()

    # -- lifecycle ---------------------------------------------------------

    async def _drain(self, grace: float = DRAIN_GRACE_S) -> None:
        """Let in-flight work finish, then tear connections down.

        Data verbs execute without awaiting, so by the time this
        coroutine runs none is mid-execution; what can be in flight are
        spiked delayed responses and slow RPCs.  Give them the grace
        period, then cancel stragglers and close every connection (which
        pops the per-connection loops out of ``read_frame``).
        """
        pending = {t for t in self._delayed if not t.done()}
        if pending:
            await asyncio.wait(pending, timeout=grace)
            for task in pending:
                task.cancel()
        for writer in list(self._writers):
            writer.close()
        handlers = {
            t for t in self._conn_tasks
            if not t.done() and t is not asyncio.current_task()
        }
        if handlers:
            _done, rest = await asyncio.wait(handlers, timeout=grace)
            for task in rest:
                task.cancel()

    async def run(self, announce=print) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", self.port
        )
        port = self._server.sockets[0].getsockname()[1]
        announce(
            f"DITTO-NODE node_id={self.node_id} port={port} "
            f"shm={self.shm.name} base={self.node.base} size={self.node.size}"
        )
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            await self._drain()
            self._flush_obs()
            self.close()

    def _flush_obs(self) -> None:
        """Write the trace shard now, before the heap is unlinked.

        The SIGTERM path sets ``_stop`` and tears down through ``run``'s
        ``finally`` without ever raising through ``main`` — on some
        interpreter/exit combinations atexit hooks are skipped, so the
        shard is committed here where shutdown is already serialized.
        """
        proc = obs_runtime.current()
        if proc is not None:
            try:
                proc.flush()
            except OSError:
                pass

    def _release_views(self) -> None:
        if self._jview is not None:
            self._jview.release()
            self._jview = None
        if self.node is not None:
            self.node._memory.release()

    def close(self) -> None:
        """Release the heap; unlinks only when this process owns it."""
        if self.shm is None:
            return
        self._release_views()
        self.shm.close()
        if self._owns_shm:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass
        self.shm = None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Ditto real-substrate memory-node server"
    )
    parser.add_argument("--node-id", type=int, required=True)
    parser.add_argument("--base", type=int, required=True)
    parser.add_argument("--size", type=int, required=True)
    parser.add_argument("--reserve", type=int, default=0)
    parser.add_argument("--run-id", default="dev")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral; a restarted node "
                             "reuses its old port so clients reconnect)")
    parser.add_argument("--adopt", action="store_true",
                        help="attach to the surviving shared-memory segment "
                             "of a crashed instance and rebuild grant state "
                             "from its journal")
    parser.add_argument("--experts", type=int, default=0,
                        help="host the global adaptive weights (node 0)")
    parser.add_argument("--learning-rate", type=float, default=0.1)
    parser.add_argument("--membership", default="",
                        help="comma-separated node ids to advertise")
    args = parser.parse_args(argv)
    membership = tuple(
        int(part) for part in args.membership.split(",") if part != ""
    )
    try:
        server = NodeServer(
            args.node_id, args.base, args.size, reserve=args.reserve,
            run_id=args.run_id, num_experts=args.experts,
            learning_rate=args.learning_rate, membership=membership,
            port=args.port, adopt=args.adopt,
        )
    except (ValueError, FileNotFoundError, FileExistsError) as err:
        print(f"DITTO-NODE-ERROR node_id={args.node_id} {err}",
              file=sys.stderr, flush=True)
        return 1
    proc = obs_runtime.init(f"mn{args.node_id}")
    if proc is not None:
        server.arm_obs(proc)

    def announce(line: str) -> None:
        print(line, flush=True)

    try:
        asyncio.run(server.run(announce=announce))
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
