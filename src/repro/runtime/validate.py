"""Sim-vs-real validation: do throughput *orderings* agree?

The simulator is not calibrated to this machine — its microsecond costs
come from the paper's CX-5 testbed — so absolute throughputs will not
match a laptop running loopback TCP.  What must transfer is the *shape*:
if the sim says configuration A outperforms B outperforms C, the real
substrate has to rank them the same way, or the sim's conclusions about
design points cannot be trusted.

This harness runs the same closed-loop Zipfian workload on both
substrates across a set of configurations that vary client concurrency
and value size, ranks each substrate's throughputs, and asserts the
rankings are identical.  Both sides execute the *same*
:class:`~repro.core.client.DittoClient` code — only the endpoint behind
the verb layer differs — so an ordering disagreement localizes to the
substrate model, not the caching logic.

A second mode, ``--chaos``, is the wall-clock robustness drill: the
*same* :class:`~repro.sim.faults.FaultPlan` (canned drop+outage plan, or
``--chaos-plan plan.json``) is executed on the sim substrate and then —
compiled to wall-clock — against a live 2-node cluster under the full
load generator, optionally with a SIGKILL/restart-and-adopt cycle
(``--kill``), ending with grant reconciliation, lease-repair scrubs, and
the memory-accounting invariant sweep read out of the real shared-memory
heaps.  Pass criteria: zero client-visible failures (clean misses are
fine), a green sweep, and zero leaked processes or segments.

CLI::

    python -m repro.runtime.validate            # full run, ~30 s
    python -m repro.runtime.validate --ops 2000 # quicker smoke
    python -m repro.runtime.validate --chaos --kill --clients 16 --ops 5000
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Dict, List, Optional

import numpy as np

from ..bench.runner import READ, UPDATE, Feed, Harness, preload
from ..bench.systems import build_ditto
from ..obs import runtime as obs_runtime
from ..sim.faults import FaultPlan
from ..workloads import ZipfianGenerator
from .harness import RealClusterHarness
from .loadgen import run_load

#: Configurations chosen so the expected ordering is robust on both
#: substrates: the axis is the read/write mix.  A Get costs two verbs
#: (index lookup + data read) while a Set costs several (data write, CAS
#: index insert, list maintenance), so throughput falls monotonically
#: with the write fraction whether each verb is a simulated NIC
#: transaction or a loopback socket round trip.  Concurrency is *not* a
#: portable axis — the real single-threaded node servers saturate — so
#: every config keeps the same client count and geometry.
CONFIGS = (
    {"name": "read-hot", "read_ratio": 0.95},
    {"name": "mixed", "read_ratio": 0.50},
    {"name": "write-heavy", "read_ratio": 0.05},
)

_CLIENTS = 8
_VALUE_BYTES = 232
_CAPACITY = 2048
_N_KEYS = 1500
_THETA = 0.99
_NUM_MEMORY_NODES = 2
_SEED = 11


def _zipf_feed(ops: int, seed: int, read_ratio: float) -> Feed:
    """Zipfian request stream with the given read fraction, the sim twin
    of the real load generator's per-client loop (misses are filled by
    the driver)."""
    keys = ZipfianGenerator(_N_KEYS, theta=_THETA, seed=seed).sample(ops)
    rng = np.random.default_rng(seed)
    op_codes = np.where(
        rng.random(ops) < read_ratio, READ, UPDATE
    ).astype(np.int8)
    return Feed(op_codes, keys.astype(np.int64))


def sim_throughput(
    config: Dict, warm_us: float = 20_000.0, window_us: float = 60_000.0
) -> float:
    """Measured sim throughput (Mops) for one configuration."""
    cluster = build_ditto(
        _CAPACITY,
        _CLIENTS,
        num_memory_nodes=_NUM_MEMORY_NODES,
        seed=_SEED,
    )
    preload(
        cluster.engine, cluster.clients, range(_N_KEYS // 2),
        value_size=_VALUE_BYTES,
    )
    harness = Harness(cluster.engine, value_size=_VALUE_BYTES)
    feeds = [
        _zipf_feed(20_000, _SEED * 1_000_003 + i, config["read_ratio"])
        for i in range(len(cluster.clients))
    ]
    harness.launch_all(cluster.clients, feeds)
    harness.warm(warm_us)
    measured = harness.measure(window_us)
    harness.stop_all()
    return measured.throughput_mops


def real_throughput(config: Dict, ops: int = 6000) -> Dict:
    """One real-substrate run for one configuration; the load report."""
    harness = RealClusterHarness(
        capacity_objects=_CAPACITY,
        num_clients=_CLIENTS,
        num_memory_nodes=_NUM_MEMORY_NODES,
        seed=_SEED,
    )
    try:
        descriptor = harness.launch()
        report = asyncio.run(run_load(
            descriptor,
            clients=_CLIENTS,
            ops=ops,
            n_keys=_N_KEYS,
            theta=_THETA,
            read_ratio=config["read_ratio"],
            value_bytes=_VALUE_BYTES,
            preload=_N_KEYS // 2,
            seed=_SEED,
        ))
    finally:
        harness.shutdown()
    leak = harness.leak_report()
    if not leak["clean"]:
        raise RuntimeError(f"cluster shutdown leaked: {leak}")
    if report["failed_ops"]:
        raise RuntimeError(
            f"{report['failed_ops']} operations failed under config "
            f"{config['name']}; refusing to rank a degraded run"
        )
    return report


def sim_chaos(plan: FaultPlan, warm_us: float = 5_000.0,
              window_us: float = 40_000.0) -> Dict:
    """Run the fault plan on the sim substrate (its native habitat).

    The measurement window is chosen to cover the canned plan's sim-time
    fault windows, so the counters show the injected drops/outages being
    ridden through by the same client machinery the real run exercises.
    Clients get the same enlarged retry budget the real chaos run
    overlays (:data:`~repro.runtime.chaos.CHAOS_CLIENT_CONFIG`) — riding
    a whole outage window takes more attempts than the default three.
    """
    from .chaos import CHAOS_CLIENT_CONFIG

    cluster = build_ditto(
        _CAPACITY,
        _CLIENTS,
        num_memory_nodes=_NUM_MEMORY_NODES,
        seed=_SEED,
        faults=plan,
        **CHAOS_CLIENT_CONFIG,
    )
    preload(
        cluster.engine, cluster.clients, range(_N_KEYS // 2),
        value_size=_VALUE_BYTES,
    )
    harness = Harness(cluster.engine, value_size=_VALUE_BYTES)
    feeds = [
        _zipf_feed(20_000, _SEED * 1_000_003 + i, 0.95)
        for i in range(len(cluster.clients))
    ]
    harness.launch_all(cluster.clients, feeds)
    harness.warm(warm_us)
    measured = harness.measure(window_us)
    harness.stop_all()
    counters = cluster.counters.as_dict()
    return {
        "throughput_mops": measured.throughput_mops,
        "fault_counters": {
            key: value for key, value in sorted(counters.items())
            if key.startswith("fault")
        },
    }


def run_chaos_validation(
    ops: int = 5000,
    clients: int = 16,
    plan: Optional[FaultPlan] = None,
    time_scale: Optional[float] = None,
    kill: bool = False,
    progress=None,
) -> Dict:
    """One FaultPlan, two substrates, plus the real-heap invariant sweep."""
    from .chaos import CANNED_PLAN, DEFAULT_TIME_SCALE, run_chaos

    say = progress if progress is not None else (lambda _msg: None)
    if plan is None:
        plan = CANNED_PLAN
    if time_scale is None:
        time_scale = DEFAULT_TIME_SCALE

    say("[sim ] replaying the fault plan on the simulator ...")
    sim_result = sim_chaos(plan)
    say(f"[sim ] {sim_result['throughput_mops']:.4f} Mops under faults "
        f"{sim_result['fault_counters']}")

    say(f"[real] loadgen under the compiled plan "
        f"({clients} clients / {ops} ops"
        + (", SIGKILL+restart of node 1" if kill else "") + ") ...")
    harness = RealClusterHarness(
        capacity_objects=_CAPACITY,
        num_clients=clients,
        num_memory_nodes=_NUM_MEMORY_NODES,
        seed=_SEED,
    )
    try:
        harness.launch()
        report = asyncio.run(run_chaos(
            harness, plan,
            time_scale=time_scale,
            clients=clients,
            ops=ops,
            n_keys=_N_KEYS,
            read_ratio=0.95,
            value_bytes=_VALUE_BYTES,
            preload=_N_KEYS // 2,
            seed=_SEED,
            kill_node_id=1 if kill else None,
        ))
    finally:
        harness.shutdown()
    leak = harness.leak_report()
    harness.unlink_leaked()
    say(f"[real] {report['ops_per_s']} ops/s, "
        f"{report['failed_ops']} failed ops, "
        f"sweep {report['chaos']['sweep']}, leak check {leak}")
    return {
        "plan": plan.to_dict(),
        "time_scale": time_scale,
        "kill": kill,
        "sim": sim_result,
        "real": report,
        "leak": leak,
        "clean": bool(leak["clean"] and report["failed_ops"] == 0),
    }


def _ranking(throughputs: Dict[str, float]) -> List[str]:
    """Config names from fastest to slowest."""
    return sorted(throughputs, key=throughputs.__getitem__, reverse=True)


def run_validation(
    ops: int = 6000, configs=CONFIGS, progress=None
) -> Dict:
    """Run every config on both substrates; returns the comparison."""
    say = progress if progress is not None else (lambda _msg: None)
    sim: Dict[str, float] = {}
    real: Dict[str, float] = {}
    digests: Dict[str, Dict] = {}
    for config in configs:
        say(f"[sim ] {config['name']} ...")
        sim[config["name"]] = sim_throughput(config)
        say(f"[sim ] {config['name']}: {sim[config['name']]:.4f} Mops")
    for config in configs:
        say(f"[real] {config['name']} ...")
        report = real_throughput(config, ops=ops)
        real[config["name"]] = report["ops_per_s"]
        digests[config["name"]] = obs_runtime.build_digest(report)
        say(f"[real] {config['name']}: {real[config['name']]:.0f} ops/s")
    sim_order = _ranking(sim)
    real_order = _ranking(real)
    return {
        "configs": [dict(c) for c in configs],
        "sim_mops": sim,
        "real_ops_per_s": real,
        "digests": digests,
        "sim_ordering": sim_order,
        "real_ordering": real_order,
        "orderings_agree": sim_order == real_order,
    }


def _digest_path(override: str, default_name: str) -> str:
    """Where the post-run digest JSON lands, "next to the verdict".

    ``--digest PATH`` wins; with ``REPRO_TRACE`` armed the digest joins
    the trace shards in the same directory; otherwise the cwd.
    """
    import os

    if override:
        return override
    trace_dir = os.environ.get("REPRO_TRACE")
    if trace_dir:
        return os.path.join(trace_dir, default_name)
    return default_name


def _flush_obs() -> None:
    proc = obs_runtime.current()
    if proc is not None:
        proc.flush()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Assert sim and real-substrate throughput orderings agree"
    )
    parser.add_argument("--ops", type=int, default=6000,
                        help="real-substrate ops per configuration")
    parser.add_argument("--json", default="",
                        help="also write the comparison to this path")
    parser.add_argument("--digest", default="",
                        help="post-run metrics digest JSON path (default: "
                             "<mode>-digest.json, or inside $REPRO_TRACE)")
    parser.add_argument("--chaos", action="store_true",
                        help="run the wall-clock chaos drill instead of "
                             "the throughput-ordering comparison")
    parser.add_argument("--kill", action="store_true",
                        help="with --chaos: SIGKILL memory node 1 "
                             "mid-load and restart-and-adopt it")
    parser.add_argument("--clients", type=int, default=16,
                        help="with --chaos: concurrent loadgen clients")
    parser.add_argument("--chaos-plan", default="",
                        help="with --chaos: FaultPlan JSON file "
                             "(default: the canned drop+outage plan)")
    parser.add_argument("--time-scale", type=float, default=None,
                        help="with --chaos: sim-µs → wall-µs multiplier")
    args = parser.parse_args(argv)
    obs_runtime.init("launcher")

    if args.chaos:
        plan = None
        if args.chaos_plan:
            with open(args.chaos_plan, "r", encoding="utf-8") as fh:
                plan = FaultPlan.from_dict(json.load(fh))
        try:
            result = run_chaos_validation(
                ops=args.ops if args.ops != 6000 else 5000,
                clients=args.clients,
                plan=plan,
                time_scale=args.time_scale,
                kill=args.kill,
                progress=print,
            )
        finally:
            _flush_obs()
        text = json.dumps(result, indent=2, sort_keys=True, default=str)
        print(text)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
        digest = result["real"].get(
            "digest", obs_runtime.build_digest(result["real"])
        )
        print()
        print(obs_runtime.format_digest(digest))
        digest_path = _digest_path(args.digest, "chaos-digest.json")
        obs_runtime.persist_digest(digest, digest_path)
        print(f"digest written to {digest_path}")
        verdict = "CLEAN" if result["clean"] else "DIRTY"
        print(f"chaos drill {verdict}")
        return 0 if result["clean"] else 1

    try:
        result = run_validation(ops=args.ops, progress=print)
    finally:
        _flush_obs()
    print()
    print(f"{'config':<10} {'sim Mops':>10} {'real ops/s':>12}")
    for config in result["configs"]:
        name = config["name"]
        print(f"{name:<10} {result['sim_mops'][name]:>10.4f} "
              f"{result['real_ops_per_s'][name]:>12.0f}")
    print()
    for name, digest in result["digests"].items():
        print(f"[{name}]")
        print(obs_runtime.format_digest(digest))
        print()
    digest_path = _digest_path(args.digest, "validate-digest.json")
    obs_runtime.persist_digest(result["digests"], digest_path)
    print(f"digest written to {digest_path}")
    print(f"sim ordering : {' > '.join(result['sim_ordering'])}")
    print(f"real ordering: {' > '.join(result['real_ordering'])}")
    verdict = "AGREE" if result["orderings_agree"] else "DISAGREE"
    print(f"orderings {verdict} across {len(result['configs'])} configs")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0 if result["orderings_agree"] else 1


if __name__ == "__main__":
    sys.exit(main())
