"""Framed wire protocol between real-substrate clients and memory nodes.

Every message is a length-prefixed frame on a loopback TCP stream::

    <u32 frame length> <frame>

A request frame is ``<u8 opcode> <u64 request id> <body>``; a response
frame is ``<u64 request id> <u8 status> <body>``.  Request ids are
per-connection and chosen by the client, so many in-flight requests can
multiplex one stream (a client's background posts share its connection
with the foreground op) and responses may return in any order.

Verb bodies are fixed little-endian structs mirroring the RDMA verb
shapes; RPC payloads/results are pickled (clients and servers are
processes of the same trusted launcher — this is a test/deployment
substrate, not an untrusted network service).

Error statuses carry enough to re-raise the *same* exception types the
sim substrate uses, keeping client retry machinery substrate-blind.

RPC frames additionally carry a client-chosen u64 *dedup token* between
the op name and the pickled payload.  A connection can die after the
request was sent but before the response arrives ("response lost"); the
client may then transparently resend the RPC over a fresh connection,
and the server uses the token to return the memoized first result
instead of executing twice.  Token 0 means "no dedup" (fire-and-forget
or read-only RPCs).  ``alloc_segment`` tokens are additionally persisted
in the node's grant journal, so dedup survives a server crash/restart.
"""

from __future__ import annotations

import pickle
import struct
from asyncio import IncompleteReadError, StreamReader

# -- opcodes ---------------------------------------------------------------

OP_READ = 1
OP_WRITE = 2
OP_CAS = 3
OP_FAA = 4
OP_RPC = 5
OP_PING = 6
OP_SHUTDOWN = 7

# -- response statuses -----------------------------------------------------

ST_OK = 0
#: Generic server-side failure; body is a pickled (type name, message).
ST_ERROR = 1
#: Out-of-range / misaligned memory access (MemoryAccessError).
ST_ACCESS = 2
#: Segment allocation failed (OutOfMemoryError).
ST_OOM = 3
#: Epoch-fenced NACK (StaleEpoch); body is pickled (message, node_id, epoch).
ST_STALE = 4

HEADER = struct.Struct("<I")
REQ = struct.Struct("<BQ")
RESP = struct.Struct("<QB")

READ_BODY = struct.Struct("<QI")     # addr, length
WRITE_HDR = struct.Struct("<Q")      # addr (data follows)
CAS_BODY = struct.Struct("<QQQ")     # addr, expected, new
FAA_BODY = struct.Struct("<Qq")      # addr, signed delta
U64 = struct.Struct("<Q")

MAX_FRAME = 64 * (1 << 20)

#: Opcodes a client may transparently resend after "response lost"
#: (request sent, connection died before the reply): READ and PING are
#: pure, WRITE is idempotent (object writes target private fresh blocks;
#: metadata writes rewrite the same bytes).  CAS is *not* here — a
#: resend could apply twice — the client resolves its fate by re-reading
#: the target word.  FAA is not here either: the client special-cases it
#: (the only FAA target is the history clock, where a rare double
#: increment is benign).  RPCs resend under their dedup token.
RESEND_SAFE_OPS = frozenset({OP_READ, OP_WRITE, OP_PING})


def request_frame(op: int, req_id: int, body: bytes = b"") -> bytes:
    frame = REQ.pack(op, req_id) + body
    return HEADER.pack(len(frame)) + frame


def response_frame(req_id: int, status: int, body: bytes = b"") -> bytes:
    frame = RESP.pack(req_id, status) + body
    return HEADER.pack(len(frame)) + frame


def pack_rpc(op_name: str, payload, token: int = 0) -> bytes:
    name = op_name.encode("utf-8")
    return (
        bytes((len(name),)) + name + U64.pack(token) + pickle.dumps(payload)
    )


def unpack_rpc(body: bytes):
    name_len = body[0]
    op_name = body[1 : 1 + name_len].decode("utf-8")
    (token,) = U64.unpack_from(body, 1 + name_len)
    payload = pickle.loads(body[1 + name_len + U64.size :])
    return op_name, payload, token


def peek_rpc_name(body: bytes) -> str:
    """The RPC op name without unpickling the payload (gate fast path)."""
    return body[1 : 1 + body[0]].decode("utf-8")


async def read_frame(reader: StreamReader) -> bytes:
    """Read one frame; raises IncompleteReadError on a clean/ dirty EOF."""
    header = await reader.readexactly(HEADER.size)
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ValueError(f"oversized frame: {length} bytes")
    return await reader.readexactly(length)


__all__ = [
    "OP_READ", "OP_WRITE", "OP_CAS", "OP_FAA", "OP_RPC", "OP_PING",
    "OP_SHUTDOWN",
    "ST_OK", "ST_ERROR", "ST_ACCESS", "ST_OOM", "ST_STALE",
    "HEADER", "REQ", "RESP",
    "READ_BODY", "WRITE_HDR", "CAS_BODY", "FAA_BODY", "U64",
    "RESEND_SAFE_OPS",
    "request_frame", "response_frame", "pack_rpc", "unpack_rpc",
    "peek_rpc_name", "read_frame", "IncompleteReadError",
]
