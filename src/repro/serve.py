"""Cluster launcher for the real substrate: ``python -m repro.serve``.

Sizes a cluster with the shared geometry plan, spawns one memory-node
server process per node, writes the cluster descriptor (the JSON a
:class:`~repro.runtime.cluster.RealCluster` in any process joins from),
and then either:

- serves until SIGINT/SIGTERM (the default), or
- with ``--load OPS``, drives an embedded load-generator run against the
  fresh cluster, prints the report, shuts everything down, and exits
  non-zero if any process or shared-memory segment leaked — the exact
  invocation the CI smoke job runs.

``--load`` composes with ``--chaos-plan plan.json``: the FaultPlan is
compiled from sim-time to wall-clock and armed in every node's fault
gate for the duration of the run, optionally with a SIGKILL/restart
cycle of node 1 (``--kill``), and the run ends with grant
reconciliation plus the invariant sweep over the real heaps (see
``repro.runtime.chaos``).  SIGTERM and SIGINT are handled gracefully in
every mode — servers drain in-flight requests and the launcher reaps
children and segments — so an interrupted run never leaks ``ditto-*``
shared memory.

Examples::

    # long-running 2-node cluster; attach load generators from other shells
    python -m repro.serve --memory-nodes 2 --descriptor /tmp/cluster.json

    # self-contained smoke: 5k ops from 16 concurrent clients, then reap
    python -m repro.serve --memory-nodes 2 --load 5000 --clients 16

    # the same smoke under an armed fault plan with a kill/restart cycle
    python -m repro.serve --memory-nodes 2 --load 5000 --clients 16 \\
        --chaos-plan plan.json --kill
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import threading
from typing import List, Optional

from .obs import runtime as obs_runtime
from .runtime.harness import RealClusterHarness
from .runtime.loadgen import run_load


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Launch a real-substrate Ditto cluster",
    )
    parser.add_argument("--memory-nodes", type=int, default=2)
    parser.add_argument("--capacity", type=int, default=4096,
                        help="initial capacity in objects")
    parser.add_argument("--max-capacity", type=int, default=None,
                        help="elastic ceiling in objects")
    parser.add_argument("--object-bytes", type=int, default=256)
    parser.add_argument("--clients", type=int, default=16,
                        help="planned client count (sizes per-client state)")
    parser.add_argument("--segment-bytes", type=int, default=256 * 1024)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--run-id", default=None,
                        help="shared-memory namespace (default: random)")
    parser.add_argument("--descriptor", default="",
                        help="write the cluster descriptor JSON here")
    parser.add_argument("--load", type=int, default=0, metavar="OPS",
                        help="drive OPS total operations, then shut down")
    parser.add_argument("--read-ratio", type=float, default=0.95)
    parser.add_argument("--value-bytes", type=int, default=232)
    parser.add_argument("--keys", type=int, default=2000)
    parser.add_argument("--preload", type=int, default=0)
    parser.add_argument("--shm-reads", action="store_true",
                        help="loadgen serves READs straight from shared memory")
    parser.add_argument("--chaos-plan", default="", metavar="PLAN_JSON",
                        help="with --load: arm this FaultPlan (sim-time "
                             "JSON, compiled to wall-clock) during the run")
    parser.add_argument("--time-scale", type=float, default=None,
                        help="with --chaos-plan: sim-µs → wall-µs multiplier")
    parser.add_argument("--kill", action="store_true",
                        help="with --chaos-plan: SIGKILL node 1 mid-load "
                             "and restart-and-adopt it")
    args = parser.parse_args(argv)
    obs_runtime.init("launcher")

    harness = RealClusterHarness(
        capacity_objects=args.capacity,
        object_bytes=args.object_bytes,
        num_clients=args.clients,
        num_memory_nodes=args.memory_nodes,
        segment_bytes=args.segment_bytes,
        max_capacity_objects=args.max_capacity,
        seed=args.seed,
        run_id=args.run_id,
    )
    exit_code = 0

    def _graceful(_signum, _frame):
        # SIGTERM behaves like Ctrl-C in every mode: the KeyboardInterrupt
        # unwinds into the finally below, which shuts servers down cleanly
        # (drained requests, unlinked segments) instead of leaking them.
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _graceful)
    try:
        descriptor = harness.launch()
        for entry in descriptor["nodes"]:
            print(
                f"memory-node {entry['node_id']}: 127.0.0.1:{entry['port']} "
                f"shm={entry['shm']} [{entry['base']:#x}, "
                f"{entry['base'] + entry['size']:#x})",
                flush=True,
            )
        if args.descriptor:
            harness.write_descriptor(args.descriptor)
            print(f"descriptor written to {args.descriptor}", flush=True)

        if args.load and args.chaos_plan:
            from .runtime.chaos import DEFAULT_TIME_SCALE, run_chaos
            from .sim.faults import FaultPlan

            with open(args.chaos_plan, "r", encoding="utf-8") as fh:
                plan = FaultPlan.from_dict(json.load(fh))
            report = asyncio.run(run_chaos(
                harness, plan,
                time_scale=args.time_scale or DEFAULT_TIME_SCALE,
                clients=args.clients,
                ops=args.load,
                n_keys=args.keys,
                read_ratio=args.read_ratio,
                value_bytes=args.value_bytes,
                preload=args.preload,
                seed=args.seed + 7,
                kill_node_id=1 if args.kill else None,
            ))
            print(json.dumps(report, indent=2, sort_keys=True), flush=True)
            digest = report.get("digest") or obs_runtime.build_digest(report)
            print(obs_runtime.format_digest(digest), flush=True)
            if report["failed_ops"]:
                exit_code = 1
        elif args.load:
            report = asyncio.run(run_load(
                descriptor,
                clients=args.clients,
                ops=args.load,
                n_keys=args.keys,
                read_ratio=args.read_ratio,
                value_bytes=args.value_bytes,
                preload=args.preload,
                seed=args.seed + 7,
                shm_reads=args.shm_reads,
            ))
            print(json.dumps(report, indent=2, sort_keys=True), flush=True)
            print(obs_runtime.format_digest(obs_runtime.build_digest(report)),
                  flush=True)
            if report["failed_ops"]:
                exit_code = 1
        else:
            print("serving; Ctrl-C to shut down", flush=True)
            stop = threading.Event()
            for sig in (signal.SIGINT, signal.SIGTERM):
                signal.signal(sig, lambda *_: stop.set())
            stop.wait()
    except KeyboardInterrupt:
        print("interrupted; shutting down cleanly", flush=True)
        exit_code = 130
    finally:
        # Flush the launcher's own trace shard before tearing the cluster
        # down: an interrupted run must not lose its observability export
        # (the node servers flush theirs inside their drain paths).
        proc = obs_runtime.current()
        if proc is not None:
            proc.flush()
        harness.shutdown()
    leak = harness.leak_report()
    harness.unlink_leaked()
    print(f"shutdown: {json.dumps(leak, sort_keys=True)}", flush=True)
    if not leak["clean"]:
        exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
