"""Deterministic discrete-event simulation substrate (time in microseconds)."""

from .engine import Engine, Event, Process, SimulationError, Timeout
from .faults import (
    ClientCrash,
    DropWindow,
    FaultInjector,
    FaultPlan,
    LatencySpike,
    NodeOutage,
    RpcFailure,
)
from .resources import Lock, RateLimiter, Resource
from .stats import (
    CounterSet,
    LatencyStats,
    ThroughputSeries,
    hit_rate,
    relative_change,
)

__all__ = [
    "Engine",
    "Event",
    "Process",
    "SimulationError",
    "Timeout",
    "ClientCrash",
    "DropWindow",
    "FaultInjector",
    "FaultPlan",
    "LatencySpike",
    "NodeOutage",
    "RpcFailure",
    "Lock",
    "RateLimiter",
    "Resource",
    "CounterSet",
    "LatencyStats",
    "ThroughputSeries",
    "hit_rate",
    "relative_change",
]
