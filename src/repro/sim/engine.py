"""Discrete-event simulation engine.

The engine drives *processes*: plain Python generators that model concurrent
activities (client threads, server loops, background daemons).  Processes
communicate with the engine by yielding *commands*:

- :class:`Timeout` — resume after a simulated delay,
- :class:`Event` — resume when the event is triggered (yield the event itself),
- another :class:`Process` — resume when that process completes (join).

Nested calls inside a process use plain ``yield from``, so only the primitive
commands above ever reach the engine.  Simulated time is a float in
**microseconds**; nothing in the engine reads the wall clock, which keeps every
simulation fully deterministic.

A process returns a value with a normal ``return`` statement; the value is
delivered to joiners and stored on :attr:`Process.result`.
"""

from __future__ import annotations

import heapq
import itertools
import os
from collections import deque
from typing import Any, Callable, Generator, Optional


class SimulationError(RuntimeError):
    """Raised for engine misuse (bad yields, running a finished engine, ...)."""


class Timeout:
    """Command: resume the yielding process after ``delay`` microseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay

    def _apply(self, engine: "Engine", process: "Process") -> None:
        # Inlined call_later: Timeout is the dominant event source (one per
        # simulated verb), so the extra call frame is worth shaving.
        delay = self.delay
        storm = engine._storm
        if storm is not None:
            # Mid-storm resume: a uniform delay stays in the drain deque; any
            # other delay ends the storm before the generic push below.
            if delay == engine._uniform:
                storm.append((engine._now + delay, process._send, process))
                return
            engine._flush_storm()
        uniform = engine._uniform
        if delay == uniform:
            tag = True
        elif uniform is None or not engine._heap:
            # First Timeout ever, or an empty heap: this delay anchors the
            # (new) uniform cohort.  Pending non-Timeout entries are already
            # counted in _mixed, so anchoring mid-heap is safe.
            engine._uniform = delay
            tag = True
        else:
            # A second delay value is in flight: this entry is "mixed" and
            # storm mode stays off until every mixed entry has been popped.
            engine._mixed += 1
            tag = False
        heapq.heappush(
            engine._heap,
            (engine._now + delay, next(engine._sequence), process._step, (), tag),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay})"


class Event:
    """A one-shot condition processes can wait on.

    Yielding an event suspends the process until :meth:`trigger` is called.
    Waiting on an already-triggered event resumes immediately (same timestamp)
    with the triggered value.
    """

    __slots__ = ("_engine", "_triggered", "_value", "_waiters")

    def __init__(self, engine: "Engine"):
        self._engine = engine
        self._triggered = False
        self._value: Any = None
        self._waiters: list = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            engine = self._engine
            active = engine._active
            label = active.name if active is not None else "<no process>"
            raise SimulationError(
                f"event triggered twice (double resume at t={engine.now:.3f}us, "
                f"last active process {label!r})"
            )
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._engine.call_later(0.0, process._step, value)

    def _apply(self, engine: "Engine", process: "Process") -> None:
        if self._triggered:
            engine.call_later(0.0, process._step, self._value)
        else:
            self._waiters.append(process)


class Process:
    """A running generator inside the engine.

    Yield a process to join it: the joiner resumes with the process's return
    value once it finishes.  If the process raised, the exception propagates
    to joiners (and to :meth:`Engine.run` if nobody joined it).
    """

    __slots__ = (
        "engine", "_gen", "_send", "done", "result", "name", "_killed", "tid"
    )

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        self.engine = engine
        self._gen = gen
        # Bound-method cache: _step runs once per event, so one attribute
        # lookup saved here is millions saved per experiment.
        self._send = gen.send
        self.done = Event(engine)
        self.result: Any = None
        self.name = name or getattr(gen, "__name__", "process")
        self._killed = False
        #: Trace lane: a small engine-unique integer identifying this process
        #: in span traces (``repro.obs``).  Processes run strictly
        #: sequentially within themselves, so spans emitted under one tid are
        #: properly nested by construction; tid 0 is reserved for code
        #: running outside any process (harness, fault-plan annotations).
        self.tid = next(engine._tids)

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def killed(self) -> bool:
        return self._killed

    def kill(self) -> None:
        """Terminate the process at its current yield point (fault injection).

        Models a crashing client thread: the generator is closed where it
        stands, so ``finally`` blocks run (a held MN-side resource completes
        its service; purely client-local state is simply abandoned), any
        event the process was waiting on is ignored when it later fires, and
        joiners resume with ``None``.  Killing a finished process is a no-op.
        """
        if self._killed or self.done.triggered:
            return
        self._killed = True
        self._gen.close()
        self.done.trigger(None)

    def _step(self, value: Any = None) -> None:
        if self._killed:
            return  # a stale resume for a crashed process: drop it
        engine = self.engine
        engine._active = self
        try:
            command = self._send(value)
        except StopIteration as stop:
            self.result = stop.value
            self.done.trigger(stop.value)
            return
        except SimulationError as err:
            # Fault-injection bugs surface here (negative backoff timeouts,
            # resuming a killed-and-restarted process, ...); stamp the error
            # with where and when so they are traceable.
            raise SimulationError(
                f"{err} (at t={engine.now:.3f}us in process {self.name!r})"
            ) from err
        try:
            apply = command._apply
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded a non-command: {command!r}; "
                "did you forget 'yield from'?"
            ) from None
        apply(self.engine, self)

    def _apply(self, engine: "Engine", process: "Process") -> None:
        # Yielding a Process means "join it".
        self.done._apply(engine, process)


_INFINITY = float("inf")


#: Storm mode needs at least this many pending uniform resumes to be worth
#: the sorted-drain setup cost (heaps this small pop cheaply anyway).
_STORM_MIN = 8


class Engine:
    """The event loop: a time-ordered heap of callbacks.

    **Storm mode** (the event-batch fast path): verb storms schedule long
    homogeneous runs of ``Timeout`` resumes with one shared delay — N clients
    ping-ponging the same precomputed verb cost.  A binary heap is overkill
    for that shape: if *every* pending entry is a Timeout resume with delay
    ``d``, then resumes appended at ``now + d`` can never overtake pending
    entries (which were scheduled no later than ``now``), so a plain FIFO
    deque preserves exact time order and the whole run retires in one heap
    drain with no ``heappush``/``heappop`` at all.  The engine tracks the
    uniform-delay invariant cheaply at push time (``_uniform``/``_mixed``)
    and falls back to the scalar pop-dispatch loop the moment any other
    command shape appears — or unconditionally once :meth:`disable_batch`
    has been called (faults, tracing lanes, or epoch fences armed).
    """

    __slots__ = (
        "_now", "_heap", "_sequence", "_active", "_tids",
        "_uniform", "_mixed", "_storm", "_batch_ok", "batch_off_reasons",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list = []
        self._sequence = itertools.count()
        #: Last process stepped — the label stamped onto SimulationErrors.
        self._active: Optional[Process] = None
        #: Trace-lane ids handed to processes (tid 0 = outside any process).
        self._tids = itertools.count(1)
        #: The delay shared by every "uniform" heap entry (Timeout resumes
        #: pushed while no other delay was in flight).
        self._uniform: Optional[float] = None
        #: How many pending entries do NOT match ``_uniform`` (non-Timeout
        #: callbacks and Timeouts of a different delay).  Storm mode may only
        #: engage while this is zero.
        self._mixed = 0
        #: The live storm deque of ``(when, process)`` resumes, or None when
        #: no storm is draining.
        self._storm: Optional[deque] = None
        self._batch_ok = True
        #: Why batching is off (e.g. {"faults", "tracing"}); empty when on.
        self.batch_off_reasons: set = set()
        if os.environ.get("REPRO_VECTORIZE") == "0":
            self.disable_batch("REPRO_VECTORIZE=0")

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def batch_enabled(self) -> bool:
        """Whether the storm-mode fast path may engage."""
        return self._batch_ok

    def disable_batch(self, reason: str) -> None:
        """Permanently pin this engine to the scalar event loop.

        Called when a subsystem arms state the fast path does not model
        per-event: fault injection (verb outcomes consult windows at resume
        time), span tracing (lane bookkeeping), and epoch fences.  The scalar
        and batched loops retire identical schedules, so this is belt *and*
        braces — but it keeps every fault/tracing/fence code path off the
        fast loop entirely, which is the easy thing to reason about.
        """
        self._batch_ok = False
        self.batch_off_reasons.add(reason)

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        if when < self._now:
            raise SimulationError(f"scheduling into the past: {when} < {self._now}")
        if self._storm is not None:
            self._flush_storm()
        self._mixed += 1
        heapq.heappush(self._heap, (when, next(self._sequence), fn, args, False))

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        # Hot path: delays are non-negative by construction (Timeout checks),
        # so skip call_at's past-scheduling validation.
        if self._storm is not None:
            self._flush_storm()
        self._mixed += 1
        heapq.heappush(
            self._heap, (self._now + delay, next(self._sequence), fn, args, False)
        )

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process; it takes its first step at the current time."""
        process = Process(self, gen, name)
        self.call_later(0.0, process._step)
        return process

    def _pump(self, until: float, stop: Optional[Event]) -> None:
        """The one pop-dispatch loop behind :meth:`run` and :meth:`run_process`.

        Drains events in time order until the heap empties, the next event
        would pass ``until``, or ``stop`` (a done-event) triggers.  Every
        optimization of the hot loop lives here and nowhere else.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if stop is not None and stop._triggered:
                return
            entry = heap[0]
            if entry[0] > until:
                return
            if not self._mixed and self._batch_ok and stop is None \
                    and len(heap) >= _STORM_MIN:
                self._run_storm(until)
                heap = self._heap  # _flush_storm rebuilds the heap list
                continue
            when, _seq, fn, args, tag = pop(heap)
            if not tag:
                self._mixed -= 1
            self._now = when
            fn(*args)

    def _flush_storm(self) -> None:
        """Rebuild a valid heap from the remaining storm deque.

        The deque is time-ordered (FIFO append order equals time order under
        the uniform-delay invariant), so reassigning fresh sequence numbers
        in deque order yields an ascending list — already a valid heap.  All
        rebuilt entries carry the uniform delay, so ``_mixed`` stays zero.
        """
        dq = self._storm
        if dq is None:
            return  # already flushed by a side effect inside send()
        self._storm = None
        sequence = self._sequence
        self._heap = [
            (when, next(sequence), process._step, (), True)
            for when, _send, process in dq
            if not process._killed
        ]

    def _run_storm(self, until: float) -> None:
        """Drain a homogeneous run of uniform-delay Timeout resumes.

        This is ``Process._step`` + the pop loop fused and stripped: no heap
        discipline, no command dispatch for the dominant shape.  Any other
        command (a different delay, an event wait that triggers, a spawn, a
        completion with joiners) flushes the remaining deque back into the
        heap and returns control to the scalar loop.
        """
        heap = self._heap
        entries = sorted(heap)
        del heap[:]
        dq = deque(
            (entry[0], process._send, process)
            for entry in entries
            for process in (entry[2].__self__,)
            if not process._killed
        )
        self._storm = dq
        uniform = self._uniform
        popleft = dq.popleft
        append = dq.append
        while dq:
            when, send, process = popleft()
            if process._killed:
                continue  # a stale resume for a crashed process: drop it
            if when > until:
                dq.appendleft((when, send, process))
                self._flush_storm()
                return
            self._now = when
            self._active = process
            try:
                command = send(None)
            except StopIteration as stop:
                process.result = stop.value
                process.done.trigger(stop.value)
                if self._storm is None:
                    return  # a joiner resumed via call_later: storm flushed
                continue
            except SimulationError as err:
                self._flush_storm()
                raise SimulationError(
                    f"{err} (at t={self._now:.3f}us in process "
                    f"{process.name!r})"
                ) from err
            except BaseException:
                # Raw process exceptions propagate unwrapped (matching the
                # scalar loop), but the pending deque must survive as a heap.
                self._flush_storm()
                raise
            # The fast path is only valid while THIS storm is still live:
            # send() side effects (call_later/call_at/spawn, an event trigger
            # with waiters) flush the storm, copying the remaining deque into
            # the rebuilt heap — appending to the dead deque and draining it
            # further would execute every remaining resume twice.
            if self._storm is dq and type(command) is Timeout \
                    and command.delay == uniform:
                append((when + uniform, send, process))
                continue
            try:
                apply = command._apply
            except AttributeError:
                self._flush_storm()
                raise SimulationError(
                    f"process {process.name!r} yielded a non-command: "
                    f"{command!r}; did you forget 'yield from'?"
                ) from None
            # Timeout._apply / Event._apply / call_later are storm-aware:
            # they flush the deque themselves when they break the invariant.
            apply(self, process)
            if self._storm is None:
                return
        self._storm = None

    def run(self, until: Optional[float] = None) -> float:
        """Run queued events, optionally stopping once time would pass ``until``.

        Returns the simulated time at which the run stopped.  With ``until``
        set, the clock is advanced to exactly ``until`` even if the heap
        drained earlier, so repeated ``run(until=...)`` calls form a timeline.
        """
        self._pump(until if until is not None else _INFINITY, None)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn ``gen`` and run the engine until it completes.

        This is the *instant mode* used when the library is driven as an
        ordinary synchronous cache: simulated time still advances (latencies
        accumulate) but the caller blocks until the operation finishes.
        """
        process = self.spawn(gen, name)
        self._pump(_INFINITY, process.done)
        if not process.finished:
            raise SimulationError(
                f"deadlock: process {process.name!r} cannot complete"
            )
        return process.result
