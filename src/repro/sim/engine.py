"""Discrete-event simulation engine.

The engine drives *processes*: plain Python generators that model concurrent
activities (client threads, server loops, background daemons).  Processes
communicate with the engine by yielding *commands*:

- :class:`Timeout` — resume after a simulated delay,
- :class:`Event` — resume when the event is triggered (yield the event itself),
- another :class:`Process` — resume when that process completes (join).

Nested calls inside a process use plain ``yield from``, so only the primitive
commands above ever reach the engine.  Simulated time is a float in
**microseconds**; nothing in the engine reads the wall clock, which keeps every
simulation fully deterministic.

A process returns a value with a normal ``return`` statement; the value is
delivered to joiners and stored on :attr:`Process.result`.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Optional


class SimulationError(RuntimeError):
    """Raised for engine misuse (bad yields, running a finished engine, ...)."""


class Timeout:
    """Command: resume the yielding process after ``delay`` microseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay

    def _apply(self, engine: "Engine", process: "Process") -> None:
        # Inlined call_later: Timeout is the dominant event source (one per
        # simulated verb), so the extra call frame is worth shaving.
        heapq.heappush(
            engine._heap,
            (engine._now + self.delay, next(engine._sequence), process._step, ()),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay})"


class Event:
    """A one-shot condition processes can wait on.

    Yielding an event suspends the process until :meth:`trigger` is called.
    Waiting on an already-triggered event resumes immediately (same timestamp)
    with the triggered value.
    """

    __slots__ = ("_engine", "_triggered", "_value", "_waiters")

    def __init__(self, engine: "Engine"):
        self._engine = engine
        self._triggered = False
        self._value: Any = None
        self._waiters: list = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            engine = self._engine
            active = engine._active
            label = active.name if active is not None else "<no process>"
            raise SimulationError(
                f"event triggered twice (double resume at t={engine.now:.3f}us, "
                f"last active process {label!r})"
            )
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._engine.call_later(0.0, process._step, value)

    def _apply(self, engine: "Engine", process: "Process") -> None:
        if self._triggered:
            engine.call_later(0.0, process._step, self._value)
        else:
            self._waiters.append(process)


class Process:
    """A running generator inside the engine.

    Yield a process to join it: the joiner resumes with the process's return
    value once it finishes.  If the process raised, the exception propagates
    to joiners (and to :meth:`Engine.run` if nobody joined it).
    """

    __slots__ = (
        "engine", "_gen", "_send", "done", "result", "name", "_killed", "tid"
    )

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        self.engine = engine
        self._gen = gen
        # Bound-method cache: _step runs once per event, so one attribute
        # lookup saved here is millions saved per experiment.
        self._send = gen.send
        self.done = Event(engine)
        self.result: Any = None
        self.name = name or getattr(gen, "__name__", "process")
        self._killed = False
        #: Trace lane: a small engine-unique integer identifying this process
        #: in span traces (``repro.obs``).  Processes run strictly
        #: sequentially within themselves, so spans emitted under one tid are
        #: properly nested by construction; tid 0 is reserved for code
        #: running outside any process (harness, fault-plan annotations).
        self.tid = next(engine._tids)

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def killed(self) -> bool:
        return self._killed

    def kill(self) -> None:
        """Terminate the process at its current yield point (fault injection).

        Models a crashing client thread: the generator is closed where it
        stands, so ``finally`` blocks run (a held MN-side resource completes
        its service; purely client-local state is simply abandoned), any
        event the process was waiting on is ignored when it later fires, and
        joiners resume with ``None``.  Killing a finished process is a no-op.
        """
        if self._killed or self.done.triggered:
            return
        self._killed = True
        self._gen.close()
        self.done.trigger(None)

    def _step(self, value: Any = None) -> None:
        if self._killed:
            return  # a stale resume for a crashed process: drop it
        engine = self.engine
        engine._active = self
        try:
            command = self._send(value)
        except StopIteration as stop:
            self.result = stop.value
            self.done.trigger(stop.value)
            return
        except SimulationError as err:
            # Fault-injection bugs surface here (negative backoff timeouts,
            # resuming a killed-and-restarted process, ...); stamp the error
            # with where and when so they are traceable.
            raise SimulationError(
                f"{err} (at t={engine.now:.3f}us in process {self.name!r})"
            ) from err
        try:
            apply = command._apply
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded a non-command: {command!r}; "
                "did you forget 'yield from'?"
            ) from None
        apply(self.engine, self)

    def _apply(self, engine: "Engine", process: "Process") -> None:
        # Yielding a Process means "join it".
        self.done._apply(engine, process)


_INFINITY = float("inf")


class Engine:
    """The event loop: a time-ordered heap of callbacks."""

    __slots__ = ("_now", "_heap", "_sequence", "_active", "_tids")

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list = []
        self._sequence = itertools.count()
        #: Last process stepped — the label stamped onto SimulationErrors.
        self._active: Optional[Process] = None
        #: Trace-lane ids handed to processes (tid 0 = outside any process).
        self._tids = itertools.count(1)

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        if when < self._now:
            raise SimulationError(f"scheduling into the past: {when} < {self._now}")
        heapq.heappush(self._heap, (when, next(self._sequence), fn, args))

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        # Hot path: delays are non-negative by construction (Timeout checks),
        # so skip call_at's past-scheduling validation.
        heapq.heappush(
            self._heap, (self._now + delay, next(self._sequence), fn, args)
        )

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process; it takes its first step at the current time."""
        process = Process(self, gen, name)
        self.call_later(0.0, process._step)
        return process

    def _pump(self, until: float, stop: Optional[Event]) -> None:
        """The one pop-dispatch loop behind :meth:`run` and :meth:`run_process`.

        Drains events in time order until the heap empties, the next event
        would pass ``until``, or ``stop`` (a done-event) triggers.  Every
        optimization of the hot loop lives here and nowhere else.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if stop is not None and stop._triggered:
                return
            entry = heap[0]
            if entry[0] > until:
                return
            when, _seq, fn, args = pop(heap)
            self._now = when
            fn(*args)

    def run(self, until: Optional[float] = None) -> float:
        """Run queued events, optionally stopping once time would pass ``until``.

        Returns the simulated time at which the run stopped.  With ``until``
        set, the clock is advanced to exactly ``until`` even if the heap
        drained earlier, so repeated ``run(until=...)`` calls form a timeline.
        """
        self._pump(until if until is not None else _INFINITY, None)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn ``gen`` and run the engine until it completes.

        This is the *instant mode* used when the library is driven as an
        ordinary synchronous cache: simulated time still advances (latencies
        accumulate) but the caller blocks until the operation finishes.
        """
        process = self.spawn(gen, name)
        self._pump(_INFINITY, process.done)
        if not process.finished:
            raise SimulationError(
                f"deadlock: process {process.name!r} cannot complete"
            )
        return process.result
