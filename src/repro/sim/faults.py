"""Deterministic, seed-driven fault injection for the discrete-event engine.

A :class:`FaultPlan` is a declarative, JSON-serializable description of every
failure a simulation should suffer: verb drops and latency spikes at the RDMA
endpoint, memory-node outage windows, controller RPC failures, and
client-crash instants.  A :class:`FaultInjector` binds a plan to an engine and
answers point queries from the instrumented layers ("does this verb, issued
now against this node, fail?").

Determinism: probabilistic faults draw from a private ``random.Random`` seeded
by the plan, and draws happen only for verbs that match an active window — so
the same seed and the same plan produce the same fault sequence, independent
of wall clock, process boundaries, or any other randomness in the simulation.
Because the plan is plain data, it can ride inside experiment parameters and
therefore inside the on-disk result-cache key.

The injector is *consulted*, never *in control*: layers that can fail call
:meth:`FaultInjector.verb_outcome` at issue time and implement their own
failure semantics (timeouts, exceptions, retries).  With no injector attached
(the default everywhere), no fault code runs at all — the zero-overhead
healthy path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .engine import Engine

#: Outcome kinds returned by :meth:`FaultInjector.verb_outcome`.
OK, DROP, DOWN = 0, 1, 2

_INF = float("inf")


def _tuple_of(items: Sequence) -> Tuple:
    return tuple(items) if not isinstance(items, tuple) else items


@dataclass(frozen=True)
class DropWindow:
    """Verbs issued inside the window are lost with probability ``prob``.

    ``node_id``/``verbs`` of None match any node / any verb.  A dropped verb
    never reaches the NIC: the client observes silence and times out.
    """

    start_us: float
    end_us: float
    prob: float = 1.0
    node_id: Optional[int] = None
    verbs: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.end_us < self.start_us:
            raise ValueError(f"empty drop window: [{self.start_us}, {self.end_us})")
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {self.prob}")
        if self.verbs is not None:
            object.__setattr__(self, "verbs", _tuple_of(self.verbs))


@dataclass(frozen=True)
class LatencySpike:
    """Verbs issued inside the window pay ``extra_us`` before reaching the NIC
    (congestion, PFC pauses, a misbehaving switch)."""

    start_us: float
    end_us: float
    extra_us: float
    node_id: Optional[int] = None
    verbs: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.extra_us < 0:
            raise ValueError(f"negative latency spike: {self.extra_us}")
        if self.verbs is not None:
            object.__setattr__(self, "verbs", _tuple_of(self.verbs))


@dataclass(frozen=True)
class NodeOutage:
    """The memory node is unreachable for the window (crash-recovery cycle).

    The node's DRAM contents survive — the window models unreachability
    (NIC/link failure, controller reboot), not data loss.  Every verb against
    the node fails with ``NodeUnavailable`` after the verb timeout.
    """

    node_id: int
    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.end_us < self.start_us:
            raise ValueError(f"empty outage window: [{self.start_us}, {self.end_us})")


@dataclass(frozen=True)
class RpcFailure:
    """Controller RPCs inside the window fail with probability ``prob``
    (the weak controller CPU stalls or drops the request)."""

    start_us: float
    end_us: float
    prob: float = 1.0
    node_id: Optional[int] = None


@dataclass(frozen=True)
class ClientCrash:
    """Kill client ``client_index``'s driver at ``at_us``, mid-operation."""

    client_index: int
    at_us: float


@dataclass(frozen=True)
class ControllerCrash:
    """Controller replica ``replica_id`` is frozen for the window.

    Models a crash-recovery cycle of one replica of the replicated metadata
    service (``repro.core.consensus``): the replica neither sends nor
    receives messages and serves no client submissions while the window is
    open, but its persistent raft state (term, vote, log) survives — on
    recovery it rejoins as a follower and catches up.
    """

    replica_id: int
    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.end_us < self.start_us:
            raise ValueError(
                f"empty controller-crash window: [{self.start_us}, {self.end_us})"
            )


@dataclass(frozen=True)
class Partition:
    """Controller replicas in different ``groups`` cannot exchange messages.

    ``groups`` is a tuple of disjoint replica-id tuples; replicas not listed
    in any group form one implicit remainder group.  Within a group traffic
    flows normally.  Client-to-replica RPCs ride a separate (client-side)
    network and are unaffected — the classic raft partition exercises the
    replica-to-replica quorum, which is where split-brain would live.
    """

    start_us: float
    end_us: float
    groups: Tuple[Tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.end_us < self.start_us:
            raise ValueError(
                f"empty partition window: [{self.start_us}, {self.end_us})"
            )
        # Normalize nested sequences (JSON round-trips tuples into lists).
        object.__setattr__(
            self, "groups", tuple(_tuple_of(g) for g in self.groups)
        )
        seen = set()
        for group in self.groups:
            for rid in group:
                if rid in seen:
                    raise ValueError(f"replica {rid} in two partition groups")
                seen.add(rid)

    def group_of(self, replica_id: int) -> int:
        """Index of the group holding ``replica_id`` (-1 = remainder group)."""
        for index, group in enumerate(self.groups):
            if replica_id in group:
                return index
        return -1


_KINDS = {
    "drops": DropWindow,
    "spikes": LatencySpike,
    "outages": NodeOutage,
    "rpc_failures": RpcFailure,
    "client_crashes": ClientCrash,
    "controller_crashes": ControllerCrash,
    "partitions": Partition,
}


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one simulation, as plain data."""

    drops: Tuple[DropWindow, ...] = ()
    spikes: Tuple[LatencySpike, ...] = ()
    outages: Tuple[NodeOutage, ...] = ()
    rpc_failures: Tuple[RpcFailure, ...] = ()
    client_crashes: Tuple[ClientCrash, ...] = ()
    controller_crashes: Tuple[ControllerCrash, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _KINDS:
            object.__setattr__(self, name, _tuple_of(getattr(self, name)))

    @property
    def empty(self) -> bool:
        return not any(getattr(self, name) for name in _KINDS)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form, stable field order — cache-key material."""
        out: Dict[str, Any] = {"seed": self.seed}
        for name in _KINDS:
            out[name] = [vars(item).copy() for item in getattr(self, name)]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        kwargs: Dict[str, Any] = {"seed": data.get("seed", 0)}
        for name, kind in _KINDS.items():
            items = data.get(name) or ()
            kwargs[name] = tuple(
                item if isinstance(item, kind) else kind(**item) for item in items
            )
        return cls(**kwargs)

    def shifted(self, offset_us: float) -> "FaultPlan":
        """The same plan with every window/instant moved by ``offset_us``.

        Experiments build plans relative to t=0 and shift them to "now" once
        warmup is done, so plan contents stay independent of warmup length.
        """
        return FaultPlan(
            drops=tuple(
                DropWindow(w.start_us + offset_us, w.end_us + offset_us, w.prob,
                           w.node_id, w.verbs)
                for w in self.drops
            ),
            spikes=tuple(
                LatencySpike(s.start_us + offset_us, s.end_us + offset_us,
                             s.extra_us, s.node_id, s.verbs)
                for s in self.spikes
            ),
            outages=tuple(
                NodeOutage(o.node_id, o.start_us + offset_us, o.end_us + offset_us)
                for o in self.outages
            ),
            rpc_failures=tuple(
                RpcFailure(r.start_us + offset_us, r.end_us + offset_us, r.prob,
                           r.node_id)
                for r in self.rpc_failures
            ),
            client_crashes=tuple(
                ClientCrash(c.client_index, c.at_us + offset_us)
                for c in self.client_crashes
            ),
            controller_crashes=tuple(
                ControllerCrash(
                    c.replica_id, c.start_us + offset_us, c.end_us + offset_us
                )
                for c in self.controller_crashes
            ),
            partitions=tuple(
                Partition(p.start_us + offset_us, p.end_us + offset_us, p.groups)
                for p in self.partitions
            ),
            seed=self.seed,
        )


#: Plan kinds the wall-clock chaos layer (``repro.runtime.chaos``) can
#: execute 1:1.  The rest are sim-only: client crashes need the engine's
#: ability to kill a driver mid-yield, and controller crashes/partitions
#: target the replicated metadata service, which the real substrate runs
#: in the launcher process.
WALL_KINDS = ("drops", "spikes", "outages", "rpc_failures")


def compile_wall(
    plan: FaultPlan, time_scale: float = 1.0
) -> Tuple[FaultPlan, Tuple[str, ...]]:
    """Compile a sim-time plan into a wall-clock schedule.

    The compilation rule is a single multiplication: every time quantity
    (window starts/ends *and* spike ``extra_us``) is scaled by
    ``time_scale``, turning simulated microseconds into wall-clock
    microseconds relative to the instant the chaos gates are armed.  A
    sim plan authored against a ~30 ms simulated run replays against a
    ~1.5 s wall-clock loadgen with ``time_scale=50`` — same windows,
    same seed, same relative ordering.

    Returns ``(wall_plan, dropped_kinds)``; ``dropped_kinds`` names the
    sim-only fault kinds (see :data:`WALL_KINDS`) the wall layer cannot
    execute, so callers can refuse or warn instead of silently ignoring
    them.  Pure data-to-data: nothing here touches the engine, so sim
    runs stay byte-identical.
    """
    if time_scale <= 0.0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    dropped = tuple(
        name for name in _KINDS
        if name not in WALL_KINDS and getattr(plan, name)
    )
    scale = time_scale
    wall = FaultPlan(
        drops=tuple(
            DropWindow(w.start_us * scale, w.end_us * scale, w.prob,
                       w.node_id, w.verbs)
            for w in plan.drops
        ),
        spikes=tuple(
            LatencySpike(s.start_us * scale, s.end_us * scale,
                         s.extra_us * scale, s.node_id, s.verbs)
            for s in plan.spikes
        ),
        outages=tuple(
            NodeOutage(o.node_id, o.start_us * scale, o.end_us * scale)
            for o in plan.outages
        ),
        rpc_failures=tuple(
            RpcFailure(r.start_us * scale, r.end_us * scale, r.prob,
                       r.node_id)
            for r in plan.rpc_failures
        ),
        seed=plan.seed,
    )
    return wall, dropped


class FaultInjector:
    """A :class:`FaultPlan` armed against a live engine.

    Construct with ``plan=None`` (or an empty plan) for an inert injector that
    layers can hold without any fault firing; :meth:`load` arms a plan later
    (optionally shifted to the current simulated time), which is how
    experiments inject failures only after warmup.
    """

    #: Trace lanes for fault windows start here; windows may overlap, so each
    #: gets its own lane (mirrors ``repro.obs.trace.FAULT_TID_BASE`` — sim
    #: never imports obs, so the constant is stated on both sides).
    TRACE_TID_BASE = 1_000_000

    def __init__(self, engine: Engine, plan: Optional[FaultPlan] = None):
        self.engine = engine
        self.plan = FaultPlan()
        self.rng = random.Random(0)
        self._drops: Tuple[DropWindow, ...] = ()
        self._spikes: Tuple[LatencySpike, ...] = ()
        self._outages: Tuple[NodeOutage, ...] = ()
        self._controller_crashes: Tuple[ControllerCrash, ...] = ()
        self._partitions: Tuple[Partition, ...] = ()
        self._active_until = -_INF  # fast no-fault path: nothing before this
        self._active_from = _INF
        #: Span tracer (repro.obs); None keeps load() annotation-free.
        self.tracer = None
        self._trace_lanes = 0  # lanes consumed by earlier load() calls
        if plan is not None:
            self.load(plan)

    def load(self, plan: FaultPlan, offset_us: float = 0.0) -> None:
        """(Re)arm the injector with ``plan``, shifted by ``offset_us``."""
        if offset_us:
            plan = plan.shifted(offset_us)
        self.plan = plan
        self.rng = random.Random(plan.seed)
        # Controller RPC failures are verb drops scoped to the "rpc" verb:
        # the request (or its response) vanishes and the client times out.
        self._drops = plan.drops + tuple(
            DropWindow(r.start_us, r.end_us, r.prob, r.node_id, ("rpc",))
            for r in plan.rpc_failures
        )
        self._spikes = plan.spikes
        self._outages = plan.outages
        # Controller faults never touch verb_outcome, so they stay out of
        # the verb fast-path window below — consensus consults them through
        # its own point queries.
        self._controller_crashes = plan.controller_crashes
        self._partitions = plan.partitions
        windows = [
            (w.start_us, w.end_us)
            for w in (*self._drops, *self._spikes, *self._outages)
        ]
        self._active_from = min((s for s, _ in windows), default=_INF)
        self._active_until = max((e for _, e in windows), default=-_INF)
        if not plan.empty:
            # Fault outcomes are consulted per verb at resume time; keep
            # the whole run on the scalar event loop (an inert injector
            # leaves storm mode available).
            self.engine.disable_batch("faults")
        if self.tracer is not None and not plan.empty:
            self._annotate_plan(plan)

    def _annotate_plan(self, plan: FaultPlan) -> None:
        """Emit the armed plan's windows as trace spans (repro.obs).

        Windows may overlap in time, so each gets a private lane above
        :attr:`TRACE_TID_BASE` — lanes are cheap and keep the per-lane
        nesting invariant intact.  Crash instants share one marker lane.
        """
        tracer = self.tracer
        windows = [
            ("fault.drop", {"prob": w.prob, "node": w.node_id}, w)
            for w in plan.drops
        ] + [
            ("fault.rpc_failure", {"prob": r.prob, "node": r.node_id}, r)
            for r in plan.rpc_failures
        ] + [
            ("fault.spike", {"extra_us": s.extra_us, "node": s.node_id}, s)
            for s in plan.spikes
        ] + [
            ("fault.outage", {"node": o.node_id}, o)
            for o in plan.outages
        ] + [
            ("fault.controller_crash", {"replica": c.replica_id}, c)
            for c in plan.controller_crashes
        ] + [
            ("fault.partition", {"groups": [list(g) for g in p.groups]}, p)
            for p in plan.partitions
        ]
        for name, args, window in windows:
            tid = self.TRACE_TID_BASE + self._trace_lanes
            self._trace_lanes += 1
            tracer.name_lane(tid, name)
            tracer.complete_at(
                name, "fault", window.start_us,
                window.end_us - window.start_us, tid=tid, args=args,
            )
        if plan.client_crashes:
            tid = self.TRACE_TID_BASE + self._trace_lanes
            self._trace_lanes += 1
            tracer.name_lane(tid, "fault.client_crash")
            for crash in plan.client_crashes:
                tracer.instant_at(
                    "fault.client_crash", "fault", crash.at_us, tid=tid,
                    args={"client": crash.client_index},
                )

    # -- point queries ------------------------------------------------------

    def node_down(self, node_id: int, now: Optional[float] = None) -> bool:
        if now is None:
            now = self.engine.now
        for outage in self._outages:
            if outage.node_id == node_id and outage.start_us <= now < outage.end_us:
                return True
        return False

    def controller_down(self, replica_id: int, now: Optional[float] = None) -> bool:
        """Is consensus replica ``replica_id`` inside a crash window *now*?"""
        if now is None:
            now = self.engine.now
        for crash in self._controller_crashes:
            if (
                crash.replica_id == replica_id
                and crash.start_us <= now < crash.end_us
            ):
                return True
        return False

    def link_cut(self, a: int, b: int, now: Optional[float] = None) -> bool:
        """Are replicas ``a`` and ``b`` on opposite sides of a partition?"""
        if not self._partitions:
            return False
        if now is None:
            now = self.engine.now
        for p in self._partitions:
            if p.start_us <= now < p.end_us and p.group_of(a) != p.group_of(b):
                return True
        return False

    def verb_outcome(self, node_id: int, verb: str) -> Tuple[int, float]:
        """Fate of one verb issued *now*: ``(kind, extra_lead_us)``.

        ``kind`` is OK / DROP / DOWN.  Probabilistic drops consume one RNG
        draw per *matching* verb, so plans that never match a verb leave the
        fault RNG untouched.
        """
        now = self.engine.now
        if not self._active_from <= now < self._active_until:
            return OK, 0.0
        for outage in self._outages:
            if outage.node_id == node_id and outage.start_us <= now < outage.end_us:
                return DOWN, 0.0
        for w in self._drops:
            if (
                w.start_us <= now < w.end_us
                and (w.node_id is None or w.node_id == node_id)
                and (w.verbs is None or verb in w.verbs)
                and (w.prob >= 1.0 or self.rng.random() < w.prob)
            ):
                return DROP, 0.0
        extra = 0.0
        for s in self._spikes:
            if (
                s.start_us <= now < s.end_us
                and (s.node_id is None or s.node_id == node_id)
                and (s.verbs is None or verb in s.verbs)
            ):
                extra += s.extra_us
        return OK, extra


__all__ = [
    "OK",
    "DROP",
    "DOWN",
    "ClientCrash",
    "ControllerCrash",
    "DropWindow",
    "FaultInjector",
    "FaultPlan",
    "LatencySpike",
    "NodeOutage",
    "Partition",
    "RpcFailure",
    "WALL_KINDS",
    "compile_wall",
]
