"""Contended resources for the simulation engine.

Two shapes cover every bottleneck in the reproduction:

- :class:`Resource` — ``capacity`` identical servers with a FIFO wait queue.
  Models CPU cores on memory nodes and Redis servers.
- :class:`RateLimiter` — a single FIFO pipe where each job occupies the pipe
  for a job-specific service time.  Models the RNIC message processing rate:
  the NIC handles one message every ``1/rate`` microseconds, and queueing
  delay emerges when offered load exceeds the rate.

Both support live capacity changes, which is how elasticity experiments add
and remove CPU cores mid-run.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from .engine import Engine, Event, SimulationError, Timeout


class Resource:
    """``capacity`` interchangeable servers with a FIFO queue.

    Usage inside a process::

        yield from resource.acquire()
        try:
            yield Timeout(service_time)
        finally:
            resource.release()

    or the one-shot helper ``yield from resource.serve(service_time)``.
    """

    __slots__ = ("engine", "_capacity", "_in_use", "_waiters")

    def __init__(self, engine: Engine, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self._capacity = capacity
        self._in_use = 0
        self._waiters: deque = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def set_capacity(self, capacity: int) -> None:
        """Adjust the number of servers at runtime.

        Growing wakes queued waiters immediately; shrinking lets busy servers
        drain naturally (releases stop handing slots to waiters until the
        in-use count falls below the new capacity).
        """
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        while self._waiters and self._in_use < self._capacity:
            event = self._waiters.popleft()
            self._in_use += 1
            event.trigger()

    def sample(self) -> dict:
        """Point-in-time utilization snapshot (``repro.obs`` timelines)."""
        capacity = self._capacity
        return {
            "in_use": self._in_use,
            "capacity": capacity,
            "queue": len(self._waiters),
            "utilization": self._in_use / capacity if capacity else 0.0,
        }

    def acquire(self) -> Generator:
        if self._in_use < self._capacity:
            self._in_use += 1
            return
        event = Event(self.engine)
        self._waiters.append(event)
        try:
            yield event
        except GeneratorExit:
            # The acquiring process was killed (fault injection) while
            # queued.  Leaving the waiter behind would strand a server slot
            # forever when a release hands it to us: either pass a slot we
            # were just granted straight on, or step out of the queue.
            if event.triggered:
                self.release()
            else:
                self._waiters.remove(event)
            raise

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without acquire")
        if self._waiters and self._in_use <= self._capacity:
            # Hand the slot directly to the next waiter; in_use is unchanged.
            event = self._waiters.popleft()
            event.trigger()
        else:
            self._in_use -= 1

    def serve(self, service_time: float) -> Generator:
        """Acquire a server, hold it for ``service_time``, release it."""
        yield from self.acquire()
        try:
            yield Timeout(service_time)
        finally:
            self.release()


class RateLimiter:
    """A FIFO serial pipe: each job occupies it for its own service time.

    Unlike :class:`Resource`, the service time is supplied per job, which lets
    one NIC model charge different costs for READ vs CAS vs RPC messages.
    ``parallelism`` models NIC processing units (default 1 keeps the classic
    single-queue behaviour).

    Implementation: virtual-time scheduling.  A FIFO c-server queue is fully
    determined by per-server "free at" times, so a job arriving at ``now``
    starts at ``max(now, earliest_free)`` and the whole wait+service collapses
    into a single Timeout — an exact equivalence that removes per-job queue
    events from the hot path (the MN NIC serves millions of simulated
    messages per experiment).
    """

    __slots__ = ("engine", "_free_at", "messages")

    def __init__(self, engine: Engine, parallelism: int = 1):
        if parallelism < 1:
            raise SimulationError(f"parallelism must be >= 1, got {parallelism}")
        self.engine = engine
        self._free_at = [0.0] * parallelism
        self.messages = 0  # total jobs served, for message-rate accounting

    @property
    def backlog_us(self) -> float:
        """How far the pipe is booked beyond the current time."""
        busiest = max(self._free_at)
        now = self.engine.now
        return busiest - now if busiest > now else 0.0

    def set_parallelism(self, parallelism: int) -> None:
        if parallelism < 1:
            raise SimulationError(f"parallelism must be >= 1, got {parallelism}")
        now = self.engine.now
        current = self._free_at
        if parallelism > len(current):
            current.extend([now] * (parallelism - len(current)))
        else:
            # Keep the *busiest* (largest free-at) slots: work already booked
            # on the pipe must survive an elasticity shrink.  Dropping the
            # largest times instead would silently cancel queued service.
            current.sort()
            self._free_at = current[len(current) - parallelism :]

    def book(
        self, service_time: float, lead_us: float = 0.0, lag_us: float = 0.0
    ) -> float:
        """Book the pipe; returns the delay from *now* until service is done.

        ``lead_us`` models time before the job reaches the pipe (client
        overhead + network flight) and ``lag_us`` time after service (the
        response flight); both are folded into the booking math so the whole
        verb costs a single engine event.  Callers yield
        ``Timeout(book(...))`` directly — the verb layer does this to avoid a
        nested generator per message on the hot path.
        """
        self.messages += 1
        now = self.engine._now
        arrival = now + lead_us
        free_at = self._free_at
        slot = 0
        earliest = free_at[0]
        if len(free_at) > 1:
            for i, t in enumerate(free_at):
                if t < earliest:
                    earliest, slot = t, i
        start = earliest if earliest > arrival else arrival
        finish = start + service_time
        free_at[slot] = finish
        return finish + lag_us - now

    def book_burst(
        self,
        service_time: float,
        count: int,
        lead_us: float = 0.0,
        lag_us: float = 0.0,
    ) -> float:
        """Book ``count`` back-to-back jobs of one cost; returns the delay
        from *now* until the last job's service is done.

        Models doorbell batching: all jobs arrive at the pipe together
        (one lead), occupy it for ``count * service_time``, and signal one
        completion after the last (one lag).  For a single-slot pipe this is
        closed-form — one booking, one engine event, regardless of
        ``count``; multi-slot pipes fall back to ``count`` sequential
        bookings (still a single Timeout for the caller).
        """
        if count <= 0:
            raise SimulationError(f"burst count must be >= 1, got {count}")
        free_at = self._free_at
        if len(free_at) > 1:
            delay = 0.0
            for _ in range(count):
                delay = self.book(service_time, lead_us, lag_us)
            return delay
        self.messages += count
        now = self.engine._now
        arrival = now + lead_us
        earliest = free_at[0]
        start = earliest if earliest > arrival else arrival
        finish = start + service_time * count
        free_at[0] = finish
        return finish + lag_us - now

    def serve(
        self, service_time: float, lead_us: float = 0.0, lag_us: float = 0.0
    ) -> Generator:
        """Generator form of :meth:`book` (queue for the pipe, resume when
        served); kept for non-hot-path callers and tests."""
        yield Timeout(self.book(service_time, lead_us, lag_us))

    def sample(self) -> dict:
        """Point-in-time pipe snapshot (``repro.obs`` timelines).

        ``busy_slots`` counts processing units currently booked past *now* —
        the NIC-slot occupancy the utilization timeline plots.
        """
        now = self.engine._now
        free_at = self._free_at
        busy = sum(1 for t in free_at if t > now)
        return {
            "backlog_us": self.backlog_us,
            "busy_slots": busy,
            "slots": len(free_at),
            "messages": self.messages,
        }


class Lock:
    """A simple FIFO mutex for *local* (same compute node) coordination.

    Remote locks on disaggregated memory are modelled faithfully as CAS loops
    on memory words (see ``repro.baselines.shard_lru``); this class only
    protects state shared by co-located simulated threads.
    """

    __slots__ = ("_resource",)

    def __init__(self, engine: Engine):
        self._resource = Resource(engine, 1)

    @property
    def locked(self) -> bool:
        return self._resource.in_use > 0

    def acquire(self) -> Generator:
        yield from self._resource.acquire()

    def release(self) -> None:
        self._resource.release()

    def sample(self) -> dict:
        """Point-in-time lock snapshot: held? how many waiters (lock wait)."""
        return {
            "locked": 1 if self.locked else 0,
            "waiters": self._resource.queue_length,
        }
