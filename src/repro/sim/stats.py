"""Measurement utilities: latency distributions and throughput time series."""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class LatencyStats:
    """Collects individual latency samples (microseconds) for percentiles."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, latency_us: float) -> None:
        self._samples.append(latency_us)

    def extend(self, latencies: Iterable[float]) -> None:
        self._samples.extend(latencies)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.mean(self._samples))

    def percentile(self, p: float) -> float:
        """p in [0, 100]; e.g. ``percentile(99)`` is the tail latency."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(self._samples, p))

    def median(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.median(),
            "p99": self.p99(),
        }

    def reset(self) -> None:
        self._samples.clear()


class ThroughputSeries:
    """Bucketed completion counter: turns completion timestamps into Mops/s.

    ``bucket_us`` is the bucket width in microseconds.  ``series()`` returns
    ``(bucket_start_us, ops_per_second)`` pairs covering the recorded span.
    """

    def __init__(self, bucket_us: float = 1_000_000.0):
        if bucket_us <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_us = bucket_us
        self._buckets: Dict[int, int] = {}
        self.total = 0

    def record(self, timestamp_us: float, count: int = 1) -> None:
        index = int(timestamp_us // self.bucket_us)
        self._buckets[index] = self._buckets.get(index, 0) + count
        self.total += count

    def series(self) -> List[Tuple[float, float]]:
        if not self._buckets:
            return []
        lo = min(self._buckets)
        hi = max(self._buckets)
        scale = 1e6 / self.bucket_us  # bucket count -> ops/second
        return [
            (index * self.bucket_us, self._buckets.get(index, 0) * scale)
            for index in range(lo, hi + 1)
        ]

    def ops_per_second(
        self, start_us: Optional[float] = None, end_us: Optional[float] = None
    ) -> float:
        """Average throughput over [start_us, end_us) (whole span by default)."""
        points = self.series()
        if not points:
            return 0.0
        selected = [
            rate
            for t, rate in points
            if (start_us is None or t >= start_us)
            and (end_us is None or t < end_us)
        ]
        if not selected:
            return 0.0
        return float(np.mean(selected))


class CounterSet:
    """Named monotonically increasing counters (RDMA ops, hits, misses...)."""

    def __init__(self) -> None:
        # defaultdict keeps the per-verb accounting hot path to one dict op.
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"CounterSet({body})"


def hit_rate(hits: int, misses: int) -> float:
    """Fraction of lookups that hit; 0.0 for an empty run."""
    total = hits + misses
    if total == 0:
        return 0.0
    return hits / total


def relative_change(values: Sequence[float]) -> float:
    """Paper's relative hit-rate change: (max - min) / max (0 if degenerate)."""
    if not values:
        return 0.0
    top = max(values)
    if top <= 0 or math.isnan(top):
        return 0.0
    return (top - min(values)) / top
