"""Measurement utilities: latency distributions and throughput time series."""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class StreamingHistogram:
    """Bounded-memory value distribution with approximate percentiles.

    Log-spaced buckets with ``growth`` ratio between edges bound the relative
    quantile error to about ``growth - 1`` (2% by default) while using a fixed
    ~1.4k-int bucket array regardless of sample count — the HDR-histogram
    construction rack-scale simulators use for per-event latency streams.
    Values at or below ``lo`` land in an underflow bucket; values above ``hi``
    in an overflow bucket.  Exact ``min``/``max``/``sum`` are tracked on the
    side so extreme percentiles stay sharp.
    """

    __slots__ = ("lo", "growth", "count", "total", "_log_growth", "_min",
                 "_max", "_buckets")

    def __init__(self, lo: float = 1e-3, hi: float = 1e9, growth: float = 1.02):
        if lo <= 0 or hi <= lo:
            raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
        if growth <= 1.0:
            raise ValueError(f"bucket growth must exceed 1, got {growth}")
        self.lo = lo
        self.growth = growth
        self._log_growth = math.log(growth)
        nbuckets = int(math.ceil(math.log(hi / lo) / self._log_growth)) + 2
        self._buckets = [0] * nbuckets
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, value: float, count: int = 1) -> None:
        if value <= self.lo:
            index = 0
        else:
            index = int(math.log(value / self.lo) / self._log_growth) + 1
            if index >= len(self._buckets):
                index = len(self._buckets) - 1
        self._buckets[index] += count
        self.count += count
        self.total += value * count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other`` (same geometry) into this histogram."""
        if (other.lo, other.growth, len(other._buckets)) != (
            self.lo, self.growth, len(self._buckets)
        ):
            raise ValueError("cannot merge histograms with different geometry")
        for i, n in enumerate(other._buckets):
            if n:
                self._buckets[i] += n
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def min(self) -> float:
        return self._min if self.count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")

    def mean(self) -> float:
        if not self.count:
            return float("nan")
        return self.total / self.count

    def percentile(self, p: float) -> float:
        """p in [0, 100]; approximate within one bucket's relative width."""
        if not self.count:
            return float("nan")
        rank = (p / 100.0) * (self.count - 1)
        cumulative = 0
        for index, n in enumerate(self._buckets):
            if not n:
                continue
            cumulative += n
            if cumulative > rank:
                if index == 0:
                    estimate = self.lo
                else:
                    # Geometric midpoint of the bucket's edges.
                    lower = self.lo * self.growth ** (index - 1)
                    estimate = lower * math.sqrt(self.growth)
                return min(max(estimate, self._min), self._max)
        return self._max

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def reset(self) -> None:
        for i in range(len(self._buckets)):
            self._buckets[i] = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf


class LatencyStats:
    """Collects latency samples (microseconds) for percentiles.

    Small series keep every sample and report exact percentiles (numpy's
    linear interpolation, the semantics every experiment table was built on).
    Once ``exact_limit`` samples accumulate, the series spills into a
    :class:`StreamingHistogram`, bounding memory for full-scale runs where a
    measurement window can hold millions of completions.
    """

    #: Samples kept exactly before spilling to the streaming histogram (2 MB
    #: of floats at most; quick-scale experiment windows stay comfortably
    #: below this, keeping their outputs exact and byte-stable).
    EXACT_LIMIT = 262_144

    def __init__(self, exact_limit: Optional[int] = None) -> None:
        self._samples: List[float] = []
        self._hist: Optional[StreamingHistogram] = None
        self._exact_limit = self.EXACT_LIMIT if exact_limit is None else exact_limit

    def _spill(self) -> None:
        hist = StreamingHistogram()
        hist.extend(self._samples)
        self._samples.clear()
        self._hist = hist

    def record(self, latency_us: float) -> None:
        if self._hist is not None:
            self._hist.record(latency_us)
            return
        self._samples.append(latency_us)
        if len(self._samples) >= self._exact_limit:
            self._spill()

    def extend(self, latencies: Iterable[float]) -> None:
        if self._hist is not None:
            self._hist.extend(latencies)
            return
        self._samples.extend(latencies)
        if len(self._samples) >= self._exact_limit:
            self._spill()

    @property
    def exact(self) -> bool:
        """True while every sample is retained (exact percentiles)."""
        return self._hist is None

    def __len__(self) -> int:
        return self.count

    @property
    def count(self) -> int:
        if self._hist is not None:
            return self._hist.count
        return len(self._samples)

    def mean(self) -> float:
        if self._hist is not None:
            return self._hist.mean()
        if not self._samples:
            return float("nan")
        return float(np.mean(self._samples))

    def percentile(self, p: float) -> float:
        """p in [0, 100]; e.g. ``percentile(99)`` is the tail latency."""
        if self._hist is not None:
            return self._hist.percentile(p)
        if not self._samples:
            return float("nan")
        return float(np.percentile(self._samples, p))

    def median(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.median(),
            "p99": self.p99(),
        }

    def reset(self) -> None:
        self._samples.clear()
        self._hist = None


class ThroughputSeries:
    """Bucketed completion counter: turns completion timestamps into Mops/s.

    ``bucket_us`` is the bucket width in microseconds.  ``series()`` returns
    ``(bucket_start_us, ops_per_second)`` pairs covering the recorded span.
    """

    def __init__(self, bucket_us: float = 1_000_000.0):
        if bucket_us <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_us = bucket_us
        self._buckets: Dict[int, int] = {}
        self.total = 0

    def record(self, timestamp_us: float, count: int = 1) -> None:
        index = int(timestamp_us // self.bucket_us)
        self._buckets[index] = self._buckets.get(index, 0) + count
        self.total += count

    def series(self) -> List[Tuple[float, float]]:
        if not self._buckets:
            return []
        lo = min(self._buckets)
        hi = max(self._buckets)
        scale = 1e6 / self.bucket_us  # bucket count -> ops/second
        return [
            (index * self.bucket_us, self._buckets.get(index, 0) * scale)
            for index in range(lo, hi + 1)
        ]

    def ops_per_second(
        self, start_us: Optional[float] = None, end_us: Optional[float] = None
    ) -> float:
        """Average throughput over [start_us, end_us) (whole span by default)."""
        points = self.series()
        if not points:
            return 0.0
        selected = [
            rate
            for t, rate in points
            if (start_us is None or t >= start_us)
            and (end_us is None or t < end_us)
        ]
        if not selected:
            return 0.0
        return float(np.mean(selected))


class CounterSet:
    """Named monotonically increasing counters (RDMA ops, hits, misses...)."""

    def __init__(self) -> None:
        # defaultdict keeps the per-verb accounting hot path to one dict op.
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"CounterSet({body})"


def hit_rate(hits: int, misses: int) -> float:
    """Fraction of lookups that hit; 0.0 for an empty run."""
    total = hits + misses
    if total == 0:
        return 0.0
    return hits / total


def relative_change(values: Sequence[float]) -> float:
    """Paper's relative hit-rate change: (max - min) / max (0 if degenerate)."""
    if not values:
        return 0.0
    top = max(values)
    if top <= 0 or math.isnan(top):
        return 0.0
    return (top - min(values)) / top
