"""Workload generation: YCSB, synthetic real-world-like traces, concurrency."""

from .interleave import (
    concurrent_view,
    interleave_shards,
    mix_traces,
    offset_keys,
    shard_trace,
)
from .traces import (
    TraceSpec,
    WORKLOAD_CATALOG,
    corpus,
    footprint,
    looping_trace,
    phase_switch_trace,
    scan_polluted_trace,
    shifting_hotspot_trace,
    webmail_like_trace,
    zipfian_trace,
)
from .ycsb import YCSB_MIXES, YCSBConfig, YCSBWorkload, make_ycsb
from .zipf import LatestGenerator, UniformGenerator, ZipfianGenerator

__all__ = [
    "LatestGenerator",
    "TraceSpec",
    "UniformGenerator",
    "WORKLOAD_CATALOG",
    "YCSBConfig",
    "YCSBWorkload",
    "YCSB_MIXES",
    "ZipfianGenerator",
    "concurrent_view",
    "corpus",
    "footprint",
    "interleave_shards",
    "looping_trace",
    "make_ycsb",
    "mix_traces",
    "offset_keys",
    "phase_switch_trace",
    "scan_polluted_trace",
    "shard_trace",
    "shifting_hotspot_trace",
    "webmail_like_trace",
    "zipfian_trace",
]
