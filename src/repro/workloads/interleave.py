"""Modelling concurrency effects on access patterns (paper §3.2).

Two mechanisms change what the cache *sees* when compute resources change:

1. Several applications with different patterns share the cache; the overall
   mixture shifts with each application's client count
   (:func:`mix_traces` — Figures 3 and 20).
2. One application's trace is sharded across its client threads and their
   executions interleave, perturbing the original ordering
   (:func:`shard_and_interleave` — Figures 5 and 21).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def offset_keys(trace: np.ndarray, offset: int) -> np.ndarray:
    """Shift a trace into a disjoint key range (for multi-app mixes)."""
    return np.asarray(trace, dtype=np.int64) + offset


def mix_traces(
    traces: Sequence[np.ndarray],
    weights: Sequence[float],
    n_requests: int,
    seed: int = 0,
) -> np.ndarray:
    """Merge traces by drawing the next source i.i.d. with ``weights``.

    Each source's internal order is preserved (it models an application
    replaying its own request stream); a source that runs dry is recycled
    from its start.  Weights are proportional to the applications' client
    counts in the paper's compute-scaling experiments.
    """
    if len(traces) != len(weights):
        raise ValueError("traces and weights must align")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    probs = np.asarray(weights, dtype=np.float64) / total
    rng = np.random.default_rng(seed)
    sources = [np.asarray(t, dtype=np.int64) for t in traces]
    cursors = [0] * len(sources)
    picks = rng.choice(len(sources), size=n_requests, p=probs)
    out = np.empty(n_requests, dtype=np.int64)
    for i, src_idx in enumerate(picks):
        src = sources[src_idx]
        out[i] = src[cursors[src_idx] % len(src)]
        cursors[src_idx] += 1
    return out


def shard_trace(trace: np.ndarray, n_shards: int) -> List[np.ndarray]:
    """Split a trace into contiguous per-client shards (the paper's loading
    scheme: clients replay disjoint trace portions)."""
    if n_shards < 1:
        raise ValueError("need at least one shard")
    return [np.asarray(s, dtype=np.int64) for s in np.array_split(trace, n_shards)]


def interleave_shards(
    shards: Sequence[np.ndarray], mode: str = "round_robin", seed: int = 0
) -> np.ndarray:
    """Merge per-client shards into the stream the shared cache observes.

    ``round_robin`` models lock-step clients; ``random`` models free-running
    clients (each step, a uniformly random client issues its next request).
    """
    sources = [np.asarray(s, dtype=np.int64) for s in shards if len(s)]
    if not sources:
        return np.empty(0, dtype=np.int64)
    total = sum(len(s) for s in sources)
    out = np.empty(total, dtype=np.int64)
    if mode == "round_robin":
        cursors = [0] * len(sources)
        produced = 0
        while produced < total:
            for idx, src in enumerate(sources):
                if cursors[idx] < len(src):
                    out[produced] = src[cursors[idx]]
                    cursors[idx] += 1
                    produced += 1
    elif mode == "random":
        rng = np.random.default_rng(seed)
        cursors = [0] * len(sources)
        live = list(range(len(sources)))
        produced = 0
        while live:
            pick = live[int(rng.integers(0, len(live)))]
            out[produced] = sources[pick][cursors[pick]]
            cursors[pick] += 1
            produced += 1
            if cursors[pick] >= len(sources[pick]):
                live.remove(pick)
    else:
        raise ValueError(f"unknown interleave mode {mode!r}")
    return out


def concurrent_view(trace: np.ndarray, n_clients: int, mode: str = "random", seed: int = 0) -> np.ndarray:
    """Shard a trace over ``n_clients`` and interleave: what the cache sees
    when the application scales to ``n_clients`` threads."""
    if n_clients <= 1:
        return np.asarray(trace, dtype=np.int64)
    return interleave_shards(shard_trace(trace, n_clients), mode=mode, seed=seed)
