"""Synthetic equivalents of the paper's real-world traces (Table 2).

The proprietary IBM / CloudPhysics / Twitter / FIU traces are not
redistributable, so each family is replaced by a generator that reproduces
the statistical property the experiments exercise — controllable LRU/LFU
affinity and affinity *changes*:

- ``zipfian_trace`` — stable popularity: frequency is a reliable signal, so
  **LFU-friendly** (object-store / storage-cache style).
- ``shifting_hotspot_trace`` — a hot working set that drifts across the key
  space: recency is the reliable signal, so **LRU-friendly** (transient
  key-value cache style).
- ``scan_polluted_trace`` — Zipfian traffic with periodic sequential scans
  that flush recency-based caches: strongly LFU-friendly (block-IO style).
- ``looping_trace`` — cyclic accesses larger than the cache (LRU's
  pathological case; MRU's best case).
- ``phase_switch_trace`` — alternates LRU- and LFU-friendly phases
  (the Figure 19 changing workload).
- ``webmail_like_trace`` — a mixture with drift, a stable popular core, and
  occasional scans, standing in for the FIU ``webmail`` trace used
  throughout §5.4-§5.6.

A seeded :func:`corpus` manufactures the "74 real-world workloads" /
"33 IBM + CloudPhysics workloads" populations used by Figures 5 and 18.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .zipf import ZipfianGenerator


def zipfian_trace(
    n_requests: int, n_keys: int, theta: float = 1.0, seed: int = 0
) -> np.ndarray:
    """Stable Zipfian popularity (LFU-friendly)."""
    return ZipfianGenerator(n_keys, theta=theta, seed=seed).sample(n_requests)


def shifting_hotspot_trace(
    n_requests: int,
    n_keys: int,
    working_set: int = 512,
    dwell: int = 2000,
    shift: int = 128,
    inner_theta: float = 0.6,
    seed: int = 0,
) -> np.ndarray:
    """A drifting hot window (LRU-friendly).

    Every ``dwell`` requests the window of ``working_set`` keys advances by
    ``shift``; requests inside the window are mildly skewed.
    """
    rng = np.random.default_rng(seed)
    inner = ZipfianGenerator(working_set, theta=inner_theta, seed=seed + 1)
    out = np.empty(n_requests, dtype=np.int64)
    base = 0
    produced = 0
    while produced < n_requests:
        batch = min(dwell, n_requests - produced)
        offsets = inner.sample(batch)
        jitter = rng.permutation(working_set)
        out[produced : produced + batch] = (base + jitter[offsets]) % n_keys
        produced += batch
        base = (base + shift) % n_keys
    return out


def scan_polluted_trace(
    n_requests: int,
    n_keys: int,
    theta: float = 1.0,
    scan_every: int = 5000,
    scan_len: int = 1500,
    seed: int = 0,
) -> np.ndarray:
    """Zipfian traffic with periodic sequential scans (strongly LFU-friendly)."""
    rng = np.random.default_rng(seed)
    zipf = ZipfianGenerator(n_keys, theta=theta, seed=seed + 1)
    out = np.empty(n_requests, dtype=np.int64)
    produced = 0
    scan_base = 0
    while produced < n_requests:
        batch = min(scan_every, n_requests - produced)
        out[produced : produced + batch] = zipf.sample(batch)
        produced += batch
        if produced >= n_requests:
            break
        length = min(scan_len, n_requests - produced)
        start = int(rng.integers(0, n_keys))
        out[produced : produced + length] = (
            start + np.arange(length, dtype=np.int64) + scan_base
        ) % n_keys
        produced += length
        scan_base += scan_len
    return out


def looping_trace(
    n_requests: int, loop_len: int, n_keys: Optional[int] = None, seed: int = 0
) -> np.ndarray:
    """Cyclic scan over ``loop_len`` keys (defeats LRU when loop > cache)."""
    del seed  # deterministic by construction; kept for a uniform signature
    n_keys = n_keys or loop_len
    idx = np.arange(n_requests, dtype=np.int64) % loop_len
    return idx % n_keys


def phase_switch_trace(
    n_requests: int,
    n_keys: int,
    phases: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """Alternating LRU-/LFU-friendly phases (the Figure 19 workload)."""
    per_phase = n_requests // phases
    parts: List[np.ndarray] = []
    for p in range(phases):
        remaining = n_requests - per_phase * (phases - 1) if p == phases - 1 else per_phase
        if p % 2 == 0:
            parts.append(
                shifting_hotspot_trace(
                    remaining,
                    n_keys,
                    working_set=max(n_keys // 20, 16),
                    dwell=max(remaining // 40, 200),
                    shift=max(n_keys // 80, 8),
                    seed=seed + p,
                )
            )
        else:
            parts.append(
                scan_polluted_trace(remaining, n_keys, theta=1.05, seed=seed + p)
            )
    return np.concatenate(parts)


def webmail_like_trace(
    n_requests: int, n_keys: int, seed: int = 0
) -> np.ndarray:
    """FIU ``webmail`` stand-in: stable core + drifting set + rare scans.

    The mixture gives neither LRU nor LFU a uniform advantage, and the
    advantage flips with cache size and client interleaving — the properties
    §3.2 demonstrates on the real trace.
    """
    rng = np.random.default_rng(seed)
    core = zipfian_trace(n_requests, n_keys, theta=1.02, seed=seed + 1)
    drift = shifting_hotspot_trace(
        n_requests,
        n_keys,
        working_set=max(n_keys // 16, 32),
        dwell=max(n_requests // 64, 100),
        shift=max(n_keys // 64, 8),
        seed=seed + 2,
    )
    scans = scan_polluted_trace(
        n_requests, n_keys, theta=0.8, scan_every=8000, scan_len=2000, seed=seed + 3
    )
    choice = rng.random(n_requests)
    out = np.where(choice < 0.55, core, np.where(choice < 0.9, drift, scans))
    return out.astype(np.int64)


def footprint(trace: Sequence[int]) -> int:
    """Number of unique keys (the paper sizes caches relative to this)."""
    return int(np.unique(np.asarray(trace)).size)


# ---------------------------------------------------------------------------
# Workload catalog (Table 2) and seeded corpora (Figures 5 and 18)
# ---------------------------------------------------------------------------


@dataclass
class TraceSpec:
    """A named synthetic workload standing in for one real trace."""

    name: str
    family: str  # paper dataset this mimics
    workload_type: str  # Table 2's "Workload Type" column
    generate: Callable[[int, int, int], np.ndarray] = field(repr=False)
    n_keys: int = 4096

    def trace(self, n_requests: int, seed: int = 0) -> np.ndarray:
        return self.generate(n_requests, self.n_keys, seed)


def _spec(name, family, wtype, fn, n_keys):
    return TraceSpec(name=name, family=family, workload_type=wtype, generate=fn, n_keys=n_keys)


#: The five representative workloads of Figures 16-17 plus YCSB's home.
WORKLOAD_CATALOG: Dict[str, TraceSpec] = {
    "webmail": _spec(
        "webmail", "FIU", "Block IO",
        lambda n, k, s: webmail_like_trace(n, k, seed=s), 4096,
    ),
    "ibm": _spec(
        "ibm", "IBM", "Object Store",
        lambda n, k, s: zipfian_trace(n, k, theta=1.05, seed=s), 8192,
    ),
    "cloudphysics": _spec(
        "cloudphysics", "CloudPhysics", "Block IO",
        lambda n, k, s: scan_polluted_trace(n, k, theta=0.95, seed=s), 8192,
    ),
    "twitter-transient": _spec(
        "twitter-transient", "Twitter", "Transient key-value cache",
        lambda n, k, s: shifting_hotspot_trace(
            n, k, working_set=max(k // 12, 64), dwell=1500, shift=max(k // 48, 16), seed=s
        ), 6144,
    ),
    "twitter-storage": _spec(
        "twitter-storage", "Twitter", "Storage key-value cache",
        lambda n, k, s: zipfian_trace(n, k, theta=0.9, seed=s), 8192,
    ),
    "twitter-compute": _spec(
        "twitter-compute", "Twitter", "Compute key-value cache",
        lambda n, k, s: phase_switch_trace(n, k, phases=4, seed=s), 6144,
    ),
}


def corpus(
    n_traces: int = 74, seed: int = 0, n_keys: int = 4096
) -> List[TraceSpec]:
    """A seeded population of workloads with mixed LRU/LFU affinities.

    Mimics the paper's 74-trace Twitter+FIU population (Fig. 5) or, with
    ``n_traces=33``, the IBM+CloudPhysics population of Figure 18.
    """
    rng = np.random.default_rng(seed)
    specs: List[TraceSpec] = []
    families = ("drift", "zipf", "scan", "mix", "phase")
    for i in range(n_traces):
        family = families[i % len(families)]
        keys = int(n_keys * rng.uniform(0.5, 2.0))
        if family == "drift":
            ws = max(int(keys * rng.uniform(0.03, 0.15)), 16)
            dwell = int(rng.uniform(500, 4000))
            shift = max(int(ws * rng.uniform(0.1, 0.5)), 4)
            fn = (
                lambda n, k, s, ws=ws, dwell=dwell, shift=shift: shifting_hotspot_trace(
                    n, k, working_set=ws, dwell=dwell, shift=shift, seed=s
                )
            )
            wtype = "Transient key-value cache"
        elif family == "zipf":
            theta = rng.uniform(0.8, 1.2)
            fn = lambda n, k, s, theta=theta: zipfian_trace(n, k, theta=theta, seed=s)
            wtype = "Storage key-value cache"
        elif family == "scan":
            theta = rng.uniform(0.8, 1.1)
            scan_every = int(rng.uniform(3000, 9000))
            scan_len = int(rng.uniform(500, 2500))
            fn = (
                lambda n, k, s, theta=theta, e=scan_every, l=scan_len: scan_polluted_trace(
                    n, k, theta=theta, scan_every=e, scan_len=l, seed=s
                )
            )
            wtype = "Block IO"
        elif family == "mix":
            fn = lambda n, k, s: webmail_like_trace(n, k, seed=s)
            wtype = "Block IO"
        else:
            phases = int(rng.integers(2, 6))
            fn = lambda n, k, s, p=phases: phase_switch_trace(n, k, phases=p, seed=s)
            wtype = "Compute key-value cache"
        specs.append(
            TraceSpec(
                name=f"{family}-{i:02d}",
                family=family,
                workload_type=wtype,
                generate=fn,
                n_keys=keys,
            )
        )
    return specs
