"""YCSB core workloads A-D (Cooper et al., SoCC'10) as request streams.

A request is ``(op, key_id)`` with op in {"read", "update", "insert"}.  The
paper's setup: 10 million pre-loaded 256-byte key-value pairs, Zipfian with
θ = 0.99.  Workload D inserts new keys and reads with the "latest"
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from .zipf import LatestGenerator, ZipfianGenerator

Request = Tuple[str, int]

#: (read fraction, update fraction, insert fraction) per core workload.
YCSB_MIXES = {
    "A": (0.50, 0.50, 0.0),
    "B": (0.95, 0.05, 0.0),
    "C": (1.00, 0.00, 0.0),
    "D": (0.95, 0.00, 0.05),
}


@dataclass
class YCSBConfig:
    workload: str = "C"
    n_keys: int = 10_000_000
    theta: float = 0.99
    value_bytes: int = 256
    seed: int = 0
    #: Workload D only: this generator's inserts land in a private key range
    #: (``n_keys + client_id * insert_space + i``), mirroring YCSB's
    #: globally-unique new record IDs when many clients insert concurrently.
    client_id: int = 0
    insert_space: int = 1 << 20

    def __post_init__(self) -> None:
        self.workload = self.workload.upper()
        if self.workload not in YCSB_MIXES:
            raise ValueError(f"unknown YCSB workload {self.workload!r}")


class YCSBWorkload:
    """Generates load keys and request streams for one core workload."""

    def __init__(self, config: YCSBConfig):
        self.config = config
        mix = YCSB_MIXES[config.workload]
        self._read_frac, self._update_frac, self._insert_frac = mix
        self._zipf = ZipfianGenerator(
            config.n_keys, theta=config.theta, seed=config.seed
        )
        self._latest = LatestGenerator(
            config.n_keys, theta=config.theta, seed=config.seed + 1
        )
        self._rng = np.random.default_rng(config.seed + 2)
        self._newest = config.n_keys - 1  # logical key space: base + own inserts

    def load_keys(self) -> range:
        """Keys pre-loaded before the measured run (sharded across clients)."""
        return range(self.config.n_keys)

    def _physical_key(self, logical: int) -> int:
        """Map the logical (base + own-inserts) space to physical keys."""
        if logical < self.config.n_keys:
            return logical
        own_index = logical - self.config.n_keys
        return (
            self.config.n_keys
            + self.config.client_id * self.config.insert_space
            + own_index
        )

    def requests(self, count: int) -> List[Request]:
        """Materialize ``count`` requests."""
        ops = self._rng.random(count)
        if self.config.workload == "D":
            out: List[Request] = []
            for op_draw in ops:
                if op_draw < self._insert_frac:
                    self._newest += 1
                    out.append(("insert", self._physical_key(self._newest)))
                else:
                    logical = self._latest.sample_one(self._newest)
                    out.append(("read", self._physical_key(logical)))
            return out
        keys = self._zipf.sample(count)
        read_cut = self._read_frac
        return [
            ("read" if draw < read_cut else "update", int(key))
            for draw, key in zip(ops, keys)
        ]

    def request_stream(self, count: int, chunk: int = 4096) -> Iterator[Request]:
        """Memory-frugal request iterator."""
        remaining = count
        while remaining > 0:
            batch = self.requests(min(chunk, remaining))
            remaining -= len(batch)
            yield from batch


def make_ycsb(workload: str, n_keys: int = 100_000, seed: int = 0, **kwargs) -> YCSBWorkload:
    """Convenience constructor: ``make_ycsb("C", n_keys=1_000_000)``."""
    return YCSBWorkload(YCSBConfig(workload=workload, n_keys=n_keys, seed=seed, **kwargs))
