"""Zipfian key sampling (the YCSB request distribution).

YCSB draws keys from a Zipfian distribution with exponent θ = 0.99 and
*scrambles* ranks so popular keys are spread over the key space.  We
precompute the CDF with numpy and sample with ``searchsorted``, which is fast
and exact for the bounded key counts used here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ZipfianGenerator:
    """Samples integers in [0, n_keys) with Zipfian popularity."""

    def __init__(
        self,
        n_keys: int,
        theta: float = 0.99,
        seed: int = 0,
        scramble: bool = True,
    ):
        if n_keys < 1:
            raise ValueError("need at least one key")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n_keys = n_keys
        self.theta = theta
        self.rng = np.random.default_rng(seed)
        ranks = np.arange(1, n_keys + 1, dtype=np.float64)
        weights = ranks ** -theta
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if scramble:
            self._permutation: Optional[np.ndarray] = self.rng.permutation(n_keys)
        else:
            self._permutation = None

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` keys (numpy int64 array)."""
        u = self.rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="right")
        if self._permutation is not None:
            return self._permutation[ranks]
        return ranks.astype(np.int64)

    def sample_one(self) -> int:
        return int(self.sample(1)[0])


class UniformGenerator:
    """Uniform key sampling over [0, n_keys)."""

    def __init__(self, n_keys: int, seed: int = 0):
        if n_keys < 1:
            raise ValueError("need at least one key")
        self.n_keys = n_keys
        self.rng = np.random.default_rng(seed)

    def sample(self, count: int) -> np.ndarray:
        return self.rng.integers(0, self.n_keys, size=count, dtype=np.int64)

    def sample_one(self) -> int:
        return int(self.sample(1)[0])


class LatestGenerator:
    """YCSB's "latest" distribution: recency-skewed toward newest inserts.

    Used by workload D: the sampled key is ``newest - zipf_offset``.
    """

    def __init__(self, n_keys: int, theta: float = 0.99, seed: int = 0):
        self.n_keys = n_keys
        self._zipf = ZipfianGenerator(n_keys, theta=theta, seed=seed, scramble=False)

    def sample(self, count: int, newest: int) -> np.ndarray:
        offsets = self._zipf.sample(count)
        return (newest - offsets) % max(newest + 1, 1)

    def sample_one(self, newest: int) -> int:
        return int(self.sample(1, newest)[0])
