"""Consistency checks between timed baselines and their hit-rate models."""

import pytest

from repro.baselines import CliqueMapCluster
from repro.cachesim import ExactLRUCache
from repro.workloads import zipfian_trace


def test_cliquemap_hit_rate_matches_exact_lru_model():
    """The timed CliqueMap's cache decisions must equal the exact-LRU model
    when access info syncs after every request (no staleness)."""
    n_keys, capacity = 300, 60
    trace = zipfian_trace(4_000, n_keys, theta=0.9, seed=11)

    model = ExactLRUCache(capacity)
    model_hits = 0
    for key in trace:
        if model.access(int(key)):
            model_hits += 1

    cm = CliqueMapCluster(policy="lru", capacity_objects=capacity,
                          num_clients=1, sync_every=1)
    run = cm.engine.run_process
    client = cm.clients[0]
    for key in trace:
        got = run(client.get(b"%d" % key))
        if got is None:
            run(client.set(b"%d" % key, b"v"))
    assert cm.hits == model_hits


def test_cliquemap_staleness_changes_decisions():
    """Infrequent access-info sync (the real CliqueMap design point) makes
    server-side recency stale; hit behaviour may drift from exact LRU."""
    n_keys, capacity = 300, 60
    trace = zipfian_trace(6_000, n_keys, theta=0.9, seed=12)

    def run_cm(sync_every):
        cm = CliqueMapCluster(policy="lru", capacity_objects=capacity,
                              num_clients=1, sync_every=sync_every)
        run = cm.engine.run_process
        client = cm.clients[0]
        for key in trace:
            if run(client.get(b"%d" % key)) is None:
                run(client.set(b"%d" % key, b"v"))
        return cm.hit_rate()

    fresh = run_cm(1)
    stale = run_cm(256)
    # Staleness is allowed to cost hit rate but not to break the cache.
    assert 0.0 < stale <= fresh + 0.05
