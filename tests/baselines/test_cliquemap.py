"""Tests for the CliqueMap baseline (hybrid RMA/RPC)."""

import pytest

from repro.baselines import CliqueMapCluster


def make(policy="lru", capacity=8, clients=1, sync_every=4):
    return CliqueMapCluster(
        policy=policy, capacity_objects=capacity, num_clients=clients,
        sync_every=sync_every,
    )


def run(cluster, gen):
    return cluster.engine.run_process(gen)


class TestOperations:
    def test_roundtrip(self):
        cm = make()
        client = cm.clients[0]
        run(cm, client.set(b"k", b"value"))
        assert run(cm, client.get(b"k")) == b"value"
        assert cm.hits == 1

    def test_miss(self):
        cm = make()
        assert run(cm, cm.clients[0].get(b"nope")) is None
        assert cm.misses == 1

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make(policy="arc")

    def test_server_owns_eviction_lru(self):
        cm = make(policy="lru", capacity=2)
        client = cm.clients[0]
        for key in (b"a", b"b", b"c"):
            run(cm, client.set(key, b"v"))
        assert run(cm, client.get(b"a")) is None  # precise LRU evicted a
        assert run(cm, client.get(b"c")) == b"v"

    def test_server_owns_eviction_lfu(self):
        cm = make(policy="lfu", capacity=2, sync_every=1)
        client = cm.clients[0]
        run(cm, client.set(b"hot", b"v"))
        run(cm, client.set(b"cold", b"v"))
        for _ in range(3):
            run(cm, client.get(b"hot"))  # sync_every=1: merges immediately
        run(cm, client.set(b"new", b"v"))
        assert run(cm, client.get(b"hot")) == b"v"
        assert run(cm, client.get(b"cold")) is None

    def test_set_consumes_server_cpu(self):
        cm = make()
        assert cm.server.sets == 0
        run(cm, cm.clients[0].set(b"k", b"v"))
        assert cm.server.sets == 1
        assert cm.counters.get("rdma_rpc") == 1


class TestAccessInfoSync:
    def test_accesses_batched_until_sync(self):
        cm = make(capacity=16, sync_every=4)
        client = cm.clients[0]
        run(cm, client.set(b"k", b"v"))
        rpc_after_set = cm.counters.get("rdma_rpc")
        for _ in range(3):
            run(cm, client.get(b"k"))
        assert cm.counters.get("rdma_rpc") == rpc_after_set  # buffered
        run(cm, client.get(b"k"))  # 4th access flushes the batch
        assert cm.counters.get("rdma_rpc") == rpc_after_set + 1
        assert cm.server.merged_entries == 4

    def test_sync_affects_server_recency(self):
        cm = make(policy="lru", capacity=2, sync_every=1)
        client = cm.clients[0]
        run(cm, client.set(b"a", b"v"))
        run(cm, client.set(b"b", b"v"))
        run(cm, client.get(b"a"))  # merged immediately: a most recent
        run(cm, client.set(b"c", b"v"))  # evicts b
        assert run(cm, client.get(b"b")) is None
        assert run(cm, client.get(b"a")) == b"v"


class TestServerCores:
    def test_more_cores_serve_sets_faster(self):
        def elapsed(cores):
            cm = CliqueMapCluster(capacity_objects=64, num_clients=8, server_cores=cores)
            engine = cm.engine

            def worker(client, base):
                for i in range(20):
                    yield from client.set(b"w%d-%d" % (base, i), b"v")

            for idx, client in enumerate(cm.clients):
                engine.spawn(worker(client, idx))
            engine.run()
            return engine.now

        assert elapsed(8) < elapsed(1)

    def test_set_server_cores(self):
        cm = make()
        cm.set_server_cores(4)
        assert cm.controller.cores == 4
