"""Tests for the plain DM key-value store baseline."""

import pytest

from repro.baselines import DmKvsCluster


@pytest.fixture()
def kvs():
    return DmKvsCluster(capacity_objects=256, num_clients=2, seed=1)


def run(cluster, gen):
    return cluster.engine.run_process(gen)


def test_get_missing(kvs):
    assert run(kvs, kvs.clients[0].get(b"nope")) is None
    assert kvs.clients[0].misses == 1


def test_set_get_roundtrip(kvs):
    run(kvs, kvs.clients[0].set(b"k", b"value"))
    assert run(kvs, kvs.clients[0].get(b"k")) == b"value"


def test_update_in_place(kvs):
    client = kvs.clients[0]
    run(kvs, client.set(b"k", b"v1"))
    run(kvs, client.set(b"k", b"v2"))
    assert run(kvs, client.get(b"k")) == b"v2"


def test_visible_across_clients(kvs):
    run(kvs, kvs.clients[0].set(b"shared", b"x"))
    assert run(kvs, kvs.clients[1].get(b"shared")) == b"x"


def test_many_keys(kvs):
    client = kvs.clients[0]
    for i in range(200):
        run(kvs, client.set(b"key%d" % i, b"v%d" % i))
    for i in range(200):
        assert run(kvs, client.get(b"key%d" % i)) == b"v%d" % i


def test_get_is_two_reads(kvs):
    client = kvs.clients[0]
    run(kvs, client.set(b"k", b"v"))
    before = kvs.counters.get("rdma_read")
    run(kvs, client.get(b"k"))
    assert kvs.counters.get("rdma_read") - before == 2


def test_no_cache_metadata_maintained(kvs):
    """A KVS Get issues no WRITEs/FAAs (the Fig. 2 contrast with KVC)."""
    client = kvs.clients[0]
    run(kvs, client.set(b"k", b"v"))
    writes = kvs.counters.get("rdma_write")
    faas = kvs.counters.get("rdma_faa")
    run(kvs, client.get(b"k"))
    assert kvs.counters.get("rdma_write") == writes
    assert kvs.counters.get("rdma_faa") == faas


def test_add_clients(kvs):
    kvs.add_clients(3)
    assert len(kvs.clients) == 5
