"""Tests for the Redis-like monolithic baseline with live migration."""

import pytest

from repro.baselines import RedisCluster
from repro.bench import make_value, pack_key
from repro.core.layout import stable_hash64


def make(nodes=4, n_keys=200):
    cluster = RedisCluster(initial_nodes=nodes, migration_batch=16)
    cluster.load({pack_key(i): make_value(32) for i in range(n_keys)})
    cluster.add_clients(2)
    return cluster


def run(cluster, gen):
    return cluster.engine.run_process(gen)


class TestOperations:
    def test_get_hit_and_miss(self):
        cluster = make()
        client = cluster.clients[0]
        assert run(cluster, client.get(pack_key(5))) == make_value(32)
        assert run(cluster, client.get(b"missing-key")) is None
        assert client.hits == 1 and client.misses == 1

    def test_set(self):
        cluster = make()
        client = cluster.clients[0]
        run(cluster, client.set(b"new", b"val"))
        assert run(cluster, client.get(b"new")) == b"val"

    def test_request_takes_rtt_plus_cpu(self):
        cluster = make()
        t0 = cluster.engine.now
        run(cluster, cluster.clients[0].get(pack_key(1)))
        elapsed = cluster.engine.now - t0
        assert elapsed >= cluster.client_rtt_us

    def test_routing_stable_without_migration(self):
        cluster = make(nodes=4)
        key_hash = stable_hash64(pack_key(42))
        node, redirected = cluster.route(key_hash)
        assert node == key_hash % 4
        assert redirected is False


class TestMigration:
    def test_scale_out_completes_and_activates(self):
        cluster = make(nodes=2, n_keys=100)
        cluster.scale(4)
        assert cluster.migration is not None
        cluster.engine.run()
        assert cluster.migration is None
        assert cluster.active_nodes == 4
        assert len(cluster.migrations_done) == 1
        done = cluster.migrations_done[0]
        assert done.finished_at > done.started_at

    def test_migration_takes_time_proportional_to_keys(self):
        def duration(n_keys):
            cluster = make(nodes=2, n_keys=n_keys)
            cluster.scale(4)
            cluster.engine.run()
            mig = cluster.migrations_done[0]
            return mig.finished_at - mig.started_at

        assert duration(400) > duration(50)

    def test_scale_in_reclaims_after_migration(self):
        cluster = make(nodes=4, n_keys=100)
        cluster.scale(2)
        assert cluster.provisioned_nodes == 4  # reclamation delayed
        cluster.engine.run()
        assert cluster.provisioned_nodes == 2
        assert cluster.active_nodes == 2

    def test_data_intact_after_scaling(self):
        cluster = make(nodes=2, n_keys=100)
        cluster.scale(4)
        cluster.engine.run()
        client = cluster.clients[0]
        for i in range(100):
            assert run(cluster, client.get(pack_key(i))) is not None

    def test_redirects_happen_during_migration(self):
        cluster = make(nodes=2, n_keys=400)
        engine = cluster.engine

        def reader(client):
            for i in range(400):
                yield from client.get(pack_key(i))

        cluster.scale(4)
        engine.spawn(reader(cluster.clients[0]))
        engine.run()
        assert cluster.redirects > 0

    def test_moved_fraction_monotonic(self):
        cluster = make(nodes=2, n_keys=300)
        cluster.scale(4)
        fractions = []
        for _ in range(20):
            cluster.engine.run(until=cluster.engine.now + 100.0)
            if cluster.migration is not None:
                fractions.append(cluster.migration.fraction)
        assert fractions == sorted(fractions)

    def test_double_scale_rejected(self):
        cluster = make(nodes=2, n_keys=500)
        cluster.scale(4)
        with pytest.raises(RuntimeError):
            cluster.scale(8)

    def test_noop_scale(self):
        cluster = make(nodes=2)
        cluster.scale(2)
        assert cluster.migration is None
