"""Tests for the Shard-LRU / KVC baseline."""

import pytest

from repro.baselines import ShardLruCluster


def make(shards=4, capacity=64, clients=1, backoff=0.0):
    return ShardLruCluster(
        capacity_objects=capacity, num_clients=clients, shards=shards,
        backoff_us=backoff, seed=1,
    )


def run(cluster, gen):
    return cluster.engine.run_process(gen)


class TestOperations:
    def test_roundtrip(self):
        cluster = make()
        client = cluster.clients[0]
        run(cluster, client.set(b"k", b"v"))
        assert run(cluster, client.get(b"k")) == b"v"
        assert client.hits == 1

    def test_update(self):
        cluster = make()
        client = cluster.clients[0]
        run(cluster, client.set(b"k", b"v1"))
        run(cluster, client.set(b"k", b"v2"))
        assert run(cluster, client.get(b"k")) == b"v2"

    def test_miss(self):
        cluster = make()
        assert run(cluster, cluster.clients[0].get(b"nope")) is None

    def test_eviction_respects_lru_order(self):
        cluster = make(shards=1, capacity=3)
        client = cluster.clients[0]
        for key in (b"a", b"b", b"c"):
            run(cluster, client.set(key, b"v"))
        run(cluster, client.get(b"a"))  # refresh a
        run(cluster, client.set(b"d", b"v"))  # evicts b
        assert run(cluster, client.get(b"b")) is None
        assert run(cluster, client.get(b"a")) == b"v"

    def test_capacity_per_shard(self):
        cluster = make(shards=4, capacity=64)
        assert cluster.capacity_per_shard == 16

    def test_lists_bounded(self):
        cluster = make(shards=2, capacity=8)
        client = cluster.clients[0]
        for i in range(64):
            run(cluster, client.set(b"key%d" % i, b"v"))
        for lru in cluster.lists:
            assert len(lru) <= cluster.capacity_per_shard


class TestLockBehaviour:
    def test_get_touches_lock_word(self):
        cluster = make(shards=1)
        client = cluster.clients[0]
        run(cluster, client.set(b"k", b"v"))
        cas_before = cluster.counters.get("rdma_cas")
        run(cluster, client.get(b"k"))
        # hit path: at least lock acquire CAS
        assert cluster.counters.get("rdma_cas") > cas_before

    def test_lock_released_after_ops(self):
        cluster = make(shards=2)
        client = cluster.clients[0]
        run(cluster, client.set(b"k", b"v"))
        run(cluster, client.get(b"k"))
        for shard in range(cluster.shards):
            assert cluster.node.read_u64(cluster.lock_addr(shard)) == 0

    def test_contention_causes_retries(self):
        cluster = ShardLruCluster(
            capacity_objects=256, num_clients=16, shards=1, backoff_us=0.0, seed=2,
        )
        engine = cluster.engine

        def worker(client, base):
            for i in range(20):
                yield from client.set(b"w%d-%d" % (base, i), b"v")
                yield from client.get(b"w%d-%d" % (base, i))

        for idx, client in enumerate(cluster.clients):
            engine.spawn(worker(client, idx))
        engine.run()
        assert cluster.counters.get("lock_retries") > 0

    def test_sharding_reduces_contention(self):
        def retries(shards):
            cluster = ShardLruCluster(
                capacity_objects=512, num_clients=16, shards=shards,
                backoff_us=0.0, seed=3,
            )
            engine = cluster.engine

            def worker(client, base):
                for i in range(15):
                    yield from client.set(b"w%d-%d" % (base, i), b"v")
                    yield from client.get(b"w%d-%d" % (base, i))

            for idx, client in enumerate(cluster.clients):
                engine.spawn(worker(client, idx))
            engine.run()
            return cluster.counters.get("lock_retries")

        assert retries(32) < retries(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            make(shards=0)
