"""Tests for the pluggable dispatchers and the file-queue worker."""

import json
import threading
from pathlib import Path

import pytest

from repro.bench import worker
from repro.bench.dispatch import (
    DispatchError,
    FileQueueDispatcher,
    LocalPoolDispatcher,
    from_env,
)
from repro.bench.parallel import ExperimentJob, ParallelRunner

#: A cheap, importable, deterministic job target.
SPEC = {"fn": "repro.bench.scale:scale_name", "params": {}, "seed": None,
        "experiment": "probe"}


def _specs(n):
    return [dict(SPEC, experiment=f"probe{i}") for i in range(n)]


# -- LocalPoolDispatcher -----------------------------------------------------


def test_local_dispatcher_runs_inline_with_one_worker():
    results = LocalPoolDispatcher(1).dispatch(_specs(3))
    assert [raw["result"] for raw, _ in results] == ["quick"] * 3
    assert all(elapsed >= 0 for _, elapsed in results)


def test_local_dispatcher_rejects_zero_workers():
    with pytest.raises(ValueError):
        LocalPoolDispatcher(0)


# -- FileQueueDispatcher + worker --------------------------------------------


def _with_worker(root, fn, **worker_kwargs):
    """Run ``fn()`` while a worker thread drains the queue at ``root``."""
    kwargs = {"poll_s": 0.02, "idle_exit_s": 1.0}
    kwargs.update(worker_kwargs)
    thread = threading.Thread(
        target=worker.serve, args=(Path(root),), kwargs=kwargs)
    thread.start()
    try:
        return fn()
    finally:
        thread.join()


def test_file_queue_round_trip(tmp_path):
    dispatcher = FileQueueDispatcher(str(tmp_path), poll_s=0.02, timeout_s=30)
    results = _with_worker(
        tmp_path, lambda: dispatcher.dispatch(_specs(4)))
    assert [raw["result"] for raw, _ in results] == ["quick"] * 4
    # The queue drains completely: no leftover job/claim/result files.
    for sub in ("jobs", "claims", "results"):
        assert list((tmp_path / sub).glob("*.json")) == []


def test_file_queue_propagates_worker_errors(tmp_path):
    dispatcher = FileQueueDispatcher(str(tmp_path), poll_s=0.02, timeout_s=30)
    bad = [{"fn": "repro.bench.scale:scale_name",
            "params": {"no_such_kw": 1}, "seed": None, "experiment": "bad"}]
    with pytest.raises(DispatchError, match="TypeError"):
        _with_worker(tmp_path, lambda: dispatcher.dispatch(bad))


def test_file_queue_times_out_without_workers(tmp_path):
    dispatcher = FileQueueDispatcher(str(tmp_path), poll_s=0.01, timeout_s=0.1)
    with pytest.raises(DispatchError, match="timed out"):
        dispatcher.dispatch(_specs(1))


def test_file_queue_timeout_discards_unclaimed_jobs(tmp_path):
    # An abandoned batch must not leave specs behind for idle workers to
    # execute later (their results would never be collected).
    dispatcher = FileQueueDispatcher(str(tmp_path), poll_s=0.01, timeout_s=0.1)
    with pytest.raises(DispatchError, match="timed out"):
        dispatcher.dispatch(_specs(3))
    assert list((tmp_path / "jobs").glob("*.json")) == []


def test_file_queue_error_discards_remaining_batch(tmp_path):
    # One bad job errors while the rest are still queued: dispatch raises
    # and must sweep the batch's leftover job and result files.
    dispatcher = FileQueueDispatcher(str(tmp_path), poll_s=0.02, timeout_s=30)
    bad = [{"fn": "repro.bench.scale:scale_name",
            "params": {"no_such_kw": 1}, "seed": None,
            "experiment": f"bad{i}"} for i in range(3)]
    with pytest.raises(DispatchError, match="TypeError"):
        # max_jobs=1: the worker executes exactly one job and exits, so two
        # specs are provably still queued when dispatch raises.
        _with_worker(tmp_path, lambda: dispatcher.dispatch(bad),
                     idle_exit_s=None, max_jobs=1)
    for sub in ("jobs", "claims", "results"):
        assert list((tmp_path / sub).glob("*.json")) == []


def test_worker_max_jobs_and_exit_count(tmp_path):
    dispatcher = FileQueueDispatcher(str(tmp_path), poll_s=0.02, timeout_s=30)
    for d in ("jobs", "claims", "results"):
        (tmp_path / d).mkdir()
    # Enqueue by hand so we can count without a dispatcher thread.
    for i, spec in enumerate(_specs(3)):
        (tmp_path / "jobs" / f"job-{i:06d}.json").write_text(json.dumps(spec))
    done = worker.serve(tmp_path, poll_s=0.01, max_jobs=2)
    assert done == 2
    assert len(list((tmp_path / "results").glob("*.json"))) == 2
    assert len(list((tmp_path / "jobs").glob("*.json"))) == 1


def test_worker_cli_main(tmp_path, capsys):
    assert worker.main([str(tmp_path), "--idle-exit", "0.05",
                        "--poll", "0.01"]) == 0
    assert "executed 0 job(s)" in capsys.readouterr().out


# -- selection ---------------------------------------------------------------


def test_from_env_defaults_to_local(monkeypatch):
    monkeypatch.delenv("REPRO_DISPATCHER", raising=False)
    assert isinstance(from_env(2), LocalPoolDispatcher)
    monkeypatch.setenv("REPRO_DISPATCHER", "local")
    assert isinstance(from_env(2), LocalPoolDispatcher)


def test_from_env_builds_file_queue(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_DISPATCHER", f"file:{tmp_path}")
    dispatcher = from_env(2)
    assert isinstance(dispatcher, FileQueueDispatcher)
    assert dispatcher.root == tmp_path


def test_from_env_rejects_unknown(monkeypatch):
    monkeypatch.setenv("REPRO_DISPATCHER", "carrier-pigeon")
    with pytest.raises(ValueError):
        from_env(2)


# -- ParallelRunner integration ----------------------------------------------


def test_runner_uses_injected_dispatcher(tmp_path):
    calls = []

    class Recorder:
        def dispatch(self, specs):
            calls.append(len(specs))
            return LocalPoolDispatcher(1).dispatch(specs)

    runner = ParallelRunner(
        workers=1, cache_dir=str(tmp_path / "cache"), dispatcher=Recorder())
    jobs = [ExperimentJob(experiment="probe",
                          fn="repro.bench.scale:scale_name")]
    outcomes = runner.run(jobs)
    assert calls == [1]
    assert outcomes[0].result == "quick"
    # Second run: served from cache, dispatcher never consulted again.
    runner.run(jobs)
    assert calls == [1]


def test_runner_through_file_queue(tmp_path):
    dispatcher = FileQueueDispatcher(
        str(tmp_path / "queue"), poll_s=0.02, timeout_s=30)
    runner = ParallelRunner(
        workers=1, cache_dir=str(tmp_path / "cache"), dispatcher=dispatcher)
    jobs = [ExperimentJob(experiment=f"probe{i}",
                          fn="repro.bench.scale:scale_name")
            for i in range(3)]
    outcomes = _with_worker(tmp_path / "queue", lambda: runner.run(jobs))
    assert [o.result for o in outcomes] == ["quick"] * 3
    assert runner.summary()["simulated"] == 3
