"""Tiny-scale smoke tests for every per-figure experiment driver.

These don't assert the paper's shapes (the benchmarks do, at a meaningful
scale) — they pin the result schemas and that each driver runs end to end.
"""

import pytest

from repro.bench.experiments import (
    extra_elasticity_churn,
    fig01_redis_elasticity,
    fig02_caching_structure_cost,
    fig03_client_mix,
    fig04_cache_size,
    fig05_concurrency_effects,
    fig13_ditto_elasticity,
    fig14_ycsb_scaling,
    fig15_mn_cpu_cores,
    fig16_real_world_tput,
    fig17_real_world_hitrate,
    fig18_corpus_boxplot,
    fig19_changing_workload,
    fig20_compute_mix,
    fig21_client_scaling,
    fig22_memory_scaling,
    fig23_twelve_algorithms,
    fig24_ablation,
    fig25_fc_cache_size,
    tab02_workload_catalog,
)


def test_fig01_schema():
    result = fig01_redis_elasticity.run(
        nodes=2, scale_to=4, n_keys=400, clients=8,
        phase_us=20_000.0, window_us=10_000.0,
        migration_key_cpu_us=50.0, migration_batch=4,
    )
    assert {"timeline", "migrations"} <= set(result)
    assert len(result["migrations"]) == 2
    phases = {row["phase"] for row in result["timeline"]}
    assert "stable-small" in phases and "stable-large" in phases


def test_fig02_schema():
    result = fig02_caching_structure_cost.run(
        n_keys=300, client_counts=(1, 4), window_us=2_000.0
    )
    assert set(result["multi_client"]) == {"kvs", "kvc", "kvc-s"}
    assert set(result["single_client"]["kvs"]) == {"mops", "p50_us", "p99_us"}


def test_fig03_schema():
    result = fig03_client_mix.run(n_requests=4_000, n_keys=256, total_threads=2)
    assert len(result["rows"]) == 3
    assert {"ditto", "ditto-lru", "ditto-lfu"} <= set(result["rows"][0])


def test_fig04_schema():
    result = fig04_cache_size.run(n_requests=4_000, n_keys=256, size_fracs=(0.1, 0.4))
    assert len(result["rows"]) == 2
    assert result["footprint"] > 0


def test_fig05_schema():
    result = fig05_concurrency_effects.run(
        n_traces=4, n_requests=3_000, client_counts=(1, 4)
    )
    assert len(result["cdf"]["lru"]) == 4
    assert 0.0 <= result["best_flip_fraction"] <= 1.0
    assert len(result["example"]) == 2


def test_fig13_schema():
    result = fig13_ditto_elasticity.run(
        n_keys=400, base_clients=2, extra_clients=2,
        phase_us=8_000.0, window_us=4_000.0,
    )
    phases = {row["phase"] for row in result["timeline"]}
    assert "compute-scaled-up" in phases and "memory-scaled-down" in phases
    # Memory scale-down is a real drain now: node 1 retired, data migrated.
    (migration,) = result["migrations"]
    assert migration["phase"] == "done"
    assert migration["migrated_bytes"] > 0
    assert result["epoch_bumps"] >= 3  # add, draining, retired


def test_extra_elasticity_churn_schema():
    result = extra_elasticity_churn.run(
        n_keys=300, num_clients=2, cycles=2,
        phase_us=5_000.0, window_us=2_500.0,
    )
    assert [m["phase"] for m in result["migrations"]] == ["done", "done"]
    assert all(m["migrated_objects"] > 0 for m in result["migrations"])
    assert result["node_ids"] == [0, 3]  # 1 and 2 drained, 3 survived
    assert result["sweep"]["live_bytes"] > 0
    assert result["epoch"] == 6  # two adds, two drains at two bumps each


def test_fig14_schema():
    result = fig14_ycsb_scaling.run(
        workloads=("C",), client_counts=(1, 4), n_keys=300,
        window_us=2_000.0, systems=("ditto", "cm-lru"),
    )
    assert set(result["results"]["C"]) == {"ditto", "cm-lru"}
    point = result["results"]["C"]["ditto"][4]
    assert point["mops"] > 0 and point["p99_us"] > 0


def test_fig14_workload_d_runs():
    result = fig14_ycsb_scaling.run(
        workloads=("D",), client_counts=(4,), n_keys=300,
        window_us=2_000.0, systems=("ditto",),
    )
    assert result["results"]["D"]["ditto"][4]["mops"] > 0


def test_fig15_schema():
    result = fig15_mn_cpu_cores.run(
        workloads=("C",), core_counts=(1, 2), n_keys=300,
        clients=4, window_us=2_000.0,
    )
    per_system = result["results"]["C"]
    assert set(per_system) == {"ditto", "cliquemap", "redis"}


def test_fig16_schema():
    result = fig16_real_world_tput.run(
        workload_names=("webmail",), systems=("ditto", "cm-lru"),
        n_requests=3_000, clients=4, window_us=4_000.0,
    )
    row = result["results"]["webmail"]
    assert set(row) == {"ditto", "cm-lru"}
    assert 0 <= row["ditto"]["hit_rate"] <= 1


def test_fig17_schema():
    result = fig17_real_world_hitrate.run(
        workload_names=("ibm",), size_fracs=(0.1,), n_requests=3_000,
        systems=("ditto", "ditto-lru"),
    )
    assert set(result["results"]["ibm"][0.1]) == {"ditto", "ditto-lru"}


def test_fig18_schema():
    result = fig18_corpus_boxplot.run(n_traces=4, n_requests=3_000)
    assert set(result["relative"]) == {"ditto", "max_expert", "min_expert"}
    assert all(len(v) == 4 for v in result["relative"].values())


def test_fig19_schema():
    result = fig19_changing_workload.run(
        n_requests=6_000, n_keys=256, clients=4, window_us=4_000.0
    )
    assert set(result["hit_rates"]) == {"ditto", "ditto-lru", "ditto-lfu"}
    assert set(result["throughput_mops"]) == set(result["hit_rates"])


def test_fig20_schema():
    result = fig20_compute_mix.run(
        n_requests=4_000, n_keys=256, lru_portions=(0.0, 1.0)
    )
    assert len(result["rows"]) == 2
    assert result["rows"][0]["ditto-lru"] == 1.0


def test_fig21_schema():
    result = fig21_client_scaling.run(
        n_requests=4_000, n_keys=256, client_counts=(1, 4)
    )
    assert len(result["rows"]) == 2


def test_fig22_schema():
    result = fig22_memory_scaling.run(
        n_requests=6_000, n_keys=256, size_schedule=(0.1, 0.3)
    )
    assert len(result["rows"]) == 2
    assert result["rows"][1]["capacity"] > result["rows"][0]["capacity"]


def test_fig23_schema():
    result = fig23_twelve_algorithms.run(
        algorithms=("lru", "mru"), n_requests=3_000, n_keys=256,
        clients=2, window_us=2_000.0,
    )
    assert [r["algorithm"] for r in result["rows"]] == ["lru", "mru"]
    assert all(r["loc"] > 0 for r in result["rows"])


def test_fig24_schema():
    result = fig24_ablation.run(
        n_requests=3_000, n_keys=256, clients=4, window_us=2_000.0
    )
    variants = [r["variant"] for r in result["rows"]]
    assert "ditto (full)" in variants and "-sfht" in variants
    assert result["rows"][0]["relative"] == pytest.approx(1.0)


def test_fig25_schema():
    mb = 1024 * 1024
    result = fig25_fc_cache_size.run(
        fc_sizes_bytes=(0, mb), n_keys=300, clients=4, window_us=2_000.0
    )
    assert len(result["rows"]) == 2
    assert result["rows"][1]["faas"] <= result["rows"][0]["faas"]


def test_tab02_schema():
    result = tab02_workload_catalog.run(n_requests=2_000)
    assert len(result["rows"]) == 6
