"""The fault-recovery experiment: shape, determinism, caching, parallelism."""

from repro.bench.experiments.extra_fault_recovery import phase_mean, run
from repro.bench.parallel import ExperimentJob, ParallelRunner
from repro.sim import FaultPlan, NodeOutage

RUN = "repro.bench.experiments.extra_fault_recovery:run"

#: Small enough for CI, big enough that the outage phase has samples.
TINY = dict(
    n_keys=512,
    num_clients=4,
    phase_us=12_000.0,
    window_us=4_000.0,
    requests_per_client=2_000,
    seed=11,
)


def tiny_plan(phase_us=TINY["phase_us"]):
    return FaultPlan(
        outages=(NodeOutage(node_id=1, start_us=phase_us, end_us=2 * phase_us),)
    ).to_dict()


def test_throughput_dips_then_recovers():
    result = run(**TINY, plan_dict=tiny_plan())
    timeline = result["timeline"]
    assert {r["phase"] for r in timeline} == {"healthy", "outage", "recovered"}
    healthy = phase_mean(timeline, "healthy")
    outage = phase_mean(timeline, "outage")
    recovered = phase_mean(timeline, "recovered")
    assert outage < 0.5 * healthy  # the dip
    assert recovered > 0.8 * healthy  # the recovery
    assert phase_mean(timeline, "outage", "hit_rate") < phase_mean(
        timeline, "healthy", "hit_rate"
    )
    assert result["counters"]["fault_node_unavailable"] > 0


def test_run_is_deterministic():
    a = run(**TINY, plan_dict=tiny_plan())
    b = run(**TINY, plan_dict=tiny_plan())
    assert a == b


def test_cache_key_includes_the_fault_plan():
    base = ExperimentJob("extra-faults", RUN, params={**TINY, "plan_dict": tiny_plan()})
    longer = FaultPlan(
        outages=(NodeOutage(node_id=1, start_us=0.0, end_us=3 * TINY["phase_us"]),)
    ).to_dict()
    other = ExperimentJob(
        "extra-faults", RUN, params={**TINY, "plan_dict": longer}
    )
    assert base.key("quick") != other.key("quick")
    assert base.key("quick") == ExperimentJob(
        "extra-faults", RUN, params={**TINY, "plan_dict": tiny_plan()}
    ).key("quick")


def test_parallel_run_matches_serial(tmp_path):
    params = {**TINY, "plan_dict": tiny_plan()}
    jobs = [ExperimentJob("extra-faults", RUN, params=params)]
    serial = ParallelRunner(workers=1, use_cache=False).run(jobs)
    pooled = ParallelRunner(workers=2, use_cache=False).run(jobs)
    assert serial[0].result == pooled[0].result


def test_cached_replay(tmp_path):
    params = {**TINY, "plan_dict": tiny_plan()}
    jobs = [ExperimentJob("extra-faults", RUN, params=params)]
    first = ParallelRunner(workers=1, cache_dir=tmp_path).run(jobs)
    second = ParallelRunner(workers=1, cache_dir=tmp_path).run(jobs)
    assert not first[0].cached
    assert second[0].cached
    assert first[0].result == second[0].result
