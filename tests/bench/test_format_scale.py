"""Tests for table formatting and experiment scaling."""

import pytest

from repro.bench import format_table, scale_name, scaled
from repro.bench.hitrate import compare_systems, make_hit_cache, replay_windowed
from repro.cachesim import ExactLFUCache, ExactLRUCache, RandomCache, SampledAdaptiveCache


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "value"], [("a", 1.23456), ("bb", 2)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text
        assert "bb" in text

    def test_column_width_tracks_longest(self):
        text = format_table(["x"], [("averylongvalue",)])
        assert "averylongvalue" in text


class TestScale:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_name() == "quick"
        assert scaled(1, 2) == 1

    def test_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert scale_name() == "full"
        assert scaled(1, 2) == 2

    def test_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            scale_name()


class TestHitrateHelpers:
    def test_make_hit_cache_kinds(self):
        assert isinstance(make_hit_cache("ditto", 8), SampledAdaptiveCache)
        assert isinstance(make_hit_cache("ditto-lru", 8), SampledAdaptiveCache)
        assert isinstance(make_hit_cache("cm-lru", 8), ExactLRUCache)
        assert isinstance(make_hit_cache("cm-lfu", 8), ExactLFUCache)
        assert isinstance(make_hit_cache("random", 8), RandomCache)
        assert make_hit_cache("ditto", 8).adaptive
        assert not make_hit_cache("ditto-lfu", 8).adaptive

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            make_hit_cache("belady", 8)

    def test_compare_systems(self):
        trace = [i % 20 for i in range(500)]
        rates = compare_systems(("ditto-lru", "cm-lru"), trace, 10, seed=1)
        assert set(rates) == {"ditto-lru", "cm-lru"}
        assert all(0 <= v <= 1 for v in rates.values())

    def test_replay_windowed(self):
        cache = make_hit_cache("ditto-lru", 10)
        rates = replay_windowed(cache, [i % 5 for i in range(100)], windows=4)
        assert len(rates) == 4
        assert rates[-1] > rates[0]  # warm cache hits more
