"""Tests for the substrate self-benchmark (repro.bench.meta)."""

import json

import pytest

from repro.bench import meta


def _shrink(monkeypatch):
    """Point every bench at a tiny workload so report tests stay fast."""
    engine_fn, rdma_fn, cache_fn = (
        meta.bench_engine,
        meta.bench_rdma,
        meta.bench_cachesim,
    )
    monkeypatch.setattr(
        meta, "bench_engine",
        lambda batch=True: engine_fn(4, 50, batch=batch))
    monkeypatch.setattr(
        meta, "bench_rdma",
        lambda burst=0: rdma_fn(2, 100, burst=burst))
    monkeypatch.setattr(
        meta, "bench_cachesim",
        lambda vectorized=True, **_cfg: cache_fn(
            5000, 512, 128, vectorized=vectorized))


def test_bench_engine_counts_every_event():
    result = meta.bench_engine(processes=4, events_per_process=50)
    assert result["events"] == 4 * 50 + 4
    assert result["events_per_sec"] > 0


def test_bench_engine_scalar_and_storm_agree_on_counts():
    scalar = meta.bench_engine(4, 50, batch=False)
    storm = meta.bench_engine(4, 50, batch=True)
    assert scalar["events"] == storm["events"]


def test_bench_rdma_serves_all_verbs():
    result = meta.bench_rdma(clients=2, verbs_per_client=100)
    assert result["verbs"] == 200
    assert result["verbs_per_sec"] > 0


def test_bench_rdma_burst_serves_all_verbs():
    result = meta.bench_rdma(clients=2, verbs_per_client=100, burst=64)
    assert result["verbs"] == 200
    assert result["verbs_per_sec"] > 0


def test_bench_cachesim_replays_trace():
    result = meta.bench_cachesim(n_accesses=5000, n_keys=512, capacity=128)
    assert result["accesses"] == 5000
    assert 0.0 < result["hit_rate"] < 1.0
    assert result["evictions"] > 0


def test_bench_cachesim_paths_agree_on_results():
    scalar = meta.bench_cachesim(20000, 512, 128, vectorized=False)
    vec = meta.bench_cachesim(20000, 512, 128, vectorized=True)
    assert scalar["hit_rate"] == vec["hit_rate"]
    assert scalar["evictions"] == vec["evictions"]


def test_main_writes_schema2_report(tmp_path, capsys, monkeypatch):
    out = tmp_path / "speed.json"
    _shrink(monkeypatch)
    assert meta.main([str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    assert report["schema"] == 2
    for metric in meta.CHECKED_METRICS:
        assert report["headline"][metric] > 0
    assert report["headline"]["cachesim_peak_config"] in meta.CACHESIM_CONFIGS
    assert report["engine"]["scalar"]["events_per_sec"] > 0
    assert report["engine"]["storm"]["events_per_sec"] > 0
    for name in meta.CACHESIM_CONFIGS:
        assert report["cachesim"][name]["scalar"]["accesses_per_sec"] > 0
        assert report["cachesim"][name]["vectorized"]["accesses_per_sec"] > 0
    assert report["history"] == []
    assert "wrote" in capsys.readouterr().out


def test_history_is_carried_and_bounded(tmp_path, monkeypatch):
    out = tmp_path / "speed.json"
    _shrink(monkeypatch)
    assert meta.main([str(out), "--repeats", "1"]) == 0
    assert meta.main([str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    assert len(report["history"]) == 1
    assert report["history"][0]["headline"]["engine_events_per_sec"] > 0
    # A schema-1 file contributes its single headline row.
    legacy = {"schema": 1, "generated_utc": "2026-01-01T00:00:00Z",
              "headline": {"engine_events_per_sec": 1.0}}
    carried = meta._carry_history({"headline": {}}, legacy)
    assert carried["history"][0]["headline"]["engine_events_per_sec"] == 1.0
    # The bound holds even with an over-long prior history.
    bloated = {"schema": 2, "headline": {}, "generated_utc": "x",
               "history": [{"generated_utc": str(i), "headline": {}}
                           for i in range(meta.HISTORY_LIMIT + 5)]}
    carried = meta._carry_history({"headline": {}}, bloated)
    assert len(carried["history"]) == meta.HISTORY_LIMIT


def test_check_passes_within_threshold():
    baseline = {"headline": {m: 100.0 for m in meta.CHECKED_METRICS}}
    fresh = {"headline": {m: 80.0 for m in meta.CHECKED_METRICS}}
    assert meta.check(baseline, fresh, threshold=0.30) == []


def test_check_flags_regressions_beyond_threshold():
    baseline = {"headline": {m: 100.0 for m in meta.CHECKED_METRICS}}
    fresh = {"headline": {m: 60.0 for m in meta.CHECKED_METRICS}}
    failures = meta.check(baseline, fresh, threshold=0.30)
    assert len(failures) == len(meta.CHECKED_METRICS)
    assert "engine_events_per_sec" in failures[0]


def test_check_ignores_missing_metrics():
    baseline = {"headline": {}}
    fresh = {"headline": {m: 1.0 for m in meta.CHECKED_METRICS}}
    assert meta.check(baseline, fresh, threshold=0.30) == []


def test_main_check_mode_gates_on_committed_file(tmp_path, capsys, monkeypatch):
    out = tmp_path / "speed.json"
    _shrink(monkeypatch)
    # No committed file: check is a no-op pass.
    assert meta.main([str(out), "--check", "--repeats", "1"]) == 0
    assert "nothing to check" in capsys.readouterr().out
    # Committed file with absurdly high numbers: check fails...
    inflated = {"schema": 2,
                "headline": {m: 1e15 for m in meta.CHECKED_METRICS}}
    out.write_text(json.dumps(inflated))
    assert meta.main([str(out), "--check", "--repeats", "1"]) == 1
    assert "PERF REGRESSION" in capsys.readouterr().out
    # ...unless the env threshold is loosened to 100%.
    monkeypatch.setenv("REPRO_PERF_THRESHOLD", "1.0")
    assert meta.main([str(out), "--check", "--repeats", "1"]) == 0
    assert "perf check passed" in capsys.readouterr().out
    # --check never rewrites the committed report.
    assert json.loads(out.read_text()) == inflated


def _headline_with_ratios(engine=5.0, rdma=10.0, cachesim=2.0):
    return {"headline": {
        "engine_events_per_sec": 100.0 * engine,
        "engine_scalar_events_per_sec": 100.0,
        "rdma_verbs_per_sec": 100.0 * rdma,
        "rdma_scalar_verbs_per_sec": 100.0,
        "cachesim_accesses_per_sec": 100.0 * cachesim,
        "cachesim_scalar_accesses_per_sec": 100.0,
    }}


def test_check_ratios_passes_above_floors():
    report = _headline_with_ratios()
    assert meta.check_ratios(report, meta.DEFAULT_RATIO_FLOORS) == []


def test_check_ratios_flags_disengaged_fast_paths():
    # A fast path silently falling back looks like a ~1x speedup.
    report = _headline_with_ratios(engine=1.0, rdma=1.0, cachesim=1.0)
    failures = meta.check_ratios(report, meta.DEFAULT_RATIO_FLOORS)
    assert len(failures) == 3
    assert any("engine" in f for f in failures)


def test_check_ratios_ignores_missing_pairs():
    assert meta.check_ratios({"headline": {}}, meta.DEFAULT_RATIO_FLOORS) == []


def test_ratio_floors_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_PERF_RATIO_FLOORS", "engine=1.5, cachesim=1.1")
    floors = meta.ratio_floors_from_env()
    assert floors["engine"] == 1.5
    assert floors["cachesim"] == 1.1
    assert floors["rdma"] == meta.DEFAULT_RATIO_FLOORS["rdma"]


def test_ratio_floors_env_rejects_unknown_names(monkeypatch):
    monkeypatch.setenv("REPRO_PERF_RATIO_FLOORS", "warp-drive=9")
    with pytest.raises(ValueError):
        meta.ratio_floors_from_env()


def test_main_check_ratio_mode(tmp_path, capsys, monkeypatch):
    out = tmp_path / "speed.json"
    _shrink(monkeypatch)
    # Absurd floors nothing can reach: the gate fails without touching disk.
    monkeypatch.setenv(
        "REPRO_PERF_RATIO_FLOORS", "engine=1e9,rdma=1e9,cachesim=1e9")
    assert meta.main([str(out), "--check-ratio", "--repeats", "1"]) == 1
    assert "PERF REGRESSION" in capsys.readouterr().out
    assert not out.exists()
    # Trivially low floors pass on any machine.
    monkeypatch.setenv(
        "REPRO_PERF_RATIO_FLOORS", "engine=0,rdma=0,cachesim=0")
    assert meta.main([str(out), "--check-ratio", "--repeats", "1"]) == 0
    assert "perf check passed" in capsys.readouterr().out
    assert not out.exists()


def test_threshold_env_must_be_numeric(tmp_path, monkeypatch):
    out = tmp_path / "speed.json"
    out.write_text(json.dumps({"schema": 2, "headline": {}}))
    _shrink(monkeypatch)
    monkeypatch.setenv("REPRO_PERF_THRESHOLD", "not-a-number")
    with pytest.raises(ValueError):
        meta.main([str(out), "--check", "--repeats", "1"])
