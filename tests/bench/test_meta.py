"""Tests for the substrate self-benchmark (repro.bench.meta)."""

import json

from repro.bench import meta


def test_bench_engine_counts_every_event():
    result = meta.bench_engine(processes=4, events_per_process=50)
    assert result["events"] == 4 * 50 + 4
    assert result["events_per_sec"] > 0


def test_bench_rdma_serves_all_verbs():
    result = meta.bench_rdma(clients=2, verbs_per_client=100)
    assert result["verbs"] == 200
    assert result["verbs_per_sec"] > 0


def test_bench_cachesim_replays_trace():
    result = meta.bench_cachesim(n_accesses=5000, n_keys=512, capacity=128)
    assert result["accesses"] == 5000
    assert 0.0 < result["hit_rate"] < 1.0
    assert result["evictions"] > 0


def test_main_writes_report(tmp_path, capsys, monkeypatch):
    out = tmp_path / "speed.json"
    # Shrink the workloads so the smoke test stays fast.
    engine_fn, rdma_fn, cache_fn = (
        meta.bench_engine,
        meta.bench_rdma,
        meta.bench_cachesim,
    )
    monkeypatch.setattr(meta, "bench_engine", lambda: engine_fn(4, 50))
    monkeypatch.setattr(meta, "bench_rdma", lambda: rdma_fn(2, 100))
    monkeypatch.setattr(meta, "bench_cachesim", lambda: cache_fn(5000, 512, 128))
    assert meta.main([str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["schema"] == 1
    assert report["headline"]["engine_events_per_sec"] > 0
    assert report["headline"]["cachesim_accesses_per_sec"] > 0
    assert report["headline"]["rdma_verbs_per_sec"] > 0
    assert "wrote" in capsys.readouterr().out
