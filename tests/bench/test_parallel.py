"""Tests for the parallel experiment runner and its result cache."""

import json

import pytest

from repro.bench.parallel import (
    ExperimentJob,
    ParallelRunner,
    ResultCache,
    execute_job,
    jsonify,
    run_grid,
)

FIG04 = "repro.bench.experiments.fig04_cache_size:run"
TINY = {"n_requests": 3000, "n_keys": 256, "size_fracs": (0.1, 0.4)}

# fig02 drives real DittoCluster instances, so traced runs produce spans.
FIG02 = "repro.bench.experiments.fig02_caching_structure_cost:run"
TINY02 = {"n_keys": 200, "client_counts": (1,), "window_us": 2000.0}


# -- jsonify ---------------------------------------------------------------


def test_jsonify_plain_types_roundtrip():
    value = {"a": 1, "b": [1.5, "x", None, True], "c": {"d": (1, 2)}}
    assert jsonify(value) == {"a": 1, "b": [1.5, "x", None, True], "c": {"d": [1, 2]}}


def test_jsonify_numpy():
    np = pytest.importorskip("numpy")
    assert jsonify(np.int64(7)) == 7
    assert jsonify(np.float64(0.5)) == 0.5
    assert jsonify(np.array([1, 2, 3])) == [1, 2, 3]


def test_jsonify_rejects_opaque_objects():
    with pytest.raises(TypeError):
        jsonify(object())


# -- cache keys ------------------------------------------------------------


def test_job_key_is_stable():
    job = ExperimentJob("fig04", FIG04, params=dict(TINY), seed=3)
    assert job.key("quick") == job.key("quick")


def test_job_key_varies_by_every_component():
    base = ExperimentJob("fig04", FIG04, params=dict(TINY), seed=3)
    keys = {
        base.key("quick"),
        base.key("full"),
        ExperimentJob("fig05", FIG04, params=dict(TINY), seed=3).key("quick"),
        ExperimentJob("fig04", FIG04, params=dict(TINY), seed=4).key("quick"),
        ExperimentJob(
            "fig04", FIG04, params={**TINY, "n_keys": 128}, seed=3
        ).key("quick"),
    }
    assert len(keys) == 5


def test_job_key_ignores_param_order():
    a = ExperimentJob("x", FIG04, params={"a": 1, "b": 2})
    b = ExperimentJob("x", FIG04, params={"b": 2, "a": 1})
    assert a.key("quick") == b.key("quick")


# -- result cache ----------------------------------------------------------


def test_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get("deadbeef") is None
    cache.put("deadbeef", {"result": [1, 2], "stdout": "hi\n"})
    assert cache.get("deadbeef") == {"result": [1, 2], "stdout": "hi\n"}
    assert cache.clear() == 1
    assert cache.get("deadbeef") is None


def test_cache_ignores_corrupt_files(tmp_path):
    cache = ResultCache(tmp_path)
    (tmp_path / "bad.json").write_text("{not json", encoding="utf-8")
    assert cache.get("bad") is None


# -- execute_job -----------------------------------------------------------


def test_execute_job_runs_and_captures_stdout():
    raw = execute_job({"fn": FIG04, "params": TINY, "seed": 3})
    assert raw["stdout"] == ""  # run() prints nothing
    rows = raw["result"]["rows"]
    assert [r["cache_frac"] for r in rows] == [0.1, 0.4]


def test_execute_job_rejects_bad_fn():
    with pytest.raises(ValueError):
        execute_job({"fn": "no.colon.here", "params": {}})


# -- the runner ------------------------------------------------------------


def test_runner_results_in_submission_order(tmp_path):
    jobs = [
        ExperimentJob("fig04", FIG04, params=dict(TINY), seed=s)
        for s in (5, 1, 9)
    ]
    runner = ParallelRunner(workers=1, cache_dir=tmp_path)
    outcomes = runner.run(jobs)
    assert [o.job.seed for o in outcomes] == [5, 1, 9]
    assert runner.summary()["simulated"] == 3


def test_second_run_hits_cache_with_zero_simulations(tmp_path):
    jobs = [ExperimentJob("fig04", FIG04, params=dict(TINY), seed=3)]
    first = ParallelRunner(workers=1, cache_dir=tmp_path)
    a = first.run(jobs)
    assert first.summary()["simulated"] == 1
    assert first.summary()["cached"] == 0

    second = ParallelRunner(workers=1, cache_dir=tmp_path)
    b = second.run(jobs)
    assert second.summary()["simulated"] == 0
    assert second.summary()["cached"] == 1
    assert b[0].cached and not a[0].cached
    # Replayed results are byte-identical to the simulated ones.
    assert json.dumps(a[0].result, sort_keys=True) == json.dumps(
        b[0].result, sort_keys=True
    )


def test_no_cache_mode_always_simulates(tmp_path):
    jobs = [ExperimentJob("fig04", FIG04, params=dict(TINY), seed=3)]
    for _ in range(2):
        runner = ParallelRunner(workers=1, use_cache=False)
        runner.run(jobs)
        assert runner.summary() == {
            "jobs": 1,
            "simulated": 1,
            "cached": 0,
            "workers": 1,
            "elapsed_s": runner.summary()["elapsed_s"],
        }


def test_parallel_equals_serial_byte_identical(tmp_path):
    """The acceptance bar: same seeds -> same metrics, pool or no pool."""
    jobs = [
        ExperimentJob("fig04", FIG04, params=dict(TINY), seed=s) for s in (3, 4)
    ]
    serial = ParallelRunner(workers=1, use_cache=False).run(jobs)
    pooled = ParallelRunner(workers=2, use_cache=False).run(jobs)
    assert json.dumps([o.result for o in serial], sort_keys=True) == json.dumps(
        [o.result for o in pooled], sort_keys=True
    )


def test_run_grid_orders_by_point_then_seed(tmp_path):
    grid = [{**TINY, "size_fracs": (f,)} for f in (0.1, 0.4)]
    outcomes = run_grid(
        "fig04", FIG04, grid, seeds=(3, 4), workers=1, cache_dir=tmp_path
    )
    order = [(o.job.params["size_fracs"][0], o.job.seed) for o in outcomes]
    assert order == [(0.1, 3), (0.1, 4), (0.4, 3), (0.4, 4)]


def test_runner_rejects_bad_workers():
    with pytest.raises(ValueError):
        ParallelRunner(workers=0)


# -- per-job profiling (REPRO_PROFILE=1) -----------------------------------


def test_profile_writes_one_file_per_job(tmp_path, monkeypatch):
    import pstats

    monkeypatch.setenv("REPRO_PROFILE", "1")
    monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path / "profs"))
    jobs = [
        ExperimentJob("fig04", FIG04, params=dict(TINY), seed=s) for s in (3, 4)
    ]
    outcomes = ParallelRunner(workers=1, use_cache=False).run(jobs)
    assert len(outcomes) == 2
    files = sorted((tmp_path / "profs").glob("bench_fig04_*.prof"))
    # one profile per job, keyed by the cache key: no clobbering
    assert len(files) == 2
    for path in files:
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0


def test_profile_off_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path / "profs"))
    execute_job({"fn": FIG04, "params": TINY, "seed": 3})
    assert not (tmp_path / "profs").exists()


def test_profile_composes_with_pool(tmp_path, monkeypatch):
    """Profiles from spawn workers land in the same directory, distinct files."""
    import pstats

    monkeypatch.setenv("REPRO_PROFILE", "1")
    monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path / "profs"))
    jobs = [
        ExperimentJob("fig04", FIG04, params=dict(TINY), seed=s) for s in (3, 4)
    ]
    ParallelRunner(workers=2, use_cache=False).run(jobs)
    files = sorted((tmp_path / "profs").glob("bench_fig04_*.prof"))
    assert len(files) == 2
    assert pstats.Stats(str(files[0])).total_calls > 0


# -- per-job tracing (trace_dir) --------------------------------------------


def test_trace_dir_produces_valid_traces_and_metrics(tmp_path):
    import os

    from repro.obs import validate_trace

    jobs = [ExperimentJob("fig02", FIG02, params=dict(TINY02))]
    runner = ParallelRunner(
        workers=1, use_cache=False, trace_dir=str(tmp_path / "traces")
    )
    (outcome,) = runner.run(jobs)
    assert outcome.trace_file == os.path.join(
        str(tmp_path / "traces"), "fig02.trace.json"
    )
    with open(outcome.trace_file, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert validate_trace(doc) == []
    assert outcome.metrics is not None
    assert outcome.metrics["trace"]["events"] > 0
    names = {e["name"] for e in doc["traceEvents"]}
    assert "rdma.read" in names and "measure" in names


def test_trace_names_disambiguate_grid_points(tmp_path):
    jobs = [
        ExperimentJob("fig04", FIG04, params=dict(TINY), seed=s) for s in (3, 4)
    ]
    runner = ParallelRunner(
        workers=1, use_cache=False, trace_dir=str(tmp_path / "traces")
    )
    outcomes = runner.run(jobs)
    names = {o.trace_file for o in outcomes}
    assert len(names) == 2
    for name in names:
        assert "fig04_" in name  # key-suffixed, not the bare experiment name


def test_cached_replay_carries_metrics(tmp_path):
    jobs = [ExperimentJob("fig04", FIG04, params=dict(TINY), seed=3)]
    first = ParallelRunner(
        workers=1, cache_dir=tmp_path / "cache",
        trace_dir=str(tmp_path / "traces"),
    )
    (a,) = first.run(jobs)
    second = ParallelRunner(
        workers=1, cache_dir=tmp_path / "cache",
        trace_dir=str(tmp_path / "traces"),
    )
    (b,) = second.run(jobs)
    assert b.cached
    assert b.metrics == a.metrics
    assert b.trace_file == a.trace_file


def test_untraced_runs_have_no_metrics(tmp_path):
    jobs = [ExperimentJob("fig04", FIG04, params=dict(TINY), seed=3)]
    (outcome,) = ParallelRunner(workers=1, use_cache=False).run(jobs)
    assert outcome.metrics is None and outcome.trace_file is None


def test_traced_result_identical_to_untraced(tmp_path):
    """Observability must not perturb the simulation itself."""
    jobs = [ExperimentJob("fig04", FIG04, params=dict(TINY), seed=3)]
    (plain,) = ParallelRunner(workers=1, use_cache=False).run(jobs)
    (traced,) = ParallelRunner(
        workers=1, use_cache=False, trace_dir=str(tmp_path / "traces")
    ).run(jobs)
    assert json.dumps(plain.result, sort_keys=True) == json.dumps(
        traced.result, sort_keys=True
    )
    assert plain.stdout == traced.stdout


# -- run_all CLI integration ----------------------------------------------


def test_run_all_parallel_matches_serial_output(tmp_path, capsys, monkeypatch):
    from repro.bench import run_all

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert run_all.main(["tab02"]) == 0
    serial_out = capsys.readouterr().out

    assert run_all.main(["-j", "1", "tab02"]) == 0
    parallel_out = capsys.readouterr().out
    assert run_all.main(["-j", "1", "tab02"]) == 0
    cached_out = capsys.readouterr().out

    def table_of(text):
        # The experiment's own lines, without harness timing/summary chrome.
        lines = [
            line
            for line in text.splitlines()
            if not line.startswith(("[", "parallel runner:", "scale:"))
        ]
        while lines and not lines[-1]:
            lines.pop()
        return lines

    assert table_of(serial_out) == table_of(parallel_out) == table_of(cached_out)
    assert "(1 simulated, 0 cached)" in parallel_out
    assert "(0 simulated, 1 cached)" in cached_out


def test_run_all_rejects_nonpositive_workers(capsys):
    from repro.bench import run_all

    for flag in ("0", "-3"):
        assert run_all.main(["-j", flag, "tab02"]) == 2
        assert "positive worker count" in capsys.readouterr().out


def test_run_all_clear_cache(tmp_path, capsys, monkeypatch):
    from repro.bench import run_all

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert run_all.main(["-j", "1", "tab02"]) == 0
    capsys.readouterr()
    assert run_all.main(["--clear-cache"]) == 0
    assert "cleared 1 cached results" in capsys.readouterr().out
