"""Tests for the run-all CLI registry."""

from repro.bench import run_all
from repro.bench.experiments import tab02_workload_catalog


def test_registry_covers_every_figure():
    expected = {
        "fig01", "fig02", "fig03", "fig04", "fig05",
        "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
        "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "tab02",
        "extra-samples", "extra-history", "extra-faults",
        "extra-elasticity-churn", "extra-controller-failover",
        "extra-failover-timeline",
    }
    assert set(run_all.EXPERIMENTS) == expected


def test_every_entry_has_main_and_run():
    for module in run_all.EXPERIMENTS.values():
        assert callable(getattr(module, "main"))
        assert callable(getattr(module, "run"))


def test_unknown_experiment_rejected():
    assert run_all.main(["nope"]) == 2


def test_single_experiment_runs(capsys):
    assert run_all.main(["tab02"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out


def test_module_is_registered():
    assert run_all.EXPERIMENTS["tab02"] is tab02_workload_catalog


def test_examples_compile():
    """Every example script must at least be valid Python."""
    import pathlib

    examples = pathlib.Path(__file__).resolve().parents[2] / "examples"
    scripts = sorted(examples.glob("*.py"))
    assert len(scripts) >= 5
    for script in scripts:
        compile(script.read_text(), str(script), "exec")
