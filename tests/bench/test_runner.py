"""Tests for the timed-workload harness."""

import numpy as np
import pytest

from repro.bench import Feed, Harness, make_value, pack_key, preload
from repro.bench.runner import READ, UPDATE
from repro.core import DittoCluster


class TestFeed:
    def test_cycles(self):
        feed = Feed.reads([1, 2, 3])
        drawn = [feed.next()[1] for _ in range(7)]
        assert drawn == [1, 2, 3, 1, 2, 3, 1]

    def test_reads_are_reads(self):
        feed = Feed.reads([5])
        op, key = feed.next()
        assert op == READ and key == 5

    def test_from_requests(self):
        feed = Feed.from_requests([("read", 1), ("update", 2), ("insert", 3)])
        assert feed.next() == (READ, 1)
        assert feed.next() == (UPDATE, 2)
        assert feed.next()[1] == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Feed.reads([])

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            Feed(np.array([0]), np.array([1, 2]))


class TestPackKey:
    def test_eight_bytes(self):
        assert len(pack_key(0)) == 8
        assert len(pack_key(2**63)) == 8

    def test_distinct(self):
        assert pack_key(1) != pack_key(2)


def test_make_value():
    assert len(make_value(100)) == 100


class TestHarness:
    @pytest.fixture()
    def cluster(self):
        return DittoCluster(
            capacity_objects=2048, object_bytes=64, num_clients=4, seed=3
        )

    def test_preload_populates(self, cluster):
        preload(cluster.engine, cluster.clients, range(100), value_size=32)
        assert cluster.object_count == 100

    def test_measure_counts_ops_and_latency(self, cluster):
        preload(cluster.engine, cluster.clients, range(100), value_size=32)
        harness = Harness(cluster.engine, value_size=32)
        feeds = [Feed.reads(list(range(100))) for _ in cluster.clients]
        harness.launch_all(cluster.clients, feeds)
        result = harness.measure(5_000.0)
        assert result.ops > 0
        assert result.throughput_mops > 0
        assert result.get_latency.count > 0
        assert result.hits > 0 and result.misses == 0

    def test_warm_does_not_record(self, cluster):
        preload(cluster.engine, cluster.clients, range(50), value_size=32)
        harness = Harness(cluster.engine, value_size=32)
        harness.launch_all(cluster.clients, [Feed.reads(range(50))] * 4)
        harness.warm(2_000.0)
        assert harness.series.total == 0

    def test_miss_penalty_fills_cache(self, cluster):
        harness = Harness(cluster.engine, value_size=32, miss_penalty_us=500.0)
        harness.launch_all(cluster.clients, [Feed.reads(range(40))] * 4)
        result = harness.measure(20_000.0)
        assert result.misses > 0
        assert cluster.object_count > 0
        # penalized ops (the cold misses) take at least the penalty
        assert result.get_latency.percentile(100) >= 500.0

    def test_stop_halts_drivers(self, cluster):
        preload(cluster.engine, cluster.clients, range(10), value_size=32)
        harness = Harness(cluster.engine, value_size=32)
        handles = harness.launch_all(cluster.clients, [Feed.reads(range(10))] * 4)
        harness.measure(1_000.0)
        for handle in handles:
            harness.stop(handle)
        first = harness.measure(1_000.0).ops
        # drivers wind down after finishing their in-flight op
        second = harness.measure(1_000.0).ops
        assert second <= max(first, 4)

    def test_two_windows_independent(self, cluster):
        preload(cluster.engine, cluster.clients, range(100), value_size=32)
        harness = Harness(cluster.engine, value_size=32)
        harness.launch_all(cluster.clients, [Feed.reads(range(100))] * 4)
        first = harness.measure(3_000.0)
        second = harness.measure(3_000.0)
        assert abs(first.ops - second.ops) < max(first.ops, second.ops)
        assert second.duration_us == pytest.approx(3_000.0)
