"""Tests for the exact cache models (CM baselines, random, Belady)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim import (
    BeladyCache,
    ExactLFUCache,
    ExactLRUCache,
    RandomCache,
)


class TestExactLRU:
    def test_textbook_sequence(self):
        cache = ExactLRUCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # refresh a
        cache.access("c")  # evicts b
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_counters(self):
        cache = ExactLRUCache(2)
        cache.access("a")
        cache.access("a")
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_touch_no_accounting(self):
        cache = ExactLRUCache(2)
        cache.access("a")
        cache.access("b")
        assert cache.touch("a") is True
        assert cache.touch("ghost") is False
        assert (cache.hits, cache.misses) == (0, 2)
        cache.access("c")  # b was least recent after the touch
        assert "b" not in cache and "a" in cache

    def test_insert_returns_evicted(self):
        cache = ExactLRUCache(1)
        assert cache.insert("a") == []
        assert cache.insert("b") == ["a"]

    def test_capacity_bound(self):
        cache = ExactLRUCache(3)
        for i in range(50):
            cache.access(i)
        assert len(cache) == 3


class TestExactLFU:
    def test_evicts_least_frequent(self):
        cache = ExactLFUCache(2)
        for key in ("a", "a", "b"):
            cache.access(key)
        cache.access("c")  # b has freq 1, a has 2
        assert "b" not in cache and "a" in cache

    def test_tie_breaks_lru(self):
        cache = ExactLFUCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("c")  # a and b tie at freq 1; a is older
        assert "a" not in cache and "b" in cache

    def test_frequency_survives_capacity_pressure(self):
        cache = ExactLFUCache(3)
        for _ in range(10):
            cache.access("hot")
        for i in range(20):
            cache.access(f"cold{i}")
        assert "hot" in cache

    def test_touch_and_insert(self):
        cache = ExactLFUCache(2)
        cache.insert("a")
        cache.insert("b")
        cache.touch("a")  # a now freq 2
        evicted = cache.insert("c")
        assert evicted == ["b"]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=200), st.integers(1, 8))
    def test_matches_naive_lfu(self, trace, capacity):
        """Cross-check the O(1) LFU against a brute-force reference."""
        fast = ExactLFUCache(capacity)
        store = {}  # key -> [freq, last_tick]
        tick = 0
        for key in trace:
            tick += 1
            fast_hit = fast.access(key)
            ref_hit = key in store
            if ref_hit:
                store[key][0] += 1
                store[key][1] = tick
            else:
                if len(store) >= capacity:
                    victim = min(store, key=lambda k: (store[k][0], store[k][1]))
                    del store[victim]
                store[key] = [1, tick]
            assert fast_hit == ref_hit
        assert set(store) == {k for k in store if k in fast}


class TestRandomCache:
    def test_capacity(self):
        cache = RandomCache(4, seed=1)
        for i in range(100):
            cache.access(i)
            assert len(cache) <= 4

    def test_hits_for_resident_keys(self):
        cache = RandomCache(4, seed=1)
        cache.access("a")
        assert cache.access("a") is True

    def test_deterministic_by_seed(self):
        def run(seed):
            cache = RandomCache(4, seed=seed)
            return [cache.access(i % 10) for i in range(100)]

        assert run(7) == run(7)


class TestBelady:
    def test_optimal_on_cyclic_trace(self):
        trace = [i % 4 for i in range(40)]
        belady = BeladyCache(3, trace)
        hit = belady.run()
        lru = ExactLRUCache(3)
        for key in trace:
            lru.access(key)
        assert hit >= lru.hit_rate()

    def test_beats_or_matches_lru_and_lfu(self):
        rng = random.Random(5)
        trace = [rng.randrange(20) for _ in range(500)]
        belady = BeladyCache(5, trace).run()
        for cls in (ExactLRUCache, ExactLFUCache):
            cache = cls(5)
            for key in trace:
                cache.access(key)
            assert belady >= cache.hit_rate() - 1e-9

    def test_access_not_supported(self):
        with pytest.raises(NotImplementedError):
            BeladyCache(2, [1, 2]).access(1)


def test_resize_validation():
    for cls in (ExactLRUCache, ExactLFUCache):
        with pytest.raises(ValueError):
            cls(0)
        cache = cls(2)
        with pytest.raises(ValueError):
            cache.resize(0)
