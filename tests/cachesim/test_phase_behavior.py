"""Behavioural tests of the adaptive simulator across workload phases."""

import pytest

from repro.cachesim import SampledAdaptiveCache
from repro.workloads import (
    phase_switch_trace,
    scan_polluted_trace,
    shifting_hotspot_trace,
    zipfian_trace,
)


def run_trace(cache, trace):
    for key in trace:
        cache.access(int(key))
    return cache.hit_rate()


class TestEnvelope:
    """Ditto must live inside (and toward the top of) its experts' envelope."""

    @pytest.mark.parametrize(
        "trace_fn",
        [
            lambda: zipfian_trace(50_000, 2048, theta=1.0, seed=6),
            lambda: shifting_hotspot_trace(50_000, 2048, seed=6),
            lambda: scan_polluted_trace(50_000, 2048, seed=6),
        ],
        ids=["zipf", "drift", "scan"],
    )
    def test_bounded_by_experts(self, trace_fn):
        trace = trace_fn()
        lru = run_trace(SampledAdaptiveCache(256, policies=("lru",), seed=2), trace)
        lfu = run_trace(SampledAdaptiveCache(256, policies=("lfu",), seed=2), trace)
        ditto = run_trace(SampledAdaptiveCache(256, policies=("lru", "lfu"), seed=2), trace)
        assert min(lru, lfu) - 0.03 <= ditto <= max(lru, lfu) + 0.03


class TestPhaseSwitching:
    def test_ditto_beats_worse_expert_on_switching_workload(self):
        trace = phase_switch_trace(80_000, 2048, phases=4, seed=7)
        lru = run_trace(SampledAdaptiveCache(256, policies=("lru",), seed=2), trace)
        lfu = run_trace(SampledAdaptiveCache(256, policies=("lfu",), seed=2), trace)
        ditto = run_trace(SampledAdaptiveCache(256, policies=("lru", "lfu"), seed=2), trace)
        assert ditto > min(lru, lfu)
        assert ditto >= max(lru, lfu) - 0.02

    def test_weights_move_between_phases(self):
        trace = phase_switch_trace(80_000, 2048, phases=2, seed=7)
        cache = SampledAdaptiveCache(256, policies=("lru", "lfu"), seed=2)
        half = len(trace) // 2
        for key in trace[:half]:
            cache.access(int(key))
        weights_after_lru_phase = list(cache.weights.weights)
        for key in trace[half:]:
            cache.access(int(key))
        weights_after_lfu_phase = list(cache.weights.weights)
        # The LFU-friendly phase shifts mass toward LFU relative to before.
        assert weights_after_lfu_phase[1] != pytest.approx(
            weights_after_lru_phase[1], abs=1e-6
        )


class TestThreeExperts:
    def test_three_expert_adaptive_runs(self):
        trace = zipfian_trace(30_000, 1024, theta=1.0, seed=8)
        cache = SampledAdaptiveCache(
            128, policies=("lru", "lfu", "fifo"), seed=3
        )
        run_trace(cache, trace)
        assert len(cache.expert_weights) == 3
        assert sum(cache.expert_weights) == pytest.approx(1.0)

    def test_bitmaps_cover_all_experts(self):
        """With 3 experts the history bitmap can name any subset."""
        trace = zipfian_trace(20_000, 512, theta=0.8, seed=8)
        cache = SampledAdaptiveCache(64, policies=("lru", "lfu", "fifo"), seed=3)
        bitmaps = set()
        original = cache._record_history

        def spy(key, bitmap):
            bitmaps.add(bitmap)
            original(key, bitmap)

        cache._record_history = spy
        run_trace(cache, trace)
        assert all(1 <= b <= 0b111 for b in bitmaps)
        assert len(bitmaps) >= 2  # experts do disagree sometimes
