"""Tests for the fast sampled/adaptive cache simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim import SampledAdaptiveCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = SampledAdaptiveCache(4, policies=("lru",))
        assert cache.access("a") is False
        assert cache.access("a") is True
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_capacity_respected(self):
        cache = SampledAdaptiveCache(4, policies=("lru",))
        for i in range(100):
            cache.access(i)
            assert len(cache) <= 4

    def test_contains(self):
        cache = SampledAdaptiveCache(4, policies=("lru",))
        cache.access("a")
        assert "a" in cache and "b" not in cache

    def test_lookup_does_not_insert(self):
        cache = SampledAdaptiveCache(4, policies=("lru",))
        assert cache.lookup("a") is False
        assert "a" not in cache
        assert cache.misses == 1

    def test_insert_explicit(self):
        cache = SampledAdaptiveCache(4, policies=("lru",))
        cache.insert("a")
        assert "a" in cache
        assert cache.misses == 0  # explicit insert is not a miss

    def test_full_sample_is_exact_lru(self):
        """With sample_size >= capacity, sampling degenerates to exact LRU."""
        cache = SampledAdaptiveCache(3, policies=("lru",), sample_size=3)
        for key in ("a", "b", "c"):
            cache.access(key)
        cache.access("a")  # refresh a
        cache.access("d")  # evicts b (least recent)
        assert "b" not in cache
        assert all(k in cache for k in ("a", "c", "d"))

    def test_full_sample_is_exact_lfu(self):
        cache = SampledAdaptiveCache(3, policies=("lfu",), sample_size=3)
        for key in ("a", "a", "a", "b", "b", "c"):
            cache.access(key)
        cache.access("d")  # evicts c (freq 1)
        assert "c" not in cache and "a" in cache and "b" in cache

    def test_fifo_ignores_recency(self):
        cache = SampledAdaptiveCache(2, policies=("fifo",), sample_size=2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # refresh does not help FIFO
        cache.access("c")  # evicts a (oldest insert)
        assert "a" not in cache and "b" in cache

    def test_resize(self):
        cache = SampledAdaptiveCache(8, policies=("lru",))
        for i in range(8):
            cache.access(i)
        cache.resize(2)
        cache.access("new")
        assert len(cache) <= 8  # shrinks gradually via evictions
        for i in range(10):
            cache.access(f"more{i}")
        assert len(cache) <= 2

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SampledAdaptiveCache(0)
        with pytest.raises(ValueError):
            SampledAdaptiveCache(4).resize(0)


class TestAdaptive:
    def test_regrets_recorded(self):
        cache = SampledAdaptiveCache(4, policies=("lru", "lfu"), history_size=32, seed=1)
        for i in range(80):
            cache.access(i % 12)
        assert cache.regrets > 0

    def test_weights_remain_distribution(self):
        cache = SampledAdaptiveCache(8, policies=("lru", "lfu"), seed=1)
        for i in range(500):
            cache.access((i * 13) % 40)
        assert sum(cache.expert_weights) == pytest.approx(1.0)
        assert all(w > 0 for w in cache.expert_weights)

    def test_history_bounded(self):
        cache = SampledAdaptiveCache(8, policies=("lru", "lfu"), history_size=8, seed=1)
        for i in range(2000):
            cache.access(i)  # all misses: constant eviction
        assert len(cache._history) <= 3 * 8  # lazy pruning keeps it small

    def test_single_policy_has_no_adaptive_overhead(self):
        cache = SampledAdaptiveCache(4, policies=("lru",))
        for i in range(100):
            cache.access(i)
        assert cache.regrets == 0
        assert cache.adaptive is False

    def test_adaptive_tracks_best_on_stark_workload(self):
        """A loop larger than the cache: LRU fails badly, LFU retains a core;
        the adaptive cache must land much closer to LFU."""
        trace = [i % 450 for i in range(60_000)]

        def run(policies):
            cache = SampledAdaptiveCache(300, policies=policies, seed=3)
            for key in trace:
                cache.access(key)
            return cache.hit_rate()

        lru, lfu, ditto = run(("lru",)), run(("lfu",)), run(("lru", "lfu"))
        assert lfu > lru
        assert ditto > lru + 0.5 * (lfu - lru)

    def test_deterministic_given_seed(self):
        def run():
            cache = SampledAdaptiveCache(16, policies=("lru", "lfu"), seed=9)
            for i in range(300):
                cache.access((i * 7) % 60)
            return cache.hits, cache.evictions, tuple(cache.expert_weights)

        assert run() == run()


class TestPropertyInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=400),
        st.integers(1, 20),
        st.sampled_from([("lru",), ("lfu",), ("lru", "lfu"), ("fifo", "size")]),
    )
    def test_capacity_and_accounting_invariants(self, trace, capacity, policies):
        cache = SampledAdaptiveCache(capacity, policies=policies, seed=0)
        for key in trace:
            cache.access(key)
        assert len(cache) <= capacity
        assert cache.hits + cache.misses == len(trace)
        assert cache.evictions <= cache.misses
        # key bookkeeping consistent
        assert len(cache._keys) == len(cache._store)
        assert set(cache._keys) == set(cache._store)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 10), min_size=1, max_size=100))
    def test_hits_iff_present(self, trace):
        cache = SampledAdaptiveCache(5, policies=("lru",), seed=0)
        for key in trace:
            present = key in cache
            assert cache.access(key) == present
