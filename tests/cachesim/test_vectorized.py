"""Byte-identity of the vectorized cachesim replay vs the scalar loop.

The vectorized path (``repro.cachesim.vectorized``) is an optimization, not
a model: for every eligible configuration it must leave the cache in a state
indistinguishable from the scalar per-access loop — same counters, same
store (including dict insertion order), same packed history, same expert
weights, and the *same RNG stream position*, so a scalar access issued after
a vectorized batch continues the exact sequence.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim import SampledAdaptiveCache
from repro.cachesim import vectorized


def snapshot(cache):
    """Every observable (and replay-relevant internal) piece of state."""
    return {
        "hits": cache.hits,
        "misses": cache.misses,
        "evictions": cache.evictions,
        "tick": cache._tick,
        "store": [
            (k, m.freq, m.last_ts, m.insert_ts, m.size, m.cost)
            for k, m in cache._store.items()
        ],
        "keys": list(cache._keys),
        "key_pos": dict(cache._key_pos),
        "history": dict(cache._history),
        "history_fifo": list(cache._history_fifo),
        "history_base": cache._history_base,
        "history_counter": cache._history_counter,
        "weights": list(cache.weights.weights),
        "pending": list(cache.weights._pending),
        "pending_count": cache.weights._pending_count,
        "rng": cache.rng.getstate(),
    }


def replay_both(trace, splits=(), **config):
    """Scalar-replay and vectorized-replay the same trace; return snapshots.

    ``splits`` cuts the trace into consecutive batches, exercising state
    carry-over between vectorized calls.
    """
    scalar = SampledAdaptiveCache(**config)
    for key in trace:
        scalar.access(int(key))

    vec = SampledAdaptiveCache(**config)
    arr = np.asarray(trace, dtype=np.int64)
    bounds = [0, *sorted(splits), len(trace)]
    for lo, hi in zip(bounds, bounds[1:]):
        batch = arr[lo:hi]
        if batch.size == 0:
            continue
        assert vectorized.eligible(vec, batch), "config must stay eligible"
        vectorized.replay(vec, batch)
    return snapshot(scalar), snapshot(vec)


POLICY_SETS = [("lru", "lfu"), ("lru",), ("lfu",), ("fifo",), ("mru",),
               ("mru", "fifo")]


@pytest.mark.parametrize("policies", POLICY_SETS)
def test_identity_on_zipf_like_trace(policies):
    rng = random.Random(7)
    trace = [int(rng.paretovariate(1.2)) % 300 for _ in range(4000)]
    scalar, vec = replay_both(
        trace, capacity=64, policies=policies, seed=3)
    assert scalar == vec


def test_identity_across_batch_boundaries():
    rng = random.Random(1)
    trace = [rng.randrange(200) for _ in range(3000)]
    scalar, vec = replay_both(
        trace, splits=(500, 1999), capacity=48, policies=("lru", "lfu"),
        seed=9)
    assert scalar == vec


def test_identity_tiny_store_never_draws():
    # capacity <= sample_size: eviction scans the whole store, no RNG draws.
    trace = [i % 20 for i in range(400)]
    scalar, vec = replay_both(
        trace, capacity=8, policies=("lru", "lfu"), sample_size=16, seed=0)
    assert scalar == vec


def test_scalar_access_continues_after_vectorized_batch():
    config = dict(capacity=32, policies=("lru", "lfu"), seed=5)
    trace = [random.Random(2).randrange(100) for _ in range(2000)]
    trace = [v for v in trace]
    scalar = SampledAdaptiveCache(**config)
    for key in trace:
        scalar.access(key)
    for key in (1, 2, 3, 99, 1):
        scalar.access(key)

    vec = SampledAdaptiveCache(**config)
    vectorized.replay(vec, np.asarray(trace, dtype=np.int64))
    for key in (1, 2, 3, 99, 1):
        vec.access(key)  # scalar tail must continue the exact RNG stream
    assert snapshot(scalar) == snapshot(vec)


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(st.integers(min_value=0, max_value=120),
                   min_size=1, max_size=600),
    capacity=st.integers(min_value=2, max_value=40),
    sample_size=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=50),
    policies=st.sampled_from(POLICY_SETS),
)
def test_identity_property(trace, capacity, sample_size, seed, policies):
    scalar, vec = replay_both(
        trace, capacity=capacity, policies=policies,
        sample_size=sample_size, seed=seed)
    assert scalar == vec


@settings(max_examples=20, deadline=None)
@given(
    trace=st.lists(st.integers(min_value=0, max_value=60),
                   min_size=2, max_size=400),
    cut=st.integers(min_value=1, max_value=399),
    seed=st.integers(min_value=0, max_value=20),
)
def test_identity_property_with_split(trace, cut, seed):
    scalar, vec = replay_both(
        trace, splits=(min(cut, len(trace) - 1),), capacity=16,
        policies=("lru", "lfu"), seed=seed)
    assert scalar == vec


# -- dispatch & eligibility gating -------------------------------------------


def test_access_many_uses_vectorized_for_large_arrays(monkeypatch):
    calls = []
    original = vectorized.replay

    def spy(cache, keys):
        calls.append(len(keys))
        return original(cache, keys)

    monkeypatch.setattr(vectorized, "replay", spy)
    cache = SampledAdaptiveCache(64, policies=("lru", "lfu"), seed=0)
    trace = np.arange(vectorized.MIN_BATCH, dtype=np.int64) % 200
    cache.access_many(trace)
    assert calls == [vectorized.MIN_BATCH]


def test_access_many_small_batches_stay_scalar(monkeypatch):
    monkeypatch.setattr(
        vectorized, "replay",
        lambda *a: pytest.fail("scalar path expected"))
    cache = SampledAdaptiveCache(64, policies=("lru", "lfu"), seed=0)
    cache.access_many(np.arange(vectorized.MIN_BATCH - 1, dtype=np.int64))
    assert cache.hits + cache.misses == vectorized.MIN_BATCH - 1


def test_env_switch_forces_scalar(monkeypatch):
    monkeypatch.setenv("REPRO_VECTORIZE", "0")
    cache = SampledAdaptiveCache(64, policies=("lru", "lfu"), seed=0)
    keys = np.arange(2048, dtype=np.int64) % 100
    assert not vectorized.eligible(cache, keys)
    monkeypatch.setattr(
        vectorized, "replay",
        lambda *a: pytest.fail("REPRO_VECTORIZE=0 must force scalar"))
    cache.access_many(keys)
    assert cache.hits + cache.misses == 2048


def test_unsupported_policy_not_eligible():
    cache = SampledAdaptiveCache(
        64, policies=("lru", "size"), seed=0)  # size-based: not vectorized
    keys = np.arange(2048, dtype=np.int64)
    assert not vectorized.eligible(cache, keys)


def test_huge_keys_not_eligible():
    cache = SampledAdaptiveCache(64, policies=("lru", "lfu"), seed=0)
    keys = np.array([vectorized.MAX_KEY + 1] * 2048, dtype=np.int64)
    assert not vectorized.eligible(cache, keys)


def test_float_trace_not_eligible():
    cache = SampledAdaptiveCache(64, policies=("lru", "lfu"), seed=0)
    assert not vectorized.eligible(cache, np.ones(2048, dtype=np.float64))


def test_vectorized_result_matches_hit_rate_contract():
    cache = SampledAdaptiveCache(128, policies=("lru", "lfu"), seed=0)
    keys = (np.arange(4096, dtype=np.int64) * 17) % 512
    vectorized.replay(cache, keys)
    assert cache.hits + cache.misses == 4096
    assert 0.0 <= cache.hit_rate() <= 1.0
