"""Unit tests for regret-minimization expert weights (§4.3.2)."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ExpertWeights, GlobalWeights, bitmap_of


def make_weights(n=2, history=100, lr=0.1, batch=10, seed=1):
    return ExpertWeights(
        num_experts=n, history_size=history, learning_rate=lr,
        batch_size=batch, rng=random.Random(seed),
    )


class TestExpertWeights:
    def test_starts_uniform(self):
        w = make_weights(n=4)
        assert w.weights == pytest.approx([0.25] * 4)

    def test_regret_decreases_penalized_expert(self):
        w = make_weights()
        w.apply_regret(0b01, age=0)  # penalize expert 0
        assert w.weights[0] < w.weights[1]

    def test_regret_on_both_cancels_out(self):
        w = make_weights()
        w.apply_regret(0b11, age=0)
        assert w.weights[0] == pytest.approx(w.weights[1])

    def test_older_regrets_penalize_less(self):
        fresh, stale = make_weights(), make_weights()
        fresh.apply_regret(0b01, age=0)
        stale.apply_regret(0b01, age=99)
        assert fresh.weights[0] < stale.weights[0]

    def test_discount_matches_lecar(self):
        w = make_weights(history=200)
        assert w.discount == pytest.approx(0.005 ** (1 / 200))

    def test_weights_stay_normalized(self):
        w = make_weights()
        for i in range(50):
            w.apply_regret(0b01 if i % 3 else 0b10, age=i % 7)
        assert sum(w.weights) == pytest.approx(1.0)

    def test_weight_floor_prevents_lockout(self):
        w = make_weights(lr=5.0)
        for _ in range(200):
            w.apply_regret(0b01, age=0)
        assert w.weights[0] > 0

    def test_batch_flush_signal(self):
        w = make_weights(batch=3)
        assert not w.apply_regret(0b01, 0)
        assert not w.apply_regret(0b01, 0)
        assert w.apply_regret(0b01, 0)  # third regret -> flush

    def test_take_pending_compresses_and_resets(self):
        w = make_weights(batch=100)
        w.apply_regret(0b01, age=0)
        w.apply_regret(0b01, age=0)
        w.apply_regret(0b10, age=0)
        pending = w.take_pending()
        assert pending[0] == pytest.approx(2.0)
        assert pending[1] == pytest.approx(1.0)
        assert w.pending_count == 0
        assert w.take_pending() == [0.0, 0.0]

    def test_choose_respects_weights(self):
        w = make_weights(seed=42)
        w.weights = [0.99, 0.01]
        picks = [w.choose() for _ in range(1000)]
        assert picks.count(0) > 900

    def test_choose_single_expert(self):
        w = make_weights(n=1)
        assert w.choose() == 0

    def test_set_weights_normalizes(self):
        w = make_weights()
        w.set_weights([3.0, 1.0])
        assert w.weights == pytest.approx([0.75, 0.25])

    def test_set_weights_length_checked(self):
        with pytest.raises(ValueError):
            make_weights().set_weights([1.0])

    def test_rejects_zero_experts(self):
        with pytest.raises(ValueError):
            make_weights(n=0)

    @given(st.integers(1, 15), st.integers(0, 300))
    def test_normalization_invariant(self, bitmap, age):
        w = ExpertWeights(4, history_size=100, rng=random.Random(0))
        w.apply_regret(bitmap, age)
        assert sum(w.weights) == pytest.approx(1.0)
        assert all(x > 0 for x in w.weights)


class TestSelectionModes:
    def test_greedy_follows_top_weight(self):
        w = make_weights(seed=3)
        w.selection = "greedy"
        w.epsilon = 0.0
        w.weights = [0.3, 0.7]
        assert all(w.choose() == 1 for _ in range(50))

    def test_greedy_explores_with_epsilon(self):
        w = ExpertWeights(
            2, history_size=100, rng=random.Random(4),
            selection="greedy", epsilon=0.5,
        )
        w.weights = [0.99, 0.01]
        picks = [w.choose() for _ in range(400)]
        assert picks.count(1) > 50  # exploration reaches the underdog

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="selection"):
            ExpertWeights(2, history_size=10, selection="thompson")

    def test_modes_share_regret_machinery(self):
        for mode in ExpertWeights.SELECTION_MODES:
            w = ExpertWeights(2, history_size=100, selection=mode,
                              rng=random.Random(1))
            w.apply_regret(0b01, age=0)
            assert w.weights[0] < w.weights[1]


class TestGlobalWeights:
    def test_handle_update_applies_compressed_penalties(self):
        g = GlobalWeights(2, learning_rate=0.1)
        new = g.handle_update([5.0, 0.0])
        assert new[0] < new[1]
        assert sum(new) == pytest.approx(1.0)

    def test_matches_incremental_application(self):
        """Compression trick: sum of penalties == product of exponentials."""
        g_batch = GlobalWeights(2, learning_rate=0.1)
        g_batch.handle_update([3.0, 0.0])
        g_inc = GlobalWeights(2, learning_rate=0.1)
        for _ in range(3):
            g_inc.handle_update([1.0, 0.0])
        assert g_batch.weights == pytest.approx(g_inc.weights)

    def test_length_checked(self):
        with pytest.raises(ValueError):
            GlobalWeights(2).handle_update([1.0])


class TestBitmapOf:
    def test_single_expert(self):
        assert bitmap_of([5, 7], victim_index=5) == 0b01

    def test_both_experts(self):
        assert bitmap_of([5, 5], victim_index=5) == 0b11

    def test_second_only(self):
        assert bitmap_of([3, 9], victim_index=9) == 0b10

    def test_no_match(self):
        assert bitmap_of([1, 2], victim_index=7) == 0
