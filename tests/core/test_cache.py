"""Tests for the DittoCache public façade."""

import pytest

from repro import DittoCache


@pytest.fixture()
def cache():
    return DittoCache(capacity_objects=256, object_bytes=64, num_clients=2, seed=5)


class TestApi:
    def test_str_and_bytes_keys(self, cache):
        cache.set("text", "value")
        cache.set(b"raw", b"bytes")
        assert cache.get("text") == b"value"
        assert cache.get(b"raw") == b"bytes"

    def test_missing_key_none(self, cache):
        assert cache.get("ghost") is None

    def test_contains(self, cache):
        cache.set("k", "v")
        assert "k" in cache
        assert "other" not in cache

    def test_len_tracks_objects(self, cache):
        assert len(cache) == 0
        cache.set("a", "1")
        cache.set("b", "2")
        assert len(cache) == 2
        cache.delete("a")
        assert len(cache) == 1

    def test_delete_returns_presence(self, cache):
        cache.set("k", "v")
        assert cache.delete("k") is True
        assert cache.delete("k") is False

    def test_get_or_load(self, cache):
        calls = []

        def loader():
            calls.append(1)
            return "loaded"

        assert cache.get_or_load("k", loader) == b"loaded"
        assert cache.get_or_load("k", loader) == b"loaded"
        assert len(calls) == 1

    def test_type_errors(self, cache):
        with pytest.raises(TypeError):
            cache.set(123, "v")
        with pytest.raises(TypeError):
            cache.set("k", 4.5)

    def test_stats_and_hit_rate(self, cache):
        cache.set("k", "v")
        cache.get("k")
        cache.get("absent")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert cache.hit_rate() == pytest.approx(0.5)
        assert stats["sim_time_us"] > 0

    def test_expert_weights_exposed(self, cache):
        weights = cache.expert_weights
        assert set(weights) == {"lru", "lfu"}
        assert sum(weights.values()) == pytest.approx(1.0)


class TestElasticity:
    def test_scale_clients_up_and_down(self, cache):
        cache.set("k", "v")
        cache.scale_clients(6)
        assert len(cache.cluster.clients) == 6
        assert cache.get("k") == b"v"  # data untouched by compute scaling
        cache.scale_clients(2)
        assert len(cache.cluster.clients) == 2
        assert cache.get("k") == b"v"

    def test_resize_memory(self, cache):
        for i in range(200):
            cache.set(f"key{i}", "v" * 40)
        cache.resize(32)
        for i in range(210, 230):
            cache.set(f"key{i}", "v" * 40)
        used = cache.stats()["used_bytes"]
        assert used <= cache.cluster.budget.limit_bytes

    def test_custom_policies(self):
        cache = DittoCache(capacity_objects=64, policies=("fifo",), seed=2)
        for i in range(100):
            cache.set(f"k{i}", "v")
        assert len(cache) > 0

    def test_config_kwargs_forwarded(self):
        cache = DittoCache(capacity_objects=64, sample_size=7, seed=2)
        assert cache.cluster.config.sample_size == 7
